"""Unit tests for the relevance scoring model."""

import pytest

from repro.query.ontology import default_ontology
from repro.query.scoring import ScoringModel


class TestPathScore:
    def test_direct_child_full_score(self):
        model = ScoringModel(decay=0.8)
        assert model.path_score(1) == 1.0

    def test_self_match_scores_like_child(self):
        model = ScoringModel(decay=0.8)
        assert model.path_score(0) == 1.0

    def test_paper_example_movie_cast_actor(self):
        """movie/cast/actor (2 hops) ~ 0.8 with the default decay."""
        model = ScoringModel(decay=0.8)
        assert model.path_score(2) == pytest.approx(0.8)

    def test_paper_example_long_path(self):
        """movie/follows/movie/cast/actor (4 hops) ~ 0.5 structurally; with
        the link penalty for the follows-hop it drops toward the paper's 0.2
        illustration."""
        model = ScoringModel(decay=0.8, link_penalty=0.5)
        assert model.path_score(4, link_traversals=1) == pytest.approx(0.256)

    def test_link_penalty_applied_per_traversal(self):
        model = ScoringModel(decay=1.0, link_penalty=0.5)
        assert model.path_score(3, link_traversals=2) == pytest.approx(0.25)

    def test_monotone_decreasing(self):
        model = ScoringModel()
        scores = [model.path_score(d) for d in range(10)]
        assert scores == sorted(scores, reverse=True)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            ScoringModel().path_score(-1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ScoringModel(decay=0.0)
        with pytest.raises(ValueError):
            ScoringModel(link_penalty=1.5)


class TestMaxUsefulDistance:
    def test_threshold_consistency(self):
        model = ScoringModel(decay=0.8, min_score=0.05)
        limit = model.max_useful_distance()
        assert model.path_score(limit) >= model.min_score
        assert model.path_score(limit + 1) < model.min_score

    def test_stricter_threshold_shorter_reach(self):
        lax = ScoringModel(min_score=0.01).max_useful_distance()
        strict = ScoringModel(min_score=0.3).max_useful_distance()
        assert strict < lax


class TestTagScore:
    def test_exact_match(self):
        model = ScoringModel()
        onto = default_ontology()
        assert model.tag_score("movie", "movie", False, onto) == 1.0

    def test_wildcard(self):
        model = ScoringModel()
        assert model.tag_score(None, "anything", False, default_ontology()) == 1.0

    def test_strict_mismatch_zero(self):
        model = ScoringModel()
        onto = default_ontology()
        assert model.tag_score("movie", "science-fiction", False, onto) == 0.0

    def test_similar_mismatch_uses_ontology(self):
        model = ScoringModel()
        onto = default_ontology()
        score = model.tag_score("movie", "science-fiction", True, onto)
        assert 0.5 < score < 1.0


class TestTextScore:
    onto = default_ontology()
    model = ScoringModel()

    def test_exact_equality(self):
        assert self.model.text_score("=", "x", " x ", self.onto) == 1.0
        assert self.model.text_score("=", "x", "y", self.onto) == 0.0

    def test_contains(self):
        assert self.model.text_score("contains", "Matrix", "The Matrix", self.onto) == 1.0
        assert self.model.text_score("contains", "matrix", "THE MATRIX", self.onto) == 1.0
        assert self.model.text_score("contains", "zz", "matrix", self.onto) == 0.0

    def test_vague_exact_is_one(self):
        assert self.model.text_score("~=", "Matrix 3", "matrix 3", self.onto) == 1.0

    def test_vague_alternative_title(self):
        """IMDB's alternative-title knowledge: 'Matrix 3' ~ the real title."""
        score = self.model.text_score(
            "~=", "Matrix: Revolutions", "Matrix 3", self.onto
        )
        assert score >= 0.9

    def test_vague_token_overlap(self):
        score = self.model.text_score(
            "~=", "Transaction Recovery", "A Transaction Recovery Method", self.onto
        )
        assert 0.3 < score < 1.0

    def test_vague_no_overlap(self):
        assert self.model.text_score("~=", "abc", "xyz", self.onto) == 0.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            self.model.text_score("!!", "a", "b", self.onto)
