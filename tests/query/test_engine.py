"""Integration tests for the top-k relaxed-query engine."""

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.query.scoring import ScoringModel


@pytest.fixture(scope="module")
def movie_flix(movie_collection):
    return Flix.build(movie_collection, FlixConfig.naive())


@pytest.fixture(scope="module")
def engine(movie_flix):
    return QueryEngine(movie_flix)


def titles_of(collection, matches):
    out = []
    for match in matches:
        element = collection.element(match.node)
        title = element.find("title")
        out.append(title.text if title is not None else element.name)
    return out


class TestStrictQueries:
    def test_child_path_within_one_document(self, engine, movie_collection):
        matches = engine.evaluate("/science-fiction/cast/actor")
        assert matches
        for match in matches:
            assert movie_collection.tag(match.node) == "actor"
            assert match.score == 1.0

    def test_predicate_filters(self, engine, movie_collection):
        matches = engine.evaluate('/movie[title = "The Matrix"]')
        assert len(matches) == 1
        assert titles_of(movie_collection, matches) == ["The Matrix"]

    def test_paper_strict_query_returns_nothing(self, engine):
        """The motivating failure: the strict Matrix query has no answer."""
        matches = engine.evaluate(
            '/movie[title = "Matrix: Revolutions"]/actor/movie'
        )
        assert matches == []

    def test_wildcard_step(self, engine, movie_collection):
        matches = engine.evaluate("/film/*", top_k=20)
        tags = {movie_collection.tag(m.node) for m in matches}
        assert "title" in tags
        assert "credits" in tags


class TestRelaxedQueries:
    def test_paper_example_finds_costar_movies(self, engine, movie_collection):
        matches = engine.evaluate(
            '/movie[title = "Matrix: Revolutions"]/actor/movie',
            top_k=10,
            auto_relax=True,
        )
        found = set(titles_of(movie_collection, matches))
        # Keanu Reeves and Carrie-Anne Moss co-star in these:
        assert "The Matrix" in found
        assert "Speed" in found or "John Wick" in found or "Memento" in found

    def test_science_fiction_matches_movie_via_ontology(self, engine, movie_collection):
        matches = engine.evaluate("//~movie", top_k=20)
        tags = {movie_collection.tag(m.node) for m in matches}
        assert "science-fiction" in tags
        assert "movie" in tags
        assert "film" in tags

    def test_similarity_lowers_score(self, engine, movie_collection):
        matches = engine.evaluate("//~movie", top_k=20)
        by_tag = {}
        for m in matches:
            by_tag.setdefault(movie_collection.tag(m.node), m.score)
        assert by_tag["movie"] == 1.0
        assert by_tag["science-fiction"] < 1.0

    def test_alternative_title_via_vague_predicate(self, engine, movie_collection):
        """[title ~= 'Matrix 3'] finds the film titled 'Matrix: Revolutions'."""
        matches = engine.evaluate('//~movie[title ~= "Matrix 3"]', top_k=5)
        assert matches
        top_titles = titles_of(movie_collection, matches[:1])
        assert top_titles == ["Matrix: Revolutions"]

    def test_longer_paths_score_lower(self, engine, movie_collection):
        matches = engine.evaluate("//~movie//name", top_k=50)
        assert matches
        # flat schema: movie/actor/name (distance 2); nested schema:
        # science-fiction/cast/actor/name (distance 3) -> lower score
        flat = [m for m in matches if movie_collection.info(m.node).document == "matrix1.xml"]
        nested = [m for m in matches if movie_collection.info(m.node).document == "matrix3.xml"]
        assert flat and nested
        assert max(m.score for m in flat) > max(m.score for m in nested)

    def test_results_sorted_by_score(self, engine):
        matches = engine.evaluate("//~movie//~actor", top_k=30)
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_respected(self, engine):
        assert len(engine.evaluate("//*", top_k=3)) == 3

    def test_bindings_chain_length(self, engine):
        matches = engine.evaluate("//movie//name", top_k=5)
        for match in matches:
            assert len(match.bindings) == 2
            assert match.bindings[-1] == match.node


class TestEngineConfiguration:
    def test_invalid_top_k(self, engine):
        with pytest.raises(ValueError):
            engine.evaluate("//movie", top_k=0)

    def test_invalid_beam(self, movie_flix):
        with pytest.raises(ValueError):
            QueryEngine(movie_flix, beam_width=0)

    def test_min_score_prunes(self, movie_flix):
        strict = QueryEngine(movie_flix, scoring=ScoringModel(min_score=0.99))
        lax = QueryEngine(movie_flix, scoring=ScoringModel(min_score=0.01))
        query = "//~movie//~actor"
        assert len(strict.evaluate(query, top_k=50)) <= len(
            lax.evaluate(query, top_k=50)
        )

    def test_accepts_parsed_query_objects(self, engine):
        parsed = parse_query("//movie")
        assert engine.evaluate(parsed, top_k=3)

    def test_works_on_dblp(self, dblp_collection):
        flix = Flix.build(dblp_collection, FlixConfig.maximal_ppo())
        engine = QueryEngine(flix)
        matches = engine.evaluate('//inproceedings//~paper', top_k=10)
        assert matches
        tags = {dblp_collection.tag(m.node) for m in matches}
        assert tags <= {"article", "inproceedings"}
