"""Property tests: the query language round-trips through its printer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.query.ast import LocationStep, PathQuery, Predicate
from repro.query.parser import parse_query

tag_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.-]{0,10}", fullmatch=True)
# predicate values: anything without quotes/brackets that won't confuse
# the single-quote-free string literal syntax
values = st.text(
    alphabet=st.characters(
        min_codepoint=0x20,
        max_codepoint=0x7E,
        blacklist_characters='"\'[]',
    ),
    max_size=15,
)

predicates = st.builds(
    Predicate,
    child_tag=tag_names,
    op=st.sampled_from(["=", "~=", "contains"]),
    value=values,
)

steps = st.builds(
    LocationStep,
    axis=st.sampled_from(["child", "descendant"]),
    tag=tag_names,
    similar=st.booleans(),
    predicates=st.tuples() | st.tuples(predicates) | st.tuples(predicates, predicates),
)

wildcard_steps = st.builds(
    LocationStep,
    axis=st.sampled_from(["child", "descendant"]),
    tag=st.none(),
    similar=st.just(False),
    predicates=st.just(()),
)

queries = st.lists(steps | wildcard_steps, min_size=1, max_size=4).map(
    lambda items: PathQuery(tuple(items))
)


@given(queries)
def test_parse_str_roundtrip(query):
    assert parse_query(str(query)) == query


@given(queries)
def test_str_is_stable(query):
    reparsed = parse_query(str(query))
    assert str(reparsed) == str(query)


@given(queries)
def test_relaxation_preserves_step_count(query):
    from repro.query.relaxation import relax

    for add_similarity in (False, True):
        relaxed = relax(query, add_similarity=add_similarity)
        assert len(relaxed.steps) == len(query.steps)
        assert relaxed.is_fully_relaxed
        # relaxation is idempotent
        assert relax(relaxed, add_similarity=add_similarity) == relaxed
