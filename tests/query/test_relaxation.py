"""Unit tests for structural query relaxation."""

from repro.query.parser import parse_query
from repro.query.relaxation import relax, relaxation_depth


class TestRelax:
    def test_child_becomes_descendant(self):
        relaxed = relax(parse_query("/movie/actor"))
        assert all(step.axis == "descendant" for step in relaxed.steps)
        assert relaxed.is_fully_relaxed

    def test_tags_preserved(self):
        relaxed = relax(parse_query("/a/b//c"))
        assert [s.tag for s in relaxed.steps] == ["a", "b", "c"]

    def test_predicates_preserved(self):
        relaxed = relax(parse_query('/movie[title = "Matrix 3"]/actor'))
        assert relaxed.steps[0].predicates[0].value == "Matrix 3"

    def test_add_similarity(self):
        relaxed = relax(parse_query("/movie/actor"), add_similarity=True)
        assert all(step.similar for step in relaxed.steps)

    def test_wildcard_stays_plain(self):
        relaxed = relax(parse_query("/movie/*"), add_similarity=True)
        assert relaxed.steps[1].tag is None
        assert not relaxed.steps[1].similar

    def test_paper_example_full_rewrite(self):
        original = parse_query('/movie[title ~= "Matrix: Revolutions"]/actor/movie')
        relaxed = relax(original, add_similarity=True)
        assert str(relaxed) == (
            '//~movie[title ~= "Matrix: Revolutions"]//~actor//~movie'
        )

    def test_idempotent(self):
        query = parse_query("//a//b")
        assert relax(query) == relax(relax(query))


class TestRelaxationDepth:
    def test_counts_rewritten_steps(self):
        original = parse_query("/a//b/c")
        relaxed = relax(original)
        assert relaxation_depth(original, relaxed) == 2

    def test_zero_for_already_relaxed(self):
        query = parse_query("//a//b")
        assert relaxation_depth(query, relax(query)) == 0

    def test_length_mismatch_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            relaxation_depth(parse_query("/a"), parse_query("/a/b"))
