"""Unit tests for the ontology (XXL's similarity source)."""

import pytest

from repro.query.ontology import Ontology, default_ontology


class TestOntology:
    def test_identity_similarity(self):
        onto = Ontology()
        assert onto.similarity("x", "x") == 1.0

    def test_unknown_terms_zero(self):
        onto = Ontology()
        assert onto.similarity("x", "y") == 0.0

    def test_direct_relation(self):
        onto = Ontology()
        onto.relate("a", "b", 0.8)
        assert onto.similarity("a", "b") == pytest.approx(0.8)
        assert onto.similarity("b", "a") == pytest.approx(0.8)

    def test_weight_validation(self):
        onto = Ontology()
        with pytest.raises(ValueError):
            onto.relate("a", "b", 0.0)
        with pytest.raises(ValueError):
            onto.relate("a", "b", 1.5)

    def test_self_relation_ignored(self):
        onto = Ontology()
        onto.relate("a", "a", 0.5)
        assert onto.terms() == []

    def test_transitive_product(self):
        onto = Ontology()
        onto.relate("a", "b", 0.8)
        onto.relate("b", "c", 0.5)
        assert onto.similarity("a", "c") == pytest.approx(0.4)

    def test_best_path_wins(self):
        onto = Ontology()
        onto.relate("a", "b", 0.9)
        onto.relate("b", "c", 0.9)
        onto.relate("a", "c", 0.5)
        assert onto.similarity("a", "c") == pytest.approx(0.81)

    def test_max_hops_cap(self):
        onto = Ontology()
        onto.relate("a", "b", 0.9)
        onto.relate("b", "c", 0.9)
        onto.relate("c", "d", 0.9)
        onto.relate("d", "e", 0.9)
        assert onto.similarity("a", "e", max_hops=2) == 0.0
        assert onto.similarity("a", "e", max_hops=4) > 0.0

    def test_duplicate_relation_keeps_max(self):
        onto = Ontology()
        onto.relate("a", "b", 0.3)
        onto.relate("a", "b", 0.7)
        assert onto.similarity("a", "b") == pytest.approx(0.7)

    def test_case_insensitive(self):
        onto = Ontology()
        onto.relate("Movie", "FILM", 0.9)
        assert onto.similarity("movie", "film") == pytest.approx(0.9)

    def test_similar_terms_sorted(self):
        onto = Ontology()
        onto.relate("a", "b", 0.6)
        onto.relate("a", "c", 0.9)
        assert onto.similar_terms("a", threshold=0.5) == [("c", 0.9), ("b", 0.6)]

    def test_expand_tag_includes_self(self):
        onto = Ontology()
        onto.relate("movie", "film", 0.9)
        expanded = onto.expand_tag("movie", threshold=0.5)
        assert expanded[0] == ("movie", 1.0)
        assert ("film", 0.9) in expanded


class TestDefaultOntology:
    def test_paper_movie_relations(self):
        onto = default_ontology()
        assert onto.similarity("science-fiction", "movie") >= 0.8
        assert onto.similarity("actor", "performer") == 1.0
        assert onto.similarity("matrix: revolutions", "matrix 3") >= 0.9

    def test_publication_relations(self):
        onto = default_ontology()
        assert onto.similarity("article", "inproceedings") > 0.5  # via paper/publication
        assert onto.similarity("booktitle", "venue") == 1.0

    def test_unrelated_domains_far_apart(self):
        onto = default_ontology()
        assert onto.similarity("actor", "journal") < 0.3
