"""Unit tests for the query language parser and AST."""

import pytest

from repro.query.ast import LocationStep, PathQuery, Predicate
from repro.query.parser import QueryParseError, parse_query


class TestAstValidation:
    def test_bad_axis(self):
        with pytest.raises(ValueError):
            LocationStep("sibling", "a")

    def test_wildcard_cannot_be_similar(self):
        with pytest.raises(ValueError):
            LocationStep("child", None, similar=True)

    def test_bad_predicate_op(self):
        with pytest.raises(ValueError):
            Predicate("t", "!=", "x")

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            PathQuery(())

    def test_str_roundtrip(self):
        text = '//~movie[title ~= "Matrix 3"]//actor/*'
        assert str(parse_query(text)) == text


class TestParsing:
    def test_simple_child_path(self):
        query = parse_query("/movie/actor")
        assert len(query.steps) == 2
        assert query.steps[0].axis == "child"
        assert query.steps[0].tag == "movie"
        assert not query.steps[0].similar

    def test_descendant_axis(self):
        query = parse_query("//movie//actor")
        assert all(step.axis == "descendant" for step in query.steps)
        assert query.is_fully_relaxed

    def test_mixed_axes(self):
        query = parse_query("/a//b/c")
        assert [s.axis for s in query.steps] == ["child", "descendant", "child"]
        assert not query.is_fully_relaxed

    def test_similarity_operator(self):
        query = parse_query("//~movie")
        assert query.steps[0].similar
        assert query.steps[0].tag == "movie"

    def test_wildcard(self):
        query = parse_query("//a//*")
        assert query.steps[1].tag is None

    def test_the_paper_example(self):
        query = parse_query(
            '//~movie[title ~= "Matrix: Revolutions"]//~actor//~movie'
        )
        assert len(query.steps) == 3
        first = query.steps[0]
        assert first.similar
        assert first.predicates == (
            Predicate("title", "~=", "Matrix: Revolutions"),
        )

    def test_equality_predicate(self):
        query = parse_query('/a[b = "x"]')
        assert query.steps[0].predicates[0].op == "="

    def test_contains_predicate(self):
        query = parse_query('/a[b contains "x"]')
        assert query.steps[0].predicates[0].op == "contains"

    def test_multiple_predicates(self):
        query = parse_query('/a[b = "1"][c ~= "2"]')
        assert len(query.steps[0].predicates) == 2

    def test_single_quoted_string(self):
        query = parse_query("/a[b = 'x y']")
        assert query.steps[0].predicates[0].value == "x y"

    def test_hyphenated_tag(self):
        query = parse_query("//science-fiction")
        assert query.steps[0].tag == "science-fiction"


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "movie",  # missing leading axis
            "/",  # missing name
            "//~*",  # similar wildcard
            '/a[b = x]',  # unquoted value
            '/a[b = "x"',  # missing ]
            '/a[b ! "x"]',  # bad operator
            '/a[= "x"]',  # missing child tag
            '/a[b = "x]',  # unterminated string
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QueryParseError):
            parse_query(text)
