"""The WriteAheadLog: append, fsync policies, truncation, re-attach."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, InjectedCrash
from repro.obs import Observability
from repro.wal import (
    BEGIN_VERB,
    WAL_MAGIC,
    WalCorruptionError,
    WriteAheadLog,
    read_wal,
)


def test_fresh_log_starts_with_begin(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log", base_generation=5)
    records, discarded = wal.records()
    assert discarded == 0
    assert [r.verb for r in records] == [BEGIN_VERB]
    assert records[0].generation == 5
    assert wal.base_generation == 5 and wal.tail_generation == 5
    wal.close()


def test_append_and_reread(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.append("add", 1, {"documents": []})
    wal.append("remove", 2, {"name": "x.xml"})
    assert wal.tail_generation == 2
    records, _ = wal.records()
    assert [(r.verb, r.generation) for r in records] == [
        (BEGIN_VERB, 0), ("add", 1), ("remove", 2),
    ]
    wal.close()


@pytest.mark.parametrize("policy", ["commit", "batch", "none"])
def test_every_fsync_policy_persists(tmp_path, policy):
    wal = WriteAheadLog(tmp_path / "wal.log", fsync=policy, batch_size=3)
    for i in range(7):
        wal.append("add", i + 1, {"i": i})
    wal.close()  # close syncs pending appends
    records, discarded = read_wal(tmp_path / "wal.log")
    assert discarded == 0
    assert [r.generation for r in records] == list(range(8))


def test_bad_policy_rejected(tmp_path):
    with pytest.raises(ValueError):
        WriteAheadLog(tmp_path / "wal.log", fsync="eventually")
    with pytest.raises(ValueError):
        WriteAheadLog(tmp_path / "wal.log", fsync="batch", batch_size=0)


def test_truncate_resets_to_new_begin(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    for i in range(4):
        wal.append("add", i + 1, {})
    wal.truncate(4)
    records, discarded = wal.records()
    assert discarded == 0
    assert [(r.verb, r.generation) for r in records] == [(BEGIN_VERB, 4)]
    assert wal.base_generation == 4 and wal.tail_generation == 4
    wal.append("add", 5, {})
    assert wal.tail_generation == 5
    wal.close()


def test_reattach_resumes_at_tail(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append("add", 1, {})
    wal.close()
    resumed = WriteAheadLog(path)
    assert resumed.base_generation == 0
    assert resumed.tail_generation == 1
    resumed.append("add", 2, {})
    resumed.close()
    records, _ = read_wal(path)
    assert [r.generation for r in records] == [0, 1, 2]


def test_reattach_trims_torn_tail_in_place(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append("add", 1, {})
    wal.append("add", 2, {})
    wal.close()
    data = path.read_bytes()
    path.write_bytes(data[:-5])  # tear the last record
    resumed = WriteAheadLog(path)
    assert resumed.tail_generation == 1
    assert path.stat().st_size < len(data) - 5  # torn bytes gone
    resumed.append("add", 2, {})
    resumed.close()
    records, discarded = read_wal(path)
    assert discarded == 0
    assert [r.generation for r in records] == [0, 1, 2]


def test_magic_only_file_reopens_fresh(tmp_path):
    """A crash inside truncate() (between its truncate and the begin
    append) leaves exactly the magic — state is consistent, so attach
    restarts the log instead of refusing."""
    path = tmp_path / "wal.log"
    path.write_bytes(WAL_MAGIC)
    wal = WriteAheadLog(path, base_generation=9)
    records, discarded = wal.records()
    assert discarded == 0
    assert [(r.verb, r.generation) for r in records] == [(BEGIN_VERB, 9)]
    assert wal.base_generation == 9 and wal.tail_generation == 9
    wal.append("add", 10, {})
    wal.close()
    records, discarded = read_wal(path)
    assert discarded == 0
    assert [r.generation for r in records] == [9, 10]


def test_torn_begin_record_reopens_fresh(tmp_path):
    from repro.wal.record import WalRecord

    path = tmp_path / "wal.log"
    begin = WalRecord(BEGIN_VERB, 3, {"base_generation": 3}).to_bytes()
    path.write_bytes(WAL_MAGIC + begin[: len(begin) // 2])
    wal = WriteAheadLog(path, base_generation=9)
    records, discarded = wal.records()
    assert discarded == 0
    assert [(r.verb, r.generation) for r in records] == [(BEGIN_VERB, 9)]
    wal.close()


def test_torn_magic_reopens_fresh(tmp_path):
    # a crash during the very first creation write: nothing was acked
    path = tmp_path / "wal.log"
    path.write_bytes(WAL_MAGIC[:3])
    wal = WriteAheadLog(path, base_generation=2)
    records, discarded = wal.records()
    assert discarded == 0
    assert [(r.verb, r.generation) for r in records] == [(BEGIN_VERB, 2)]
    wal.close()


def test_attach_refuses_non_wal_file(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"definitely not a log")
    with pytest.raises(WalCorruptionError):
        WriteAheadLog(path)


def test_attach_refuses_log_without_begin(tmp_path):
    from repro.wal.record import WalRecord

    path = tmp_path / "wal.log"
    path.write_bytes(WAL_MAGIC + WalRecord("add", 1, {}).to_bytes())
    with pytest.raises(WalCorruptionError):
        WriteAheadLog(path)


def test_closed_log_rejects_appends(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.close()
    with pytest.raises(WalCorruptionError):
        wal.append("add", 1, {})


def test_missing_file_reads_as_empty(tmp_path):
    assert read_wal(tmp_path / "absent.log") == ([], 0)


def test_metrics_move_with_appends(tmp_path):
    obs = Observability(enabled=True)
    wal = WriteAheadLog(tmp_path / "wal.log", observability=obs)
    wal.append("add", 1, {})
    wal.append("remove", 2, {})
    wal.truncate(2)
    reg = obs.registry
    assert reg.get("flix_wal_records_total").value(verb="add") == 1
    assert reg.get("flix_wal_records_total").value(verb="remove") == 1
    assert reg.get("flix_wal_truncations_total").total() == 1
    assert reg.get("flix_wal_fsyncs_total").total() >= 2
    assert reg.get("flix_wal_bytes_total").total() > 0
    wal.close()


def test_injected_crash_tears_the_write(tmp_path):
    plan = FaultPlan(crash_after_writes=2, torn_write_bytes=6)
    wal = WriteAheadLog(tmp_path / "wal.log", fault_plan=plan)
    wal.append("add", 1, {})
    wal.append("add", 2, {})
    with pytest.raises(InjectedCrash):
        wal.append("add", 3, {})
    # the log object is dead, exactly like the process it models
    with pytest.raises(InjectedCrash):
        wal.append("add", 4, {})
    wal.close()
    records, discarded = read_wal(tmp_path / "wal.log")
    assert [r.generation for r in records] == [0, 1, 2]
    assert discarded == 6  # exactly torn_write_bytes of the torn record


def test_injected_crash_default_tears_half_the_record(tmp_path):
    plan = FaultPlan(crash_after_writes=0)
    wal = WriteAheadLog(tmp_path / "wal.log", fault_plan=plan)
    with pytest.raises(InjectedCrash):
        wal.append("add", 1, {"padding": "x" * 64})
    wal.close()
    records, discarded = read_wal(tmp_path / "wal.log")
    assert [r.verb for r in records] == [BEGIN_VERB]
    assert discarded > 0
