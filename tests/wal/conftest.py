"""Shared fixtures for the durability (WAL / recovery / replication) tests.

Every scenario starts from the same tiny saved deployment: a 6-document
synthetic DBLP collection, built naive, snapshotted to disk.  Mutations
are the chained ``incr_*`` documents from the incremental bench, so each
add is cheap and the whole verb history replays in well under a second.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import List

import pytest

from repro.bench.incremental import added_documents
from repro.collection.io import load_collection, save_collection
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp


@pytest.fixture()
def deployment(tmp_path):
    """A fresh saved snapshot + collection directory (per test: the
    durability tests mutate, crash, and recover destructively)."""
    collection = generate_dblp(DblpSpec(documents=6, seed=7))
    flix = Flix.build(collection, FlixConfig.naive())
    collection_dir = tmp_path / "collection"
    index_dir = tmp_path / "index"
    save_collection(collection, collection_dir)
    flix.save(index_dir)
    return SimpleNamespace(
        collection=collection,
        flix=flix,
        collection_dir=collection_dir,
        index_dir=index_dir,
    )


@pytest.fixture()
def mutation_docs() -> List:
    """Six tiny chained documents to grow the deployment with."""
    return added_documents(6)


def run_verbs(flix: Flix, docs) -> None:
    """The canonical mutation history every recovery test replays:
    three single adds, one batch of two, one remove."""
    flix.add_document(docs[0])
    flix.add_document(docs[1])
    flix.add_document(docs[2])
    flix.add_documents(docs[3:5])
    flix.remove_document(docs[1].name)


def checkpoint(deployment, flix: Flix) -> None:
    """A full checkpoint: snapshot the collection *and* the index (the
    manifest fingerprints the collection, so the two must move together;
    ``flix.save`` then truncates the WAL)."""
    save_collection(flix.collection, deployment.collection_dir, prune=True)
    flix.save(deployment.index_dir)


def fresh_reference(deployment, docs) -> Flix:
    """An uncrashed run of the same history on an independent load of
    the snapshot — the fingerprint recovery must reproduce."""
    collection = load_collection(deployment.collection_dir)
    reference = Flix.load(collection, deployment.index_dir)
    run_verbs(reference, docs)
    return reference
