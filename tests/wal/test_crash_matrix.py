"""The crash-point matrix: die at every write boundary, recover, compare.

Two sweeps cover the space:

* **Torn-log matrix** — run the full verb history, then truncate the log
  image at every record boundary and recover.  Each cut must land
  exactly on the fingerprint of an uncrashed run of that verb prefix.
* **Injected-crash matrix** — rerun the history under a
  :class:`FaultPlan` that kills the process at the Nth append (with a
  torn partial frame on disk), for every N, and recover from the wreck.

An env-driven variant re-reads ``FAULT_PLAN`` so the CI chaos job can
pick the crash point without editing code.
"""

from __future__ import annotations

import os

import pytest

from repro.collection.io import load_collection
from repro.faults import FaultPlan, InjectedCrash, plan_from_env
from repro.wal import (
    WAL_MAGIC,
    WriteAheadLog,
    read_wal,
    recover_flix,
    wal_path_for,
)

from .conftest import checkpoint, run_verbs


VERB_COUNT = 5  # run_verbs appends five records


def _reference_fingerprints(deployment, docs):
    """Fingerprint + generation after each verb prefix (0..5 verbs)."""
    collection = load_collection(deployment.collection_dir)
    from repro.core.framework import Flix

    flix = Flix.load(collection, deployment.index_dir)
    points = [(flix.index_fingerprint(), flix.layout_generation)]
    flix.add_document(docs[0])
    points.append((flix.index_fingerprint(), flix.layout_generation))
    flix.add_document(docs[1])
    points.append((flix.index_fingerprint(), flix.layout_generation))
    flix.add_document(docs[2])
    points.append((flix.index_fingerprint(), flix.layout_generation))
    flix.add_documents(docs[3:5])
    points.append((flix.index_fingerprint(), flix.layout_generation))
    flix.remove_document(docs[1].name)
    points.append((flix.index_fingerprint(), flix.layout_generation))
    return points


def test_torn_log_matrix_recovers_every_prefix(deployment, mutation_docs):
    flix = deployment.flix
    flix.enable_wal(wal_path_for(deployment.index_dir))
    run_verbs(flix, mutation_docs)
    path = wal_path_for(deployment.index_dir)
    image = path.read_bytes()

    # record boundaries: magic, begin, then one per verb
    records, _ = read_wal(path)
    assert len(records) == VERB_COUNT + 1
    boundaries = [len(WAL_MAGIC)]
    for record in records:
        boundaries.append(boundaries[-1] + len(record.to_bytes()))

    points = _reference_fingerprints(deployment, mutation_docs)
    for survivors in range(VERB_COUNT + 1):
        # keep magic+begin plus the first `survivors` verbs, then tear
        # three bytes into the next record (torn write, if any follows)
        cut = boundaries[survivors + 1]
        torn = image[:cut] + image[cut : cut + 3]
        path.write_bytes(torn)
        collection = load_collection(deployment.collection_dir)
        recovered, report = recover_flix(
            collection, deployment.index_dir, attach=False
        )
        expected_fp, expected_gen = points[survivors]
        assert recovered.layout_generation == expected_gen, survivors
        assert recovered.index_fingerprint() == expected_fp, survivors
        assert report.records_applied == survivors
        if cut < len(image):
            assert report.discarded_bytes == 3


@pytest.mark.parametrize("crash_after", range(VERB_COUNT))
def test_injected_crash_matrix(deployment, mutation_docs, crash_after):
    flix = deployment.flix
    plan = FaultPlan(crash_after_writes=crash_after, torn_write_bytes=5)
    flix.enable_wal(wal_path_for(deployment.index_dir), fault_plan=plan)
    with pytest.raises(InjectedCrash):
        run_verbs(flix, mutation_docs)

    collection = load_collection(deployment.collection_dir)
    recovered, report = recover_flix(collection, deployment.index_dir)
    expected_fp, expected_gen = _reference_fingerprints(
        deployment, mutation_docs
    )[crash_after]
    assert recovered.layout_generation == expected_gen
    assert recovered.index_fingerprint() == expected_fp
    assert report.records_applied == crash_after
    assert report.discarded_bytes == 5  # the torn frame of the fatal append

    # service resumes on the recovered instance's clean tail
    recovered.add_document(mutation_docs[5])
    records, discarded = read_wal(wal_path_for(deployment.index_dir))
    assert discarded == 0
    assert records[-1].generation == recovered.layout_generation


def test_env_driven_crash_plan(deployment, mutation_docs, monkeypatch):
    """The CI chaos job's path: FAULT_PLAN chooses the crash point."""
    spec = os.environ.get(
        "FAULT_PLAN", "crash_after_writes=2,torn_write_bytes=7"
    )
    plan = plan_from_env({"FAULT_PLAN": spec})
    if plan is None or plan.crash_after_writes is None:
        plan = FaultPlan(crash_after_writes=2, torn_write_bytes=7)

    flix = deployment.flix
    flix.enable_wal(wal_path_for(deployment.index_dir), fault_plan=plan)
    crashed = False
    try:
        run_verbs(flix, mutation_docs)
    except InjectedCrash:
        crashed = True
    assert crashed or plan.crash_after_writes >= VERB_COUNT

    collection = load_collection(deployment.collection_dir)
    recovered, report = recover_flix(collection, deployment.index_dir)
    survivors = min(plan.crash_after_writes, VERB_COUNT)
    expected_fp, expected_gen = _reference_fingerprints(
        deployment, mutation_docs
    )[survivors]
    assert recovered.layout_generation == expected_gen
    assert recovered.index_fingerprint() == expected_fp
    assert report.records_applied == survivors


def test_crash_during_checkpoint_is_recoverable(deployment, mutation_docs):
    """Die after the appends but before save(): nothing is lost."""
    flix = deployment.flix
    flix.enable_wal(wal_path_for(deployment.index_dir))
    run_verbs(flix, mutation_docs)
    live_fingerprint = flix.index_fingerprint()
    # the checkpoint never happens (simulated death before save)

    collection = load_collection(deployment.collection_dir)
    recovered, _ = recover_flix(collection, deployment.index_dir)
    assert recovered.index_fingerprint() == live_fingerprint

    # now the checkpoint completes on the recovered instance, and a
    # third incarnation loads it with an empty log
    checkpoint(deployment, recovered)
    collection2 = load_collection(deployment.collection_dir)
    third, report = recover_flix(collection2, deployment.index_dir)
    assert third.index_fingerprint() == live_fingerprint
    assert report.records_applied == 0


def test_double_crash_same_boundary(deployment, mutation_docs):
    """Crash, recover, crash again at the same point, recover again."""
    plan = FaultPlan(crash_after_writes=1, torn_write_bytes=4)
    flix = deployment.flix
    flix.enable_wal(wal_path_for(deployment.index_dir), fault_plan=plan)
    with pytest.raises(InjectedCrash):
        run_verbs(flix, mutation_docs)

    collection = load_collection(deployment.collection_dir)
    first, _ = recover_flix(collection, deployment.index_dir, attach=False)

    # the torn tail is still on disk (attach=False left it); a second
    # recovery over the same wreck reaches the same state
    collection2 = load_collection(deployment.collection_dir)
    second, report = recover_flix(collection2, deployment.index_dir)
    assert second.index_fingerprint() == first.index_fingerprint()
    assert report.discarded_bytes == 4
