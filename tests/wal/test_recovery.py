"""Crash-consistent recovery: snapshot + WAL replay == the live index."""

from __future__ import annotations

import pytest

from repro.collection.io import load_collection
from repro.core.framework import Flix
from repro.wal import (
    RecoveryReport,
    WalCorruptionError,
    WriteAheadLog,
    read_wal,
    recover_flix,
    wal_path_for,
)

from .conftest import checkpoint, fresh_reference, run_verbs


def test_recovery_reproduces_the_live_index(deployment, mutation_docs):
    flix = deployment.flix
    flix.enable_wal(wal_path_for(deployment.index_dir))
    run_verbs(flix, mutation_docs)
    live_generation = flix.layout_generation
    live_fingerprint = flix.index_fingerprint()

    # "crash": nothing saved since the snapshot; recover from cold.
    collection = load_collection(deployment.collection_dir)
    recovered, report = recover_flix(collection, deployment.index_dir)
    assert recovered.layout_generation == live_generation
    assert recovered.index_fingerprint() == live_fingerprint
    assert report.records_applied == report.records_seen > 0
    assert report.final_generation == live_generation
    assert report.applied_verbs == ["add", "add", "add", "add_batch", "remove"]

    # ...and matches an uncrashed run of the same history exactly.
    reference = fresh_reference(deployment, mutation_docs)
    assert recovered.index_fingerprint() == reference.index_fingerprint()


def test_recovery_without_wal_degrades_to_plain_load(deployment):
    collection = load_collection(deployment.collection_dir)
    recovered, report = recover_flix(collection, deployment.index_dir)
    assert recovered.layout_generation == deployment.flix.layout_generation
    assert recovered.index_fingerprint() == deployment.flix.index_fingerprint()
    assert report.records_seen == report.records_applied == 0
    assert "replayed 0/0" in report.describe()


def test_save_truncates_the_log(deployment, mutation_docs):
    flix = deployment.flix
    wal = flix.enable_wal(wal_path_for(deployment.index_dir))
    run_verbs(flix, mutation_docs)
    checkpoint(deployment, flix)
    records, discarded = wal.records()
    assert discarded == 0
    assert [r.verb for r in records] == ["begin"]
    assert records[0].generation == flix.layout_generation

    # a recovery from the fresh checkpoint replays nothing
    collection = load_collection(deployment.collection_dir)
    recovered, report = recover_flix(collection, deployment.index_dir)
    assert report.records_applied == 0
    assert recovered.index_fingerprint() == flix.index_fingerprint()


def test_backup_save_keeps_the_log(deployment, mutation_docs, tmp_path):
    """Saving a copy somewhere else is not a checkpoint: the deployment
    directory's snapshot still needs the logged records to recover."""
    flix = deployment.flix
    wal = flix.enable_wal(wal_path_for(deployment.index_dir))
    run_verbs(flix, mutation_docs)
    before = [r.verb for r in wal.records()[0]]
    assert len(before) > 1

    flix.save(tmp_path / "backup")  # not the WAL's deployment directory
    records, _ = wal.records()
    assert [r.verb for r in records] == before  # log untouched

    collection = load_collection(deployment.collection_dir)
    recovered, report = recover_flix(collection, deployment.index_dir)
    assert recovered.index_fingerprint() == flix.index_fingerprint()
    assert report.records_applied == 5

    # an explicit checkpoint=True forces truncation wherever the save goes
    flix.save(tmp_path / "backup2", checkpoint=True)
    records, _ = wal.records()
    assert [r.verb for r in records] == ["begin"]


def test_crashed_checkpoint_truncation_still_recovers(deployment, mutation_docs):
    """A crash between truncate()'s file truncation and its begin append
    leaves a magic-only log; the snapshot just saved is complete, so
    recovery must attach cleanly, replay nothing, and resume logging."""
    from repro.wal import WAL_MAGIC

    flix = deployment.flix
    flix.enable_wal(wal_path_for(deployment.index_dir))
    run_verbs(flix, mutation_docs)
    checkpoint(deployment, flix)
    # rewind the log to the crash point: truncated, begin never written
    wal_path_for(deployment.index_dir).write_bytes(WAL_MAGIC)

    collection = load_collection(deployment.collection_dir)
    recovered, report = recover_flix(collection, deployment.index_dir)
    assert report.records_applied == report.records_seen == 0
    assert recovered.index_fingerprint() == flix.index_fingerprint()
    assert recovered.wal.base_generation == flix.layout_generation
    recovered.add_document(mutation_docs[5])  # logging resumed


def test_recovered_instance_resumes_logging(deployment, mutation_docs):
    flix = deployment.flix
    flix.enable_wal(wal_path_for(deployment.index_dir))
    run_verbs(flix, mutation_docs)

    collection = load_collection(deployment.collection_dir)
    recovered, _ = recover_flix(collection, deployment.index_dir)
    assert recovered.wal is not None
    recovered.add_document(mutation_docs[5])

    # a second cold recovery sees the resumed history too
    collection2 = load_collection(deployment.collection_dir)
    second, report = recover_flix(collection2, deployment.index_dir)
    assert second.layout_generation == recovered.layout_generation
    assert second.index_fingerprint() == recovered.index_fingerprint()
    assert report.applied_verbs[-1] == "add"


def test_stale_records_are_skipped_not_reapplied(deployment, mutation_docs):
    """A snapshot saved mid-history makes the earlier records no-ops."""
    flix = deployment.flix
    flix.enable_wal(wal_path_for(deployment.index_dir))
    flix.add_document(mutation_docs[0])
    checkpoint(deployment, flix)  # truncates the log
    flix.add_document(mutation_docs[1])

    # graft the pre-checkpoint record back in front, simulating a
    # checkpoint that persisted the snapshot but failed to truncate
    path = wal_path_for(deployment.index_dir)
    records, _ = read_wal(path)
    stale = WriteAheadLog(deployment.index_dir / "stale.log", base_generation=0)
    for record in records:
        if record.verb != "begin":
            stale.append(record.verb, record.generation, record.payload)
    stale.close()

    collection = load_collection(deployment.collection_dir)
    recovered, report = recover_flix(collection, deployment.index_dir)
    assert recovered.index_fingerprint() == flix.index_fingerprint()
    assert report.records_skipped == 0  # truncation did run here


def test_unknown_verb_is_corruption(deployment):
    generation = deployment.flix.layout_generation
    wal = WriteAheadLog(
        wal_path_for(deployment.index_dir), base_generation=generation
    )
    wal.append("mystery", generation + 1, {})
    wal.close()
    collection = load_collection(deployment.collection_dir)
    with pytest.raises(WalCorruptionError, match="unknown verb"):
        recover_flix(collection, deployment.index_dir)


def test_generation_mismatch_is_corruption(deployment, mutation_docs):
    from repro.wal import document_to_payload

    generation = deployment.flix.layout_generation
    wal = WriteAheadLog(
        wal_path_for(deployment.index_dir), base_generation=generation
    )
    # an add that claims to produce generation +2 (it produces +1)
    wal.append(
        "add",
        generation + 2,
        {"documents": [document_to_payload(mutation_docs[0])]},
    )
    wal.close()
    collection = load_collection(deployment.collection_dir)
    with pytest.raises(WalCorruptionError, match="disagree"):
        recover_flix(collection, deployment.index_dir)


def test_report_describe_mentions_torn_tail():
    report = RecoveryReport(
        snapshot_generation=3,
        records_seen=4,
        records_applied=2,
        discarded_bytes=17,
        final_generation=5,
    )
    text = report.describe()
    assert "generation 5" in text
    assert "2/4" in text
    assert "17 torn tail byte(s)" in text


def test_update_document_logs_remove_then_add(deployment, mutation_docs):
    flix = deployment.flix
    flix.enable_wal(wal_path_for(deployment.index_dir))
    flix.add_document(mutation_docs[0])
    flix.update_document(mutation_docs[0])
    records, _ = read_wal(wal_path_for(deployment.index_dir))
    assert [r.verb for r in records] == ["begin", "add", "remove", "add"]

    collection = load_collection(deployment.collection_dir)
    recovered, report = recover_flix(collection, deployment.index_dir)
    assert recovered.index_fingerprint() == flix.index_fingerprint()
    assert report.records_applied == 3
