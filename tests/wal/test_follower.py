"""Follower replicas: WAL tailing, query parity, lag, and gap handling."""

from __future__ import annotations

import pytest

from repro.bench.sharding import _response_signature, parity_requests
from repro.wal import (
    FileWalSource,
    FollowerFlix,
    RemoteWalSource,
    ReplicationError,
    wal_path_for,
)

from .conftest import checkpoint, run_verbs


@pytest.fixture()
def primary(deployment):
    deployment.flix.enable_wal(wal_path_for(deployment.index_dir))
    return deployment.flix


def test_follower_tails_the_log_incrementally(deployment, primary, mutation_docs):
    follower = FollowerFlix.attach(
        deployment.collection_dir, deployment.index_dir
    )
    assert follower.role == "follower"
    assert follower.poll() == 0  # nothing to replicate yet

    primary.add_document(mutation_docs[0])
    primary.add_document(mutation_docs[1])
    assert follower.replication_lag == 0  # lag observed at last poll
    assert follower.poll() == 2
    assert follower.generation == primary.layout_generation
    assert follower.replication_lag == 0

    primary.add_documents(mutation_docs[2:4])
    primary.remove_document(mutation_docs[0].name)
    assert follower.poll() == 2
    assert follower.index_fingerprint() == primary.index_fingerprint()
    follower.close()


def test_follower_parity_across_all_query_kinds(deployment, primary, mutation_docs):
    run_verbs(primary, mutation_docs)
    follower = FollowerFlix.attach(
        deployment.collection_dir, deployment.index_dir
    )
    follower.poll()
    assert follower.index_fingerprint() == primary.index_fingerprint()

    # the follower's collection grew through the log; build the parity
    # mix against it so both sides resolve the same roots
    for name, request in parity_requests(follower.flix.collection):
        expected = _response_signature(primary.query(request))
        got = _response_signature(follower.query(request))
        assert got == expected, name
    follower.close()


def test_follower_lag_counts_unapplied_generations(deployment, primary, mutation_docs):
    follower = FollowerFlix.attach(
        deployment.collection_dir, deployment.index_dir
    )
    follower.poll()
    primary.add_document(mutation_docs[0])
    primary.add_document(mutation_docs[1])
    primary.add_document(mutation_docs[2])

    # a poll observes the tail; lag counts what it applied is zero —
    # use a source that reports the tail without new records to see lag
    source = FileWalSource(wal_path_for(deployment.index_dir))
    segment = source.fetch(follower.generation)
    assert segment.tail_generation - follower.generation == 3

    follower.poll()
    assert follower.replication_lag == 0
    assert follower.generation == primary.layout_generation
    follower.close()


def test_truncation_past_follower_is_a_gap(deployment, primary, mutation_docs):
    follower = FollowerFlix.attach(
        deployment.collection_dir, deployment.index_dir
    )
    follower.poll()
    primary.add_document(mutation_docs[0])
    checkpoint(deployment, primary)  # the checkpoint truncates the log
    primary.add_document(mutation_docs[1])
    with pytest.raises(ReplicationError, match="truncated past"):
        follower.poll()

    # re-attach from the fresh snapshot and catch up
    reattached = FollowerFlix.attach(
        deployment.collection_dir, deployment.index_dir
    )
    reattached.poll()
    assert reattached.index_fingerprint() == primary.index_fingerprint()
    follower.close()
    reattached.close()


def test_remote_wal_source_pulls_from_worker(deployment, primary, mutation_docs):
    from repro.shard.plan import ShardPlanner, write_shard_map
    from repro.shard.worker import ShardWorker

    write_shard_map(ShardPlanner(1).plan(primary), deployment.index_dir)
    run_verbs(primary, mutation_docs)

    worker = ShardWorker.attach(
        deployment.collection_dir, deployment.index_dir, 0, verify=False
    )
    host, port = worker.start()
    try:
        source = RemoteWalSource(host, port)
        follower = FollowerFlix.attach(
            deployment.collection_dir, deployment.index_dir, source=source
        )
        assert follower.poll() == 5
        assert follower.generation == primary.layout_generation
        assert follower.index_fingerprint() == primary.index_fingerprint()
        for name, request in parity_requests(follower.flix.collection):
            assert _response_signature(follower.query(request)) == \
                _response_signature(primary.query(request)), name
        follower.close()
    finally:
        worker.close()


def test_remote_wal_source_pages_through_backlog(deployment, primary, mutation_docs):
    """One poll never ships the whole backlog in a single frame: the
    server pages on ``max_records`` and the client iterates."""
    from repro.shard.plan import ShardPlanner, write_shard_map
    from repro.shard.worker import ShardWorker

    write_shard_map(ShardPlanner(1).plan(primary), deployment.index_dir)
    run_verbs(primary, mutation_docs)

    worker = ShardWorker.attach(
        deployment.collection_dir, deployment.index_dir, 0, verify=False
    )
    host, port = worker.start()
    try:
        # the server truncates an over-long page and flags the remainder
        verb, payload = worker._dispatch(
            "wal_pull", {"after_generation": -1, "max_records": 2}
        )
        assert verb == "wal_records"
        assert len(payload["records"]) == 2
        assert payload["truncated"] is True

        # a page_size=1 client still assembles the full, ordered history
        source = RemoteWalSource(host, port, page_size=1)
        segment = source.fetch(after_generation=0)
        assert [r.verb for r in segment.records] == [
            "add", "add", "add", "add_batch", "remove",
        ]
        assert segment.tail_generation == primary.layout_generation

        follower = FollowerFlix.attach(
            deployment.collection_dir, deployment.index_dir, source=source
        )
        assert follower.poll() == 5
        assert follower.index_fingerprint() == primary.index_fingerprint()
        follower.close()
    finally:
        worker.close()


def test_remote_source_empty_log_serves_cleanly(deployment):
    from repro.shard.plan import ShardPlanner, write_shard_map
    from repro.shard.worker import ShardWorker

    write_shard_map(
        ShardPlanner(1).plan(deployment.flix), deployment.index_dir
    )
    assert not wal_path_for(deployment.index_dir).exists()  # no log at all
    worker = ShardWorker.attach(
        deployment.collection_dir, deployment.index_dir, 0
    )
    host, port = worker.start()
    try:
        segment = RemoteWalSource(host, port).fetch(after_generation=0)
        assert segment.records == ()
        assert segment.base_generation == segment.tail_generation == 0
    finally:
        worker.close()


def test_follower_metrics_move(deployment, primary, mutation_docs):
    follower = FollowerFlix.attach(
        deployment.collection_dir, deployment.index_dir
    )
    primary.add_document(mutation_docs[0])
    follower.poll()
    reg = follower.flix.obs.registry
    assert reg.get("flix_replication_polls_total").value(outcome="ok") == 1
    assert reg.get("flix_replication_applied_total").value(verb="add") == 1
    assert reg.get("flix_replication_lag").value() == 0
    assert (
        reg.get("flix_replication_generation").value()
        == follower.generation
    )
    follower.close()
