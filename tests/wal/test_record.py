"""The WAL record format: framing, checksums, torn-tail discipline."""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.wal.record import (
    MAX_RECORD_BYTES,
    WAL_MAGIC,
    WalCorruptionError,
    WalRecord,
    decode_records,
)


def encode(*records: WalRecord) -> bytes:
    return WAL_MAGIC + b"".join(record.to_bytes() for record in records)


RECORDS = (
    WalRecord("begin", 0, {"base_generation": 0}),
    WalRecord("add", 1, {"documents": [{"name": "a.xml", "xml": "<a/>"}]}),
    WalRecord("remove", 2, {"name": "a.xml"}),
    WalRecord("compact", 3, {"meta_ids": [4, 5, 6]}),
)


def test_roundtrip():
    decoded, discarded = decode_records(encode(*RECORDS))
    assert discarded == 0
    assert tuple(decoded) == RECORDS


def test_record_framing_is_length_crc_body():
    record = WalRecord("add", 7, {"x": 1})
    frame = record.to_bytes()
    length, crc = struct.unpack(">II", frame[:8])
    body = frame[8:]
    assert length == len(body)
    assert crc == zlib.crc32(body)
    payload = json.loads(body)
    assert payload == {"verb": "add", "generation": 7, "payload": {"x": 1}}


def test_bad_magic_raises():
    with pytest.raises(WalCorruptionError):
        decode_records(b"NOTAWAL!" + RECORDS[0].to_bytes())


def test_empty_log_is_valid():
    decoded, discarded = decode_records(WAL_MAGIC)
    assert decoded == [] and discarded == 0


def test_torn_tail_at_every_byte_offset():
    """Cutting the image anywhere drops only the torn record."""
    data = encode(*RECORDS)
    boundaries = [len(WAL_MAGIC)]
    for record in RECORDS:
        boundaries.append(boundaries[-1] + len(record.to_bytes()))
    for cut in range(len(WAL_MAGIC), len(data)):
        decoded, discarded = decode_records(data[:cut])
        complete = sum(1 for b in boundaries[1:] if b <= cut)
        assert len(decoded) == complete, f"cut at {cut}"
        assert discarded == cut - boundaries[complete], f"cut at {cut}"
        assert tuple(decoded) == RECORDS[:complete]


def test_bit_flip_in_body_discards_from_there():
    data = bytearray(encode(*RECORDS))
    # flip one bit inside the second record's body (skip its header)
    offset = len(WAL_MAGIC) + len(RECORDS[0].to_bytes()) + 8 + 3
    data[offset] ^= 0x40
    decoded, discarded = decode_records(bytes(data))
    assert tuple(decoded) == RECORDS[:1]
    assert discarded == len(data) - len(WAL_MAGIC) - len(RECORDS[0].to_bytes())


def test_bit_flip_in_length_header_discards_from_there():
    data = bytearray(encode(*RECORDS))
    offset = len(WAL_MAGIC) + len(RECORDS[0].to_bytes())
    data[offset] ^= 0x80  # announces > MAX_RECORD_BYTES
    decoded, _ = decode_records(bytes(data))
    assert tuple(decoded) == RECORDS[:1]


def test_implausible_length_is_treated_as_corruption():
    bad = WAL_MAGIC + struct.pack(">II", MAX_RECORD_BYTES + 1, 0)
    decoded, discarded = decode_records(bad)
    assert decoded == [] and discarded == 8


def test_crc_collision_with_garbage_json_is_not_applied():
    body = b"not json at all"
    frame = struct.pack(">II", len(body), zlib.crc32(body)) + body
    decoded, discarded = decode_records(WAL_MAGIC + frame)
    assert decoded == [] and discarded == len(frame)


def test_from_body_defaults_payload():
    record = WalRecord.from_body(b'{"verb":"remove","generation":3}')
    assert record == WalRecord("remove", 3, {})
