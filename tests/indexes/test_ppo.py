"""Unit and property tests for the pre/postorder index."""

import pytest
from hypothesis import given

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.indexes.base import IndexNotApplicableError
from repro.indexes.ppo import PpoIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import (
    chain_graph,
    cycle_graph,
    random_tags,
    random_tree,
    tree_params,
)


def build(graph, tags=None):
    tags = tags or {n: "t" for n in graph}
    return PpoIndex.build(graph, tags, MemoryBackend())


class TestApplicability:
    def test_diamond_rejected(self):
        g = Digraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        with pytest.raises(IndexNotApplicableError):
            build(g)

    def test_cycle_rejected(self):
        with pytest.raises(IndexNotApplicableError):
            build(cycle_graph(3))

    def test_forest_accepted(self):
        g = Digraph([(0, 1), (2, 3)])
        index = build(g)
        assert index.node_count == 4


class TestReachability:
    def test_chain(self):
        index = build(chain_graph(4))
        assert index.reachable(0, 4)
        assert index.reachable(2, 2)
        assert not index.reachable(3, 1)

    def test_siblings_not_reachable(self):
        g = Digraph([(0, 1), (0, 2)])
        index = build(g)
        assert not index.reachable(1, 2)
        assert not index.reachable(2, 1)

    def test_across_trees_not_reachable(self):
        g = Digraph([(0, 1), (2, 3)])
        index = build(g)
        assert not index.reachable(0, 3)
        assert not index.reachable(2, 1)

    def test_unknown_node(self):
        index = build(chain_graph(1))
        assert not index.reachable(0, 99)
        assert index.distance(0, 99) is None


class TestDistancesAndOrdering:
    def test_distance_is_depth_difference(self):
        index = build(chain_graph(5))
        assert index.distance(1, 4) == 3
        assert index.distance(4, 4) == 0

    def test_descendants_sorted_by_distance(self):
        g = random_tree(3, 30)
        index = build(g)
        results = index.find_descendants_by_tag(0, None)
        distances = [d for _n, d in results]
        assert distances == sorted(distances)
        assert len(results) == 30

    def test_descendants_by_tag_filters(self):
        g = chain_graph(3)
        tags = {0: "a", 1: "b", 2: "a", 3: "b"}
        index = PpoIndex.build(g, tags, MemoryBackend())
        assert index.find_descendants_by_tag(0, "b") == [(1, 1), (3, 3)]

    def test_ancestors_walk(self):
        index = build(chain_graph(4))
        assert index.find_ancestors_by_tag(3, None) == [
            (3, 0), (2, 1), (1, 2), (0, 3),
        ]

    def test_ancestors_by_tag(self):
        g = chain_graph(3)
        tags = {0: "a", 1: "b", 2: "a", 3: "b"}
        index = PpoIndex.build(g, tags, MemoryBackend())
        assert index.find_ancestors_by_tag(3, "a") == [(2, 1), (0, 3)]

    def test_reachable_subset(self):
        index = build(chain_graph(5))
        assert index.reachable_subset(1, [5, 3, 0]) == [(3, 2), (5, 4)]


class TestNumbering:
    def test_pre_and_post_orders(self):
        g = Digraph([(0, 1), (0, 2), (1, 3)])
        index = build(g)
        assert index.preorder(0) == 0
        # descendants-or-self interval covers the whole tree
        assert index.postorder(0) == 3
        assert index.depth(3) == 2

    def test_paper_reachability_condition(self):
        """pre(x) < pre(y) and post(x) > post(y) iff descendant (proper)."""
        g = random_tree(7, 25)
        index = build(g)
        closure = transitive_closure(g)
        for x in g:
            for y in g:
                if x == y:
                    continue
                paper_test = (
                    index.preorder(x) < index.preorder(y)
                    and index.postorder(x) >= index.postorder(y)
                )
                assert paper_test == closure.reachable(x, y)


class TestProperties:
    @given(tree_params)
    def test_matches_oracle_on_random_trees(self, params):
        seed, n = params
        g = random_tree(seed, n)
        tags = random_tags(seed, n)
        index = PpoIndex.build(g, tags, MemoryBackend())
        closure = transitive_closure(g)
        for u in g:
            assert dict(index.find_descendants_by_tag(u, None)) == closure.descendants(u)
            for tag in "abcd":
                expected = {
                    v: d
                    for v, d in closure.descendants(u).items()
                    if tags[v] == tag
                }
                assert dict(index.find_descendants_by_tag(u, tag)) == expected

    @given(tree_params)
    def test_interval_invariants(self, params):
        """Intervals nest or are disjoint; size equals subtree size."""
        seed, n = params
        g = random_tree(seed, n)
        index = build(g)
        intervals = {
            node: (index.preorder(node), index.postorder(node)) for node in g
        }
        for u in g:
            lo_u, hi_u = intervals[u]
            assert hi_u - lo_u + 1 == sum(
                1 for v in g if lo_u <= intervals[v][0] <= hi_u
            )
            for v in g:
                if u == v:
                    continue
                lo_v, hi_v = intervals[v]
                nested = (lo_u <= lo_v and hi_v <= hi_u) or (
                    lo_v <= lo_u and hi_u <= hi_v
                )
                disjoint = hi_u < lo_v or hi_v < lo_u
                assert nested or disjoint


class TestPersistence:
    def test_rows_persisted_per_node(self):
        g = random_tree(1, 12)
        backend = MemoryBackend()
        PpoIndex.build(g, {n: "t" for n in g}, backend)
        assert backend.table("ppo_nodes").row_count() == 12

    def test_size_linear_in_nodes(self):
        small = build(random_tree(1, 10)).size_bytes()
        large = build(random_tree(1, 100)).size_bytes()
        assert 8 <= large / small <= 12
