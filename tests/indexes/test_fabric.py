"""Tests for the Index Fabric (trie over designated label paths)."""

import pytest

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.indexes.base import IndexNotApplicableError
from repro.indexes.fabric import FabricIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import cycle_graph, random_tags, random_tree


def build(graph, tags, max_keys=200000):
    return FabricIndex.build_bounded(graph, tags, MemoryBackend(), max_keys)


def library_tree():
    #   0 lib -> 1 book -> 2 title
    #         -> 3 book -> 4 title, 5 author
    g = Digraph([(0, 1), (1, 2), (0, 3), (3, 4), (3, 5)])
    tags = {0: "lib", 1: "book", 2: "title", 3: "book", 4: "title", 5: "author"}
    return g, tags


class TestExactLookup:
    def test_designated_paths(self):
        g, tags = library_tree()
        index = build(g, tags)
        assert index.match_label_path(["lib"]) == {0}
        assert index.match_label_path(["lib", "book"]) == {1, 3}
        assert index.match_label_path(["lib", "book", "title"]) == {2, 4}
        assert index.match_label_path(["lib", "book", "author"]) == {5}

    def test_absent_and_partial_paths(self):
        g, tags = library_tree()
        index = build(g, tags)
        assert index.match_label_path(["book"]) == set()
        assert index.match_label_path(["lib", "title"]) == set()
        assert index.match_label_path([]) == set()

    def test_path_count(self):
        g, tags = library_tree()
        index = build(g, tags)
        # lib, lib/book, lib/book/title, lib/book/author
        assert index.path_count == 4
        assert index.trie_node_count >= 4

    def test_dag_gives_multiple_paths_per_node(self):
        g = Digraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        tags = {0: "r", 1: "a", 2: "b", 3: "x"}
        index = build(g, tags)
        assert index.match_label_path(["r", "a", "x"]) == {3}
        assert index.match_label_path(["r", "b", "x"]) == {3}


class TestPrefixOperations:
    def test_paths_with_prefix(self):
        g, tags = library_tree()
        index = build(g, tags)
        paths = index.paths_with_prefix(["lib", "book"])
        assert ("lib", "book") in paths
        assert ("lib", "book", "title") in paths
        assert ("lib", "book", "author") in paths
        assert len(paths) == 3

    def test_subtree_elements(self):
        g, tags = library_tree()
        index = build(g, tags)
        assert index.subtree_elements(["lib", "book"]) == {1, 2, 3, 4, 5}
        assert index.subtree_elements(["lib", "book", "title"]) == {2, 4}

    def test_missing_prefix(self):
        g, tags = library_tree()
        index = build(g, tags)
        assert index.paths_with_prefix(["zzz"]) == []
        assert index.subtree_elements(["zzz"]) == set()


class TestGuards:
    def test_cycle_rejected(self):
        with pytest.raises(IndexNotApplicableError):
            build(cycle_graph(3), {i: "t" for i in range(3)})

    def test_key_budget_enforced(self):
        g, tags = library_tree()
        with pytest.raises(IndexNotApplicableError):
            build(g, tags, max_keys=2)

    def test_empty_graph(self):
        index = build(Digraph(), {})
        assert index.path_count == 0


class TestGenericOperations:
    def test_matches_oracle_on_trees(self):
        for seed in range(5):
            g = random_tree(seed, 20)
            tags = random_tags(seed, 20)
            index = build(g, tags)
            oracle = transitive_closure(g)
            for u in g:
                assert dict(index.find_descendants_by_tag(u, None)) == (
                    oracle.descendants(u)
                )

    def test_registered(self):
        from repro.indexes.registry import available_strategies

        assert "fabric" in available_strategies()

    def test_keys_persisted(self):
        g, tags = library_tree()
        backend = MemoryBackend()
        FabricIndex.build(g, tags, backend)
        rows = list(backend.table("fabric_keys").scan())
        assert ("lib/book/title", 2) in rows
        assert ("lib/book/title", 4) in rows
