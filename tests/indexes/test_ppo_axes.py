"""Tests for PPO's remaining XPath axes (section 2.2: all axes from the
pre/post numbers)."""

from hypothesis import given

from repro.graph.digraph import Digraph
from repro.indexes.ppo import PpoIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import random_tree, tree_params


def build(graph):
    return PpoIndex.build(graph, {n: "t" for n in graph}, MemoryBackend())


def sample_tree():
    """        0
            /  |  \\
           1   4   6
          / \\      |
         2   3      7
    (node 5 is a second child of 4)        """
    g = Digraph([(0, 1), (1, 2), (1, 3), (0, 4), (4, 5), (0, 6), (6, 7)])
    return g


class TestChildren:
    def test_document_order(self):
        index = build(sample_tree())
        assert index.children(0) == [1, 4, 6]
        assert index.children(1) == [2, 3]
        assert index.children(2) == []

    def test_consistent_with_parent(self):
        g = random_tree(5, 40)
        index = build(g)
        for node in g:
            for child in index.children(node):
                assert index.parent(child) == node

    @given(tree_params)
    def test_children_match_graph_successors(self, params):
        seed, n = params
        g = random_tree(seed, n)
        index = build(g)
        for node in g:
            assert set(index.children(node)) == set(g.successors(node))


class TestFollowingPreceding:
    def test_following_excludes_subtree_and_ancestors(self):
        index = build(sample_tree())
        assert index.following(1) == [4, 5, 6, 7]
        assert index.following(5) == [6, 7]
        assert index.following(7) == []

    def test_preceding_excludes_ancestors(self):
        index = build(sample_tree())
        assert index.preceding(6) == [1, 2, 3, 4, 5]
        assert index.preceding(4) == [1, 2, 3]
        assert index.preceding(2) == []  # 0 and 1 are ancestors

    def test_axes_partition_the_tree(self):
        """self + ancestors + descendants + following + preceding = tree."""
        g = random_tree(9, 30)
        index = build(g)
        for node in g:
            ancestors = {n for n, _ in index.find_ancestors_by_tag(node, None)}
            descendants = {n for n, _ in index.find_descendants_by_tag(node, None)}
            following = set(index.following(node))
            preceding = set(index.preceding(node))
            pieces = [ancestors, descendants, following, preceding]
            union = set().union(*pieces)
            assert union == set(g.nodes())
            # descendants/ancestors overlap only at the node itself
            assert ancestors & descendants == {node}
            assert not following & preceding
            assert not (following | preceding) & (ancestors | descendants)

    def test_forest_axes_stay_within_tree(self):
        g = Digraph([(0, 1), (2, 3)])
        index = build(g)
        assert index.following(1) == []
        assert index.preceding(3) == []
        assert index.following(0) == []


class TestSiblings:
    def test_following_siblings(self):
        index = build(sample_tree())
        assert index.following_siblings(1) == [4, 6]
        assert index.following_siblings(4) == [6]
        assert index.following_siblings(6) == []

    def test_preceding_siblings(self):
        index = build(sample_tree())
        assert index.preceding_siblings(6) == [1, 4]
        assert index.preceding_siblings(1) == []

    def test_root_has_no_siblings(self):
        index = build(sample_tree())
        assert index.following_siblings(0) == []
        assert index.preceding_siblings(0) == []

    @given(tree_params)
    def test_siblings_share_parent(self, params):
        seed, n = params
        g = random_tree(seed, n)
        index = build(g)
        for node in g:
            for sibling in index.following_siblings(node):
                assert index.parent(sibling) == index.parent(node)
