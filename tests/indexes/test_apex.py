"""Unit tests for the APEX index."""

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.indexes.apex import ApexIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import random_digraph, random_tags


def build(graph, tags, workload=()):
    return ApexIndex.build_adaptive(graph, tags, MemoryBackend(), workload)


def simple_graph():
    #   0(a) -> 1(b) -> 3(c)
    #   0(a) -> 2(b) -> 4(c),  2 -> 5(d)
    g = Digraph([(0, 1), (0, 2), (1, 3), (2, 4), (2, 5)])
    tags = {0: "a", 1: "b", 2: "b", 3: "c", 4: "c", 5: "d"}
    return g, tags


class TestApexZero:
    def test_base_partition_is_by_tag(self):
        g, tags = simple_graph()
        index = build(g, tags)
        assert index.class_of(1) == index.class_of(2)
        assert index.class_of(3) == index.class_of(4)
        assert index.class_of(0) != index.class_of(1)
        assert index.class_count == 4

    def test_reachability_and_distance(self):
        g, tags = simple_graph()
        index = build(g, tags)
        assert index.distance(0, 4) == 2
        assert index.distance(1, 4) is None
        assert index.reachable(2, 5)

    def test_summary_refutes_without_data_access(self):
        """c-tagged nodes reach nothing with tag a: answered from the summary."""
        g, tags = simple_graph()
        index = build(g, tags)
        assert index.distance(3, 0) is None

    def test_descendants_with_tag(self):
        g, tags = simple_graph()
        index = build(g, tags)
        assert index.find_descendants_by_tag(0, "c") == [(3, 2), (4, 2)]
        assert index.find_descendants_by_tag(0, "zzz") == []

    def test_ancestors(self):
        g, tags = simple_graph()
        index = build(g, tags)
        assert index.find_ancestors_by_tag(4, None) == [(4, 0), (2, 1), (0, 2)]

    def test_matches_oracle_on_random_graphs(self):
        for seed in range(8):
            g = random_digraph(seed, 22)
            tags = random_tags(seed, 22)
            index = build(g, tags)
            closure = transitive_closure(g)
            for u in g:
                assert dict(index.find_descendants_by_tag(u, None)) == (
                    closure.descendants(u)
                )


class TestWorkloadRefinement:
    def test_refined_path_gets_exact_class(self):
        g, tags = simple_graph()
        refined = build(g, tags, workload=[("a", "b", "c")])
        base = build(g, tags)
        assert refined.class_count >= base.class_count
        # both c nodes are on the a/b/c path here, so they stay together
        assert refined.class_of(3) == refined.class_of(4)

    def test_refinement_splits_off_path_nodes(self):
        #  0(a) -> 1(b) -> 2(c);  3(x) -> 4(c)  — only node 2 is on a/b/c
        g = Digraph([(0, 1), (1, 2), (3, 4)])
        tags = {0: "a", 1: "b", 2: "c", 3: "x", 4: "c"}
        refined = build(g, tags, workload=[("a", "b", "c")])
        assert refined.class_of(2) != refined.class_of(4)

    def test_refinement_preserves_query_answers(self):
        for seed in range(5):
            g = random_digraph(seed, 18)
            tags = random_tags(seed, 18)
            plain = build(g, tags)
            refined = build(g, tags, workload=[("a", "b"), ("b", "c", "d")])
            for u in g:
                assert plain.find_descendants_by_tag(u, "c") == (
                    refined.find_descendants_by_tag(u, "c")
                )

    def test_frequent_paths_recorded(self):
        g, tags = simple_graph()
        index = build(g, tags, workload=[("a", "b")])
        assert index.frequent_paths == [("a", "b")]


class TestLabelPathMatch:
    def test_exact_root_path(self):
        g, tags = simple_graph()
        index = build(g, tags)
        assert index.match_label_path(["a"]) == {0}
        assert index.match_label_path(["a", "b"]) == {1, 2}
        assert index.match_label_path(["a", "b", "c"]) == {3, 4}

    def test_missing_path(self):
        g, tags = simple_graph()
        index = build(g, tags)
        assert index.match_label_path(["a", "c"]) == set()
        assert index.match_label_path([]) == set()


class TestPersistence:
    def test_tables_created(self):
        g, tags = simple_graph()
        backend = MemoryBackend()
        ApexIndex.build(g, tags, backend)
        assert set(backend.table_names()) == {
            "apex_extents",
            "apex_structure",
            "apex_edges",
        }
        assert backend.table("apex_extents").row_count() == 6
        assert backend.table("apex_edges").row_count() == 5
