"""Unit and property tests for the HOPI 2-hop index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.indexes.hopi import HopiIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import (
    chain_graph,
    cycle_graph,
    diamond_graph,
    graph_params,
    random_digraph,
    random_tags,
)


def build(graph, tags=None):
    tags = tags or {n: "t" for n in graph}
    return HopiIndex.build(graph, tags, MemoryBackend())


class TestBasics:
    def test_self_reachability(self):
        index = build(diamond_graph())
        for node in range(4):
            assert index.reachable(node, node)
            assert index.distance(node, node) == 0

    def test_diamond(self):
        index = build(diamond_graph())
        assert index.distance(0, 3) == 2
        assert index.distance(1, 2) is None

    def test_cycle_distances(self):
        index = build(cycle_graph(4))
        assert index.distance(0, 3) == 3
        assert index.distance(3, 0) == 1

    def test_unknown_nodes(self):
        index = build(chain_graph(1))
        assert not index.reachable(0, 42)
        assert index.distance(42, 0) is None
        assert index.find_descendants_by_tag(42, None) == []

    def test_descendants_sorted(self):
        g = random_digraph(5, 25)
        index = build(g)
        for u in g:
            distances = [d for _n, d in index.find_descendants_by_tag(u, None)]
            assert distances == sorted(distances)

    def test_two_hop_cover_property(self):
        """Reachability is decided purely by label intersection."""
        g = random_digraph(9, 20)
        index = build(g)
        closure = transitive_closure(g)
        for u in g:
            for v in g:
                shared = set(index._out[u]) & set(index._in[v])
                assert bool(shared) == closure.reachable(u, v)

    def test_label_size_much_smaller_than_closure(self):
        """Where many paths share hub nodes, 2-hop crushes the closure.

        40 sources -> 3 hubs -> 40 sinks: the closure has ~1600 pairs, the
        cover needs only a label entry per (node, hub).
        """
        g = Digraph()
        hubs = [100, 101, 102]
        for s in range(40):
            for h in hubs:
                g.add_edge(s, h)
        for h in hubs:
            for t in range(200, 240):
                g.add_edge(h, t)
        index = build(g)
        closure_pairs = transitive_closure(g).pair_count
        assert index.label_entry_count < closure_pairs / 4

    def test_chain_labels_bounded_by_closure(self):
        """Directed chains defeat degree-ordered pruning (no earlier
        landmark lies on any path), but labels never exceed the closure."""
        g = chain_graph(100)
        index = build(g)
        assert index.label_entry_count <= transitive_closure(g).pair_count + 101


class TestAgainstOracle:
    @given(graph_params)
    @settings(max_examples=60, deadline=None)
    def test_distances_exact(self, params):
        seed, n = params
        g = random_digraph(seed, n)
        index = build(g)
        closure = transitive_closure(g)
        for u in g:
            for v in g:
                assert index.distance(u, v) == closure.distance(u, v)

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_enumeration_exact(self, params):
        seed, n = params
        g = random_digraph(seed, n)
        tags = random_tags(seed, n)
        index = HopiIndex.build(g, tags, MemoryBackend())
        closure = transitive_closure(g)
        for u in g:
            assert dict(index.find_descendants_by_tag(u, None)) == closure.descendants(u)
            ancestors = {
                v: closure.distance(v, u)
                for v in g
                if closure.reachable(v, u)
            }
            assert dict(index.find_ancestors_by_tag(u, None)) == ancestors
            for tag in "ab":
                expected = {
                    v: d for v, d in closure.descendants(u).items() if tags[v] == tag
                }
                assert dict(index.find_descendants_by_tag(u, tag)) == expected


class TestDivideAndConquer:
    @given(graph_params, st.integers(min_value=1, max_value=12))
    @settings(max_examples=50, deadline=None)
    def test_equivalent_to_centralized(self, params, partition_size):
        seed, n = params
        g = random_digraph(seed, n)
        tags = random_tags(seed, n)
        dnc = HopiIndex.build_divide_and_conquer(
            g, tags, MemoryBackend(), partition_size
        )
        closure = transitive_closure(g)
        for u in g:
            assert dict(dnc.find_descendants_by_tag(u, None)) == closure.descendants(u)
            for v in g:
                assert dnc.distance(u, v) == closure.distance(u, v)

    def test_single_partition_degenerates_to_centralized_semantics(self):
        g = diamond_graph()
        dnc = HopiIndex.build_divide_and_conquer(
            g, {n: "t" for n in g}, MemoryBackend(), partition_size=100
        )
        assert dnc.distance(0, 3) == 2

    def test_cross_partition_cycle(self):
        """A cycle sliced across partitions still answers exactly."""
        g = cycle_graph(9)
        dnc = HopiIndex.build_divide_and_conquer(
            g, {n: "t" for n in g}, MemoryBackend(), partition_size=3
        )
        for u in range(9):
            for v in range(9):
                assert dnc.distance(u, v) == (v - u) % 9


class TestPersistence:
    def test_labels_persisted(self):
        g = diamond_graph()
        backend = MemoryBackend()
        index = HopiIndex.build(g, {n: "t" for n in g}, backend)
        stored = (
            backend.table("hopi_in_labels").row_count()
            + backend.table("hopi_out_labels").row_count()
        )
        assert stored == index.label_entry_count
        assert index.size_bytes() > 0
