"""Unit tests for the 1-index / A(k)-index family."""

import pytest

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.indexes.kindex import KBisimulationIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import random_digraph, random_tags


def build_k(graph, tags, k):
    return KBisimulationIndex.build_k(graph, tags, MemoryBackend(), k)


def two_context_graph():
    """Two c-nodes with different incoming label paths: a/c vs b/c."""
    g = Digraph([(0, 2), (1, 3)])
    tags = {0: "a", 1: "b", 2: "c", 3: "c"}
    return g, tags


class TestAkIndex:
    def test_a0_is_label_partition(self):
        g, tags = two_context_graph()
        index = build_k(g, tags, 0)
        assert index.class_of(2) == index.class_of(3)
        assert index.rounds_performed == 0
        assert index.k == 0

    def test_a1_separates_different_parents(self):
        g, tags = two_context_graph()
        index = build_k(g, tags, 1)
        assert index.class_of(2) != index.class_of(3)

    def test_k_needed_for_deep_context(self):
        # chains a->x->y and b->x->y: only length-2 context separates the y's
        g = Digraph([(0, 2), (2, 4), (1, 3), (3, 5)])
        tags = {0: "a", 1: "b", 2: "x", 3: "x", 4: "y", 5: "y"}
        assert build_k(g, tags, 1).class_of(4) == build_k(g, tags, 1).class_of(5)
        assert build_k(g, tags, 2).class_of(4) != build_k(g, tags, 2).class_of(5)

    def test_negative_k_rejected(self):
        g, tags = two_context_graph()
        with pytest.raises(ValueError):
            build_k(g, tags, -1)


class TestOneIndex:
    def test_default_build_is_fixpoint(self):
        g, tags = two_context_graph()
        index = KBisimulationIndex.build(g, tags, MemoryBackend())
        assert index.k is None
        assert index.class_of(2) != index.class_of(3)

    def test_fixpoint_reached_and_stable(self):
        g = random_digraph(3, 25)
        tags = random_tags(3, 25)
        fix = KBisimulationIndex.build(g, tags, MemoryBackend())
        more = build_k(g, tags, fix.rounds_performed + 5)
        assert fix.class_count == more.class_count

    def test_refinement_monotone_in_k(self):
        g = random_digraph(11, 30)
        tags = random_tags(11, 30)
        counts = [build_k(g, tags, k).class_count for k in range(4)]
        assert counts == sorted(counts)

    def test_bisimilar_nodes_share_incoming_label_paths(self):
        """1-index classes are precise for incoming label paths on trees."""
        g = Digraph([(0, 1), (0, 2), (1, 3), (2, 4)])
        tags = {0: "r", 1: "a", 2: "a", 3: "x", 4: "x"}
        index = KBisimulationIndex.build(g, tags, MemoryBackend())
        # both x nodes have incoming path r/a/x -> same class
        assert index.class_of(3) == index.class_of(4)
        assert index.class_of(1) == index.class_of(2)


class TestQueriesMatchOracle:
    def test_all_k_values_answer_exactly(self):
        for seed in range(5):
            g = random_digraph(seed, 20)
            tags = random_tags(seed, 20)
            closure = transitive_closure(g)
            for k in (0, 1, None):
                index = build_k(g, tags, k)
                for u in g:
                    assert dict(index.find_descendants_by_tag(u, None)) == (
                        closure.descendants(u)
                    )

    def test_persistence_tables(self):
        g, tags = two_context_graph()
        backend = MemoryBackend()
        KBisimulationIndex.build(g, tags, backend)
        assert "kindex_extents" in backend.table_names()
