"""Unit tests for the strategy registry."""

import pytest

from repro.graph.digraph import Digraph
from repro.indexes.base import PathIndex
from repro.indexes.registry import (
    available_strategies,
    build_index,
    register_strategy,
    strategy_class,
)
from repro.storage.memory import MemoryBackend


class TestRegistry:
    def test_builtin_strategies_present(self):
        names = available_strategies()
        for expected in ("ppo", "hopi", "apex", "kindex", "dataguide",
                         "transitive_closure"):
            assert expected in names

    def test_strategy_class_lookup(self):
        assert strategy_class("hopi").strategy_name == "hopi"

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            strategy_class("nope")
        with pytest.raises(KeyError):
            build_index("nope", Digraph(), {}, MemoryBackend())

    def test_build_index_dispatches(self):
        g = Digraph([(0, 1)])
        index = build_index("hopi", g, {0: "a", 1: "b"}, MemoryBackend())
        assert index.strategy_name == "hopi"
        assert index.reachable(0, 1)

    def test_register_custom_strategy(self):
        class Custom(PathIndex):
            strategy_name = "custom_test_strategy"

            @classmethod
            def build(cls, graph, tags, backend):
                return cls(backend)

            def reachable(self, s, t):
                return False

            def distance(self, s, t):
                return None

            def find_descendants_by_tag(self, s, tag):
                return []

            def find_ancestors_by_tag(self, s, tag):
                return []

            def _node_set(self):
                return frozenset()

        register_strategy(Custom)
        assert "custom_test_strategy" in available_strategies()
        assert strategy_class("custom_test_strategy") is Custom

    def test_abstract_name_rejected(self):
        class Bad(PathIndex):
            strategy_name = "abstract"

            @classmethod
            def build(cls, graph, tags, backend):  # pragma: no cover
                return cls(backend)

            def reachable(self, s, t):  # pragma: no cover
                return False

            def distance(self, s, t):  # pragma: no cover
                return None

            def find_descendants_by_tag(self, s, tag):  # pragma: no cover
                return []

            def find_ancestors_by_tag(self, s, tag):  # pragma: no cover
                return []

            def _node_set(self):  # pragma: no cover
                return frozenset()

        with pytest.raises(ValueError):
            register_strategy(Bad)
