"""Unit tests for the materialized transitive-closure index."""

from repro.graph.closure import transitive_closure
from repro.indexes.transitive import TransitiveClosureIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import diamond_graph, random_digraph, random_tags


def build(graph, tags=None):
    tags = tags or {n: "t" for n in graph}
    return TransitiveClosureIndex.build(graph, tags, MemoryBackend())


class TestClosureIndex:
    def test_diamond(self):
        index = build(diamond_graph())
        assert index.distance(0, 3) == 2
        assert index.reachable(0, 0)
        assert not index.reachable(1, 2)

    def test_pair_count(self):
        index = build(diamond_graph())
        # rows: 0:{0,1,2,3} 1:{1,3} 2:{2,3} 3:{3} -> 9 pairs
        assert index.pair_count == 9

    def test_matches_oracle(self):
        g = random_digraph(4, 25)
        tags = random_tags(4, 25)
        index = TransitiveClosureIndex.build(g, tags, MemoryBackend())
        closure = transitive_closure(g)
        for u in g:
            assert dict(index.find_descendants_by_tag(u, None)) == closure.descendants(u)
            ancestors = {
                v: closure.distance(v, u) for v in g if closure.reachable(v, u)
            }
            assert dict(index.find_ancestors_by_tag(u, None)) == ancestors

    def test_tag_filter(self):
        g = diamond_graph()
        tags = {0: "a", 1: "b", 2: "b", 3: "c"}
        index = TransitiveClosureIndex.build(g, tags, MemoryBackend())
        assert index.find_descendants_by_tag(0, "b") == [(1, 1), (2, 1)]
        assert index.find_ancestors_by_tag(3, "b") == [(1, 1), (2, 1)]

    def test_persisted_rows_equal_pairs(self):
        g = diamond_graph()
        backend = MemoryBackend()
        index = TransitiveClosureIndex.build(g, {n: "t" for n in g}, backend)
        assert backend.table("closure_pairs").row_count() == index.pair_count

    def test_is_largest_index(self):
        """Table 1's headline: the closure dwarfs HOPI on linked data."""
        from repro.indexes.hopi import HopiIndex

        g = random_digraph(8, 60, edge_factor=2.0)
        tags = {n: "t" for n in g}
        closure_size = TransitiveClosureIndex.build(
            g, tags, MemoryBackend()
        ).size_bytes()
        hopi_size = HopiIndex.build(g, tags, MemoryBackend()).size_bytes()
        assert closure_size > hopi_size
