"""Property and unit tests for incremental HOPI maintenance.

Edge insertions must keep every reachability and distance query exact —
the invariant behind the follow-up work the paper's bibliography points to
("Efficient creation and incremental maintenance of the HOPI index").
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.closure import transitive_closure
from repro.indexes.hopi import HopiIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import chain_graph, diamond_graph, random_digraph, random_tags


def build(graph, tags=None):
    tags = tags or {n: "t" for n in graph}
    return HopiIndex.build(graph, tags, MemoryBackend())


class TestInsertEdgeBasics:
    def test_new_reachability_appears(self):
        g = chain_graph(3)  # 0->1->2->3
        index = build(g)
        assert not index.reachable(3, 0)
        g.add_edge(3, 0)
        index.insert_edge(3, 0)
        assert index.reachable(3, 0)
        assert index.distance(3, 0) == 1
        # the cycle makes everything mutually reachable
        for u in range(4):
            for v in range(4):
                assert index.reachable(u, v)

    def test_shortcut_improves_distance(self):
        g = chain_graph(5)
        index = build(g)
        assert index.distance(0, 5) == 5
        index.insert_edge(0, 4)
        assert index.distance(0, 5) == 2
        assert index.distance(0, 4) == 1
        assert index.distance(0, 3) == 3  # unaffected pairs keep distances

    def test_duplicate_edge_noop(self):
        g = diamond_graph()
        index = build(g)
        before = index.label_entry_count
        index.insert_edge(0, 1)  # already present
        assert index.label_entry_count == before

    def test_unknown_endpoint_rejected(self):
        index = build(diamond_graph())
        with pytest.raises(KeyError):
            index.insert_edge(0, 99)

    def test_enumeration_sees_new_descendants(self):
        g = chain_graph(2)
        index = build(g)
        g2 = chain_graph(2)
        index.insert_edge(2, 0)
        descendants = dict(index.find_descendants_by_tag(1, None))
        assert descendants == {0: 2, 1: 0, 2: 1}

    def test_rows_appended_to_tables(self):
        g = chain_graph(3)
        backend = MemoryBackend()
        index = HopiIndex.build(g, {n: "t" for n in g}, backend)
        before = backend.table("hopi_in_labels").row_count()
        index.insert_edge(3, 0)
        after = backend.table("hopi_in_labels").row_count()
        assert after > before


class TestInsertNode:
    def test_isolated_node_self_reachable(self):
        index = build(diamond_graph())
        index.insert_node(99, "new")
        assert index.reachable(99, 99)
        assert index.distance(99, 99) == 0
        assert not index.reachable(0, 99)
        assert index.find_descendants_by_tag(99, None) == [(99, 0)]

    def test_duplicate_node_rejected(self):
        index = build(diamond_graph())
        with pytest.raises(ValueError):
            index.insert_node(0, "t")

    def test_node_then_edges_integrates(self):
        g = chain_graph(2)
        index = build(g)
        index.insert_node(10, "t")
        index.insert_edge(2, 10)
        index.insert_edge(10, 0)  # closes a cycle 0..2 -> 10 -> 0
        for u in (0, 1, 2, 10):
            for v in (0, 1, 2, 10):
                assert index.reachable(u, v)

    def test_tag_recorded(self):
        index = build(chain_graph(1))
        index.insert_node(5, "special")
        index.insert_edge(0, 5)
        assert index.find_descendants_by_tag(0, "special") == [(5, 1)]


class TestInsertEdgeProperties:
    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_after_insertions(self, seed, n, insertions):
        import random

        rng = random.Random(seed)
        graph = random_digraph(seed, n, edge_factor=0.8)
        tags = random_tags(seed, n)
        index = HopiIndex.build(graph, tags, MemoryBackend())
        for _ in range(insertions):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v or graph.has_edge(u, v):
                continue
            graph.add_edge(u, v)
            index.insert_edge(u, v)
        oracle = transitive_closure(graph)
        for u in graph:
            assert dict(index.find_descendants_by_tag(u, None)) == (
                oracle.descendants(u)
            )
            ancestors = {
                v: oracle.distance(v, u) for v in graph if oracle.reachable(v, u)
            }
            assert dict(index.find_ancestors_by_tag(u, None)) == ancestors

    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=2, max_value=15),
    )
    @settings(max_examples=25, deadline=None)
    def test_incremental_equals_rebuild(self, seed, n):
        """Same queries as an index built from scratch on the final graph."""
        import random

        rng = random.Random(seed)
        graph = random_digraph(seed, n, edge_factor=0.5)
        tags = random_tags(seed, n)
        incremental = HopiIndex.build(graph, tags, MemoryBackend())
        for _ in range(4):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
                incremental.insert_edge(u, v)
        rebuilt = HopiIndex.build(graph, tags, MemoryBackend())
        for u in graph:
            for v in graph:
                assert incremental.distance(u, v) == rebuilt.distance(u, v)
