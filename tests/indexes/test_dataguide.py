"""Unit tests for the strong DataGuide."""

import pytest

from repro.graph.digraph import Digraph
from repro.indexes.base import IndexNotApplicableError
from repro.indexes.dataguide import DataGuideIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import random_tags, random_tree


def build(graph, tags, max_states=20000):
    return DataGuideIndex.build_bounded(graph, tags, MemoryBackend(), max_states)


def sample_tree():
    #   0(doc) -> 1(sec) -> 3(p)
    #   0(doc) -> 2(sec) -> 4(p), 2 -> 5(fig)
    g = Digraph([(0, 1), (0, 2), (1, 3), (2, 4), (2, 5)])
    tags = {0: "doc", 1: "sec", 2: "sec", 3: "p", 4: "p", 5: "fig"}
    return g, tags


class TestTargetSets:
    def test_label_path_lookup(self):
        g, tags = sample_tree()
        index = build(g, tags)
        assert index.match_label_path(["doc"]) == {0}
        assert index.match_label_path(["doc", "sec"]) == {1, 2}
        assert index.match_label_path(["doc", "sec", "p"]) == {3, 4}
        assert index.match_label_path(["doc", "sec", "fig"]) == {5}

    def test_absent_path_empty(self):
        g, tags = sample_tree()
        index = build(g, tags)
        assert index.match_label_path(["sec"]) == set()
        assert index.match_label_path(["doc", "fig"]) == set()
        assert index.match_label_path([]) == set()

    def test_each_label_path_has_one_state(self):
        """The defining DataGuide property: equal paths share a state."""
        g, tags = sample_tree()
        index = build(g, tags)
        # states: initial, {0}, {1,2}, {3,4}, {5}
        assert index.state_count == 5

    def test_label_paths_enumeration(self):
        g, tags = sample_tree()
        index = build(g, tags)
        paths = index.label_paths(2)
        assert ("doc",) in paths
        assert ("doc", "sec") in paths
        assert ("doc", "sec", "p") not in paths  # beyond max_length

    def test_multiple_documents_share_guide(self):
        g = Digraph([(0, 1), (2, 3)])
        tags = {0: "doc", 1: "p", 2: "doc", 3: "p"}
        index = build(g, tags)
        assert index.match_label_path(["doc"]) == {0, 2}
        assert index.match_label_path(["doc", "p"]) == {1, 3}


class TestStateBudget:
    def test_budget_exceeded_raises(self):
        g, tags = sample_tree()
        with pytest.raises(IndexNotApplicableError):
            build(g, tags, max_states=2)

    def test_graph_with_cycle_terminates(self):
        g = Digraph([(0, 1), (1, 0)])
        # node 0 has in-degree 1, so no roots exist; the guide is empty but
        # construction must not loop forever.
        index = build(g, {0: "a", 1: "b"})
        assert index.match_label_path(["a"]) == set()

    def test_dag_with_sharing(self):
        # two paths to the same node: doc/a/x and doc/b/x
        g = Digraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        tags = {0: "doc", 1: "a", 2: "b", 3: "x"}
        index = build(g, tags)
        assert index.match_label_path(["doc", "a", "x"]) == {3}
        assert index.match_label_path(["doc", "b", "x"]) == {3}


class TestInheritedQueries:
    def test_descendants_on_random_trees(self):
        from repro.graph.closure import transitive_closure

        for seed in range(5):
            g = random_tree(seed, 20)
            tags = random_tags(seed, 20)
            index = build(g, tags)
            closure = transitive_closure(g)
            for u in g:
                assert dict(index.find_descendants_by_tag(u, None)) == (
                    closure.descendants(u)
                )

    def test_persistence_tables(self):
        g, tags = sample_tree()
        backend = MemoryBackend()
        DataGuideIndex.build(g, tags, backend)
        names = set(backend.table_names())
        assert "dataguide_target_sets" in names
        assert "dataguide_transitions" in names
