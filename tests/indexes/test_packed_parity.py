"""Object/packed parity: the FLXPACK layout must be indistinguishable.

``FlixConfig.with_packed()`` swaps the hot-path representation, nothing
else — so every observable of the unified query API has to match the
object layout byte for byte: results, scalar values, the full
:class:`QueryStats` (visit/traversal counters included), completeness,
layout generations, and ``index_fingerprint``.  That contract has to
survive fault injection, the maintenance verbs, and a save/load
roundtrip, which is exactly what this module checks.
"""

import pytest

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument
from repro.core.api import QueryRequest
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.persistence import load_flix
from repro.faults import FaultPlan, FaultyIndex
from repro.indexes.packed import is_packed


def build_object(collection, config):
    """Build with the *object* layout even under ``FLIX_PACKED=1``.

    The parity tests must stay meaningful inside CI's packed-parity job,
    where the environment forces every build packed — the object side of
    each pair is built with the override masked out.
    """
    with pytest.MonkeyPatch.context() as patch:
        patch.delenv("FLIX_PACKED", raising=False)
        return Flix.build(collection, config)


def assert_same_response(obj_response, pak_response):
    """Full observable equality, not just the result rows."""
    assert obj_response.results == pak_response.results
    assert obj_response.value == pak_response.value
    assert obj_response.stats == pak_response.stats
    assert (
        obj_response.layout_generation == pak_response.layout_generation
    )


def reachable_pair(flix, source):
    """A (reachable, unreachable) target pair seen from ``source``."""
    rows = flix.query(QueryRequest.descendants(source)).results
    reached = {row.node for row in rows}
    target = next((row.node for row in rows if row.distance > 0), None)
    stranger = next(
        node
        for node in sorted(flix.collection.graph.nodes())
        if node not in reached and node != source
    )
    return target, stranger


def request_suite(flix):
    """One request per shape of the unified API (all eight kinds).

    Node choices are derived from the collection and the *object* flix;
    the requests themselves are plain data, shared by both layouts.
    """
    collection = flix.collection
    names = sorted(collection.documents)
    roots = [collection.document_root(name) for name in names[:6]]
    target, stranger = reachable_pair(flix, roots[0])
    deep = flix.query(
        QueryRequest.descendants(roots[1], tag="author")
    ).results
    author = deep[0].node if deep else roots[1]
    requests = [
        # descendants, a//b form
        QueryRequest.descendants(roots[0], tag="author"),
        QueryRequest.descendants(roots[0]),
        QueryRequest.descendants(
            roots[1], tag="title", exact_order=True, include_self=True
        ),
        QueryRequest.descendants(roots[2], max_distance=2, limit=5),
        # descendants, A//B (type query) form
        QueryRequest.type_query("inproceedings", tag="author", limit=25),
        QueryRequest.type_query("article", tag="cite"),
        # ancestors
        QueryRequest.ancestors(author),
        QueryRequest.ancestors(author, tag="inproceedings"),
        # children
        QueryRequest.children(roots[3]),
        QueryRequest.children(roots[3], tag="author"),
        # path
        QueryRequest.find_path(roots[0], ["cite", "author"]),
        QueryRequest.find_path(roots[4], ["title"]),
        # connections
        QueryRequest.connections(roots[0], tag="title", limit=10),
        QueryRequest.connections(roots[5], max_cost=4.0),
        # cost
        QueryRequest.cost(roots[0], target),
        QueryRequest.cost(roots[0], stranger),
        # test
        QueryRequest.test(roots[0], target),
        QueryRequest.test(target, roots[0], bidirectional=True),
        QueryRequest.test(roots[0], stranger, max_distance=3),
    ]
    if target is None:  # pragma: no cover - dblp roots always have children
        pytest.skip("no reachable target under the probe root")
    return requests


@pytest.fixture(scope="module")
def flix_pair(dblp_collection):
    config = FlixConfig.hybrid(partition_size=250)
    obj = build_object(dblp_collection, config)
    pak = Flix.build(dblp_collection, config.with_packed())
    return obj, pak


class TestQueryParity:
    def test_every_request_shape_answers_identically(self, flix_pair):
        obj, pak = flix_pair
        nonempty = 0
        for request in request_suite(obj):
            obj_response = obj.query(request)
            pak_response = pak.query(request)
            assert_same_response(obj_response, pak_response)
            if obj_response.results or obj_response.value not in (
                None,
                False,
            ):
                nonempty += 1
        # the suite must exercise real answers, not vacuous empties
        assert nonempty >= 10

    def test_complete_answers_stay_complete(self, flix_pair):
        obj, pak = flix_pair
        for request in request_suite(obj):
            assert obj.query(request).stats.completeness == "complete"
            assert pak.query(request).stats.completeness == "complete"

    def test_index_fingerprints_identical(self, flix_pair):
        obj, pak = flix_pair
        assert obj.index_fingerprint() == pak.index_fingerprint()

    def test_packed_layout_is_actually_packed(self, flix_pair):
        obj, pak = flix_pair
        assert not any(is_packed(meta.index) for meta in obj.meta_documents)
        assert any(is_packed(meta.index) for meta in pak.meta_documents)

    def test_pack_verb_converges_to_same_layout(self, dblp_collection):
        """``Flix.pack()`` after an object build == building packed."""
        config = FlixConfig.hybrid(partition_size=250)
        late = build_object(dblp_collection, config)
        fingerprint_before = late.index_fingerprint()
        assert late.pack() > 0
        assert any(is_packed(meta.index) for meta in late.meta_documents)
        assert late.index_fingerprint() == fingerprint_before


class TestFaultParity:
    """Identical fault plans must degrade both layouts identically.

    The fault PRNG is keyed per (seed, site), so when the PEE issues the
    same probe sequence against both layouts — which answer parity
    guarantees — the injected failures land on the same probes.
    """

    @pytest.fixture(scope="class")
    def resilient_pair(self, dblp_collection):
        config = FlixConfig.hybrid(partition_size=250).with_resilience()
        obj = build_object(dblp_collection, config)
        pak = Flix.build(dblp_collection, config.with_packed())
        return obj, pak

    @staticmethod
    def wrap(flix, plan_of):
        for slot, meta in enumerate(flix.meta_documents):
            meta.index = FaultyIndex(
                meta.index, plan_of(slot), site_name=f"meta-{slot}"
            )

    def test_hard_failure_degrades_identically(self, resilient_pair):
        obj, pak = resilient_pair
        requests = request_suite(obj)
        self.wrap(obj, lambda slot: FaultPlan.hard_failure())
        self.wrap(pak, lambda slot: FaultPlan.hard_failure())
        degraded = 0
        for request in requests:
            obj_response = obj.query(request)
            pak_response = pak.query(request)
            assert_same_response(obj_response, pak_response)
            if obj_response.stats.completeness == "degraded":
                degraded += 1
        assert degraded > 0  # the BFS fallback actually ran

    def test_intermittent_faults_degrade_identically(self, dblp_collection):
        config = FlixConfig.hybrid(partition_size=250).with_resilience()
        obj = build_object(dblp_collection, config)
        pak = Flix.build(dblp_collection, config.with_packed())
        requests = request_suite(obj)
        self.wrap(obj, lambda slot: FaultPlan.moderate(seed=40 + slot))
        self.wrap(pak, lambda slot: FaultPlan.moderate(seed=40 + slot))
        for request in requests:
            assert_same_response(obj.query(request), pak.query(request))


def maintenance_documents():
    def doc(name, text):
        return XmlDocument.from_text(name, text)

    return [
        doc("a.xml", '<doc><l xlink:href="b.xml"/><p>alpha</p></doc>'),
        doc("b.xml", '<doc><l xlink:href="c.xml"/><p>beta</p></doc>'),
        doc("c.xml", "<doc><p>gamma</p><q>delta</q></doc>"),
        doc("d.xml", '<doc><l xlink:href="a.xml"/><r>rho</r></doc>'),
    ]


class TestMaintenanceParity:
    """The same verb sequence applied to both layouts keeps them equal."""

    @pytest.fixture()
    def maintenance_pair(self):
        config = FlixConfig.maximal_ppo()
        obj = build_object(
            build_collection(maintenance_documents()), config
        )
        pak = Flix.build(
            build_collection(maintenance_documents()), config.with_packed()
        )
        return obj, pak

    @staticmethod
    def assert_layouts_agree(obj, pak):
        assert obj.index_fingerprint() == pak.index_fingerprint()
        for name in sorted(obj.collection.documents):
            root = obj.collection.document_root(name)
            for request in (
                QueryRequest.descendants(root),
                QueryRequest.descendants(root, tag="p"),
                QueryRequest.ancestors(root),
            ):
                assert_same_response(obj.query(request), pak.query(request))

    def test_verb_sequence_preserves_parity(self, maintenance_pair):
        obj, pak = maintenance_pair

        def doc(name, text):
            return XmlDocument.from_text(name, text)

        steps = [
            lambda flix: flix.add_document(
                doc("e.xml", '<doc><l xlink:href="c.xml"/><s>sigma</s></doc>')
            ),
            lambda flix: flix.remove_document("b.xml"),
            lambda flix: flix.update_document(
                doc("c.xml", "<doc><p>gamma2</p><t>tau</t></doc>")
            ),
            lambda flix: flix.compact(),
        ]
        for step in steps:
            step(obj)
            step(pak)
            self.assert_layouts_agree(obj, pak)
        # compaction rebuilt under a packed config: the layout must still
        # be packed, not silently demoted to the object form
        assert any(is_packed(meta.index) for meta in pak.meta_documents)


class TestPersistenceParity:
    def test_saved_packed_flix_roundtrips_verified(
        self, flix_pair, tmp_path
    ):
        obj, pak = flix_pair
        directory = tmp_path / "packed-save"
        pak.save(directory)
        assert list(directory.glob("*.pack")), "save must persist blobs"
        loaded = load_flix(pak.collection, directory)  # verify=True default
        assert any(is_packed(meta.index) for meta in loaded.meta_documents)
        assert loaded.index_fingerprint() == obj.index_fingerprint()
        for request in request_suite(obj):
            assert_same_response(obj.query(request), loaded.query(request))
