"""Tests for the prepared residual-link fast path."""

from hypothesis import given

from repro.indexes.hopi import HopiIndex
from repro.indexes.ppo import PpoIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import random_tree, tree_params


class TestPpoFastPath:
    @given(tree_params)
    def test_prepared_equals_probed(self, params):
        seed, n = params
        graph = random_tree(seed, n)
        tags = {node: "t" for node in graph}
        index = PpoIndex.build(graph, tags, MemoryBackend())
        candidates = frozenset(node for node in graph if node % 3 == 0)
        probed = {
            node: index.reachable_subset(node, candidates) for node in graph
        }
        index.prepare_link_candidates(candidates)
        for node in graph:
            assert index.reachable_subset(node, candidates) == probed[node]

    def test_foreign_candidate_set_falls_back(self):
        graph = random_tree(1, 20)
        index = PpoIndex.build(graph, {n: "t" for n in graph}, MemoryBackend())
        index.prepare_link_candidates(frozenset({1, 2}))
        # a *different* set must not be answered from the prepared one
        other = frozenset({3, 4, 5})
        result = index.reachable_subset(0, other)
        expected = [
            (c, index.distance(0, c)) for c in sorted(other)
            if index.distance(0, c) is not None
        ]
        assert sorted(result) == sorted(expected)

    def test_candidates_outside_index_ignored(self):
        graph = random_tree(2, 10)
        index = PpoIndex.build(graph, {n: "t" for n in graph}, MemoryBackend())
        index.prepare_link_candidates(frozenset({0, 999}))
        result = index.reachable_subset(0, frozenset({0, 999}))
        assert [r for r, _d in result] == [0]


class TestDefaultNoOp:
    def test_hopi_accepts_preparation(self):
        graph = random_tree(3, 15)
        index = HopiIndex.build(graph, {n: "t" for n in graph}, MemoryBackend())
        candidates = frozenset({1, 2, 3})
        before = index.reachable_subset(0, candidates)
        index.prepare_link_candidates(candidates)  # default: no-op
        assert index.reachable_subset(0, candidates) == before
