"""Tests for the F&B index (forward + backward bisimulation)."""

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.indexes.kindex import ForwardBackwardIndex, KBisimulationIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import random_digraph, random_tags


def build_fb(graph, tags):
    return ForwardBackwardIndex.build(graph, tags, MemoryBackend())


def build_1index(graph, tags):
    return KBisimulationIndex.build(graph, tags, MemoryBackend())


class TestForwardBackward:
    def test_forward_context_separates(self):
        # two x nodes with identical incoming paths but different children:
        # r -> x -> a   and   r -> x -> b
        g = Digraph([(0, 1), (1, 3), (0, 2), (2, 4)])
        tags = {0: "r", 1: "x", 2: "x", 3: "a", 4: "b"}
        one_index = build_1index(g, tags)
        fb = build_fb(g, tags)
        # backward bisimulation cannot tell the x's apart ...
        assert one_index.class_of(1) == one_index.class_of(2)
        # ... but F&B can (different outgoing structure)
        assert fb.class_of(1) != fb.class_of(2)

    def test_refines_the_1_index(self):
        for seed in range(6):
            g = random_digraph(seed, 25)
            tags = random_tags(seed, 25)
            fb = build_fb(g, tags)
            one_index = build_1index(g, tags)
            assert fb.class_count >= one_index.class_count
            # refinement property: F&B classes never merge 1-index splits
            for u in g:
                for v in g:
                    if fb.class_of(u) == fb.class_of(v):
                        assert one_index.class_of(u) == one_index.class_of(v)

    def test_symmetric_structures_stay_together(self):
        # two identical subtrees: their mirrors must share classes
        g = Digraph([(0, 1), (1, 2), (0, 3), (3, 4)])
        tags = {0: "r", 1: "x", 2: "leaf", 3: "x", 4: "leaf"}
        fb = build_fb(g, tags)
        assert fb.class_of(1) == fb.class_of(3)
        assert fb.class_of(2) == fb.class_of(4)

    def test_queries_exact(self):
        for seed in range(5):
            g = random_digraph(seed + 50, 20)
            tags = random_tags(seed + 50, 20)
            fb = build_fb(g, tags)
            oracle = transitive_closure(g)
            for u in g:
                assert dict(fb.find_descendants_by_tag(u, None)) == (
                    oracle.descendants(u)
                )

    def test_registered_strategy(self):
        from repro.indexes.registry import available_strategies, build_index

        assert "fbindex" in available_strategies()
        g = Digraph([(0, 1)])
        index = build_index("fbindex", g, {0: "a", 1: "b"}, MemoryBackend())
        assert index.reachable(0, 1)

    def test_rounds_recorded(self):
        g = random_digraph(3, 15)
        fb = build_fb(g, random_tags(3, 15))
        assert fb.rounds_performed >= 2  # at least one stable check each way
