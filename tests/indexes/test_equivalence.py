"""Cross-index property test: every strategy answers like the oracle.

This is the suite's strongest guarantee: PPO (on forests), HOPI (both
builders), APEX, the 1-index, the A(1)-index, the DataGuide, and the
materialized closure all produce identical reachability, distances, and
tag-filtered descendant sets on random inputs.
"""

from hypothesis import given, settings

from repro.graph.closure import transitive_closure
from repro.indexes.apex import ApexIndex
from repro.indexes.dataguide import DataGuideIndex
from repro.indexes.hopi import HopiIndex
from repro.indexes.kindex import KBisimulationIndex
from repro.indexes.ppo import PpoIndex
from repro.indexes.transitive import TransitiveClosureIndex
from repro.storage.memory import MemoryBackend
from tests.conftest import (
    graph_params,
    random_digraph,
    random_tags,
    random_tree,
    tree_params,
)

GRAPH_STRATEGIES = (
    HopiIndex,
    ApexIndex,
    KBisimulationIndex,
    TransitiveClosureIndex,
)


@given(graph_params)
@settings(max_examples=25, deadline=None)
def test_all_graph_indexes_agree_with_oracle(params):
    seed, n = params
    graph = random_digraph(seed, n)
    tags = random_tags(seed, n)
    closure = transitive_closure(graph)
    indexes = [cls.build(graph, tags, MemoryBackend()) for cls in GRAPH_STRATEGIES]
    indexes.append(
        HopiIndex.build_divide_and_conquer(
            graph, tags, MemoryBackend(), partition_size=max(2, n // 3)
        )
    )
    for u in graph:
        expected = closure.descendants(u)
        for index in indexes:
            assert dict(index.find_descendants_by_tag(u, None)) == expected, (
                type(index).__name__
            )


@given(tree_params)
@settings(max_examples=25, deadline=None)
def test_tree_indexes_agree_with_oracle(params):
    seed, n = params
    graph = random_tree(seed, n)
    tags = random_tags(seed, n)
    closure = transitive_closure(graph)
    indexes = [
        PpoIndex.build(graph, tags, MemoryBackend()),
        DataGuideIndex.build(graph, tags, MemoryBackend()),
        HopiIndex.build(graph, tags, MemoryBackend()),
    ]
    for u in graph:
        expected = closure.descendants(u)
        for index in indexes:
            assert dict(index.find_descendants_by_tag(u, None)) == expected
        for tag in "ab":
            tag_expected = [
                (v, d)
                for v, d in sorted(expected.items(), key=lambda p: (p[1], p[0]))
                if tags[v] == tag
            ]
            for index in indexes:
                assert index.find_descendants_by_tag(u, tag) == tag_expected


@given(graph_params)
@settings(max_examples=15, deadline=None)
def test_ancestor_descendant_duality(params):
    """v in descendants(u) iff u in ancestors(v), with equal distances."""
    seed, n = params
    graph = random_digraph(seed, n)
    tags = random_tags(seed, n)
    index = HopiIndex.build(graph, tags, MemoryBackend())
    for u in graph:
        for v, d in index.find_descendants_by_tag(u, None):
            ancestors = dict(index.find_ancestors_by_tag(v, None))
            assert ancestors[u] == d
