"""FLXPACK blob integrity: damage is detected at attach, never served.

The blob's trust model is "verify once, then zero-copy": the payload
digest in the 64-byte header is checked when the blob is attached, so
every later column access can hand out raw memory without re-checking.
These tests damage blobs in every region — header fields, directory,
column bytes, metadata JSON — and assert the damage surfaces as
:class:`CorruptionError` (or :class:`IntegrityError` at the save level),
and that :func:`repair_flix` brings a damaged save back byte-identical.
"""

import hashlib
import struct

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.persistence import (
    IntegrityError,
    load_flix,
    repair_flix,
    verify_flix,
)
from repro.indexes.packed import (
    FORMAT_VERSION,
    HEADER_BYTES,
    MAGIC,
    BlobWriter,
    PackedBlob,
)
from repro.storage.errors import CorruptionError


def sample_blob_bytes(meta=None):
    writer = BlobWriter("ppo", meta=meta or {"tags": ["a", "b"]})
    writer.add_column("nodes", [3, 1, 4, 1, 5])
    writer.add_column("sizes", [9, 2, 6, 5, 3])
    writer.add_column("empty", [])
    return writer.to_bytes()


def rehash(data: bytes) -> bytes:
    """Recompute the header digest after a deliberate payload edit.

    Needed to reach the *post-attach* validation layers (name decoding,
    lazy metadata JSON parse): without a consistent digest the attach
    itself rejects the blob before they run.
    """
    digest = hashlib.sha256(data[HEADER_BYTES:]).digest()
    return data[:16] + digest + data[48:]


class TestWriterValidation:
    def test_roundtrip(self):
        blob = PackedBlob.from_bytes(sample_blob_bytes())
        assert blob.strategy == "ppo"
        assert blob.meta == {"tags": ["a", "b"]}
        assert sorted(blob.column_names()) == ["empty", "nodes", "sizes"]
        assert blob.column_list("nodes") == [3, 1, 4, 1, 5]
        assert blob.column_list("empty") == []

    def test_equal_content_packs_to_equal_bytes(self):
        assert sample_blob_bytes() == sample_blob_bytes()

    def test_strategy_name_too_long(self):
        with pytest.raises(ValueError, match="16 bytes"):
            BlobWriter("a-strategy-name-way-too-long")

    def test_column_name_too_long(self):
        writer = BlobWriter("ppo")
        with pytest.raises(ValueError, match="24 bytes"):
            writer.add_column("a-column-name-that-is-too-long", [1])

    def test_duplicate_column(self):
        writer = BlobWriter("ppo")
        writer.add_column("nodes", [1])
        with pytest.raises(ValueError, match="duplicate"):
            writer.add_column("nodes", [2])


class TestAttachValidation:
    def test_truncation_anywhere_is_detected(self, tmp_path):
        data = sample_blob_bytes()
        # below the header; mid-directory; mid-column region; one byte short
        for cut in (0, 17, HEADER_BYTES + 8, len(data) // 2, len(data) - 1):
            path = tmp_path / f"cut{cut}.pack"
            path.write_bytes(data[:cut])
            with pytest.raises(CorruptionError):
                PackedBlob.attach(path)

    def test_bit_flip_anywhere_is_detected(self):
        data = sample_blob_bytes()
        # every region: magic, version, digest, lengths, directory
        # header, column records, meta JSON, column payload bytes
        for offset in (0, 9, 20, 50, 60, 66, 100, len(data) - 60, len(data) - 2):
            flipped = bytearray(data)
            flipped[offset] ^= 0x40
            with pytest.raises(CorruptionError):
                PackedBlob.from_bytes(bytes(flipped))

    def test_appended_garbage_is_detected(self):
        with pytest.raises(CorruptionError):
            PackedBlob.from_bytes(sample_blob_bytes() + b"\x00" * 8)

    def test_wrong_version_is_detected(self):
        data = bytearray(sample_blob_bytes())
        struct.pack_into("<I", data, len(MAGIC), FORMAT_VERSION + 1)
        with pytest.raises(CorruptionError, match="version"):
            PackedBlob.from_bytes(rehash(bytes(data)))

    def test_missing_column_is_corruption(self):
        blob = PackedBlob.from_bytes(sample_blob_bytes())
        with pytest.raises(CorruptionError, match="missing column"):
            blob.column("absent")

    def test_undecodable_strategy_name(self):
        data = bytearray(sample_blob_bytes())
        # the strategy field sits after the two u32s of the directory header
        data[HEADER_BYTES + 8] = 0xFF
        with pytest.raises(CorruptionError, match="strategy"):
            PackedBlob.from_bytes(rehash(bytes(data)))

    def test_invalid_meta_json_surfaces_on_first_meta_access(self):
        data = sample_blob_bytes()
        json_bytes = b'{"tags": ["a", "b"]}'
        start = data.index(json_bytes)
        broken = bytearray(data)
        broken[start] = ord("[")  # same length, no longer a JSON object
        blob = PackedBlob.from_bytes(rehash(bytes(broken)))
        assert blob.strategy == "ppo"  # attach itself is fine: meta is lazy
        with pytest.raises(CorruptionError):
            blob.meta

    def test_raw_fingerprint_is_whole_file_digest(self):
        data = sample_blob_bytes()
        blob = PackedBlob.from_bytes(data)
        assert blob.raw_fingerprint() == hashlib.sha256(data).hexdigest()


class TestSavedBlobIntegrity:
    """Save-level detection and repair of a damaged ``.pack`` file."""

    @pytest.fixture()
    def saved(self, figure1_collection, tmp_path):
        flix = Flix.build(
            figure1_collection, FlixConfig.maximal_ppo().with_packed()
        )
        directory = tmp_path / "save"
        flix.save(directory)
        packs = sorted(directory.glob("*.pack"))
        assert packs, "a packed build must persist blobs"
        return flix, directory, packs

    def test_intact_save_verifies_clean(self, saved):
        flix, directory, _packs = saved
        assert verify_flix(flix.collection, directory) == []

    def test_truncated_blob_is_reported_and_refused(self, saved):
        flix, directory, packs = saved
        victim = packs[0]
        victim.write_bytes(victim.read_bytes()[:-16])
        assert victim.name in verify_flix(flix.collection, directory)
        with pytest.raises(IntegrityError):
            load_flix(flix.collection, directory)

    def test_bit_flipped_blob_is_reported_and_refused(self, saved):
        flix, directory, packs = saved
        victim = packs[-1]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0x01
        victim.write_bytes(bytes(data))
        assert victim.name in verify_flix(flix.collection, directory)
        with pytest.raises(IntegrityError):
            load_flix(flix.collection, directory)

    def test_repair_restores_damaged_blob(self, saved):
        flix, directory, packs = saved
        victim = packs[0]
        original = victim.read_bytes()
        data = bytearray(original)
        data[HEADER_BYTES + 4] ^= 0x20
        victim.write_bytes(bytes(data))
        repaired = repair_flix(flix.collection, directory)
        assert victim.name in repaired
        # the format is deterministic: repair is byte-identical
        assert victim.read_bytes() == original
        assert verify_flix(flix.collection, directory) == []
        loaded = load_flix(flix.collection, directory)
        assert loaded.index_fingerprint() == flix.index_fingerprint()
