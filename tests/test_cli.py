"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.collection.io import save_collection
from repro.datasets.movies import generate_movie_collection


@pytest.fixture(scope="module")
def movie_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("movies")
    save_collection(generate_movie_collection(), directory)
    return str(directory)


class TestStats:
    def test_prints_summary(self, movie_dir, capsys):
        assert main(["stats", movie_dir]) == 0
        out = capsys.readouterr().out
        assert "15 documents" in out
        assert "link density" in out
        assert "most frequent tags" in out


class TestBuild:
    def test_auto_config(self, movie_dir, capsys):
        assert main(["build", movie_dir]) == 0
        out = capsys.readouterr().out
        assert "meta documents" in out

    def test_explicit_config(self, movie_dir, capsys):
        assert main(["build", movie_dir, "--config", "naive"]) == 0
        out = capsys.readouterr().out
        assert "config=naive" in out

    def test_partition_size_forwarded(self, movie_dir, capsys):
        assert main(
            ["build", movie_dir, "--config", "unconnected_hopi",
             "--partition-size", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "unconnected_hopi_40" in out

    def test_jobs_flag(self, movie_dir, capsys):
        assert main(
            ["build", movie_dir, "--config", "unconnected_hopi",
             "--partition-size", "40", "--jobs", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "meta documents" in out

    def test_profile_flag(self, movie_dir, capsys):
        assert main(
            ["build", movie_dir, "--config", "unconnected_hopi",
             "--partition-size", "40", "--jobs", "2", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "build profile (2 jobs" in out
        for phase in ("graph", "selection", "index", "queue_wait"):
            assert phase in out
        assert "slowest meta" in out

    def test_jobs_match_sequential_output(self, movie_dir, capsys):
        assert main(
            ["query", movie_dir, "matrix3.xml", "actor", "--jobs", "4"]
        ) == 0
        parallel = capsys.readouterr().out
        assert main(
            ["query", movie_dir, "matrix3.xml", "actor", "--jobs", "1"]
        ) == 0
        sequential = capsys.readouterr().out
        assert parallel == sequential


class TestQuery:
    def test_document_root_start(self, movie_dir, capsys):
        assert main(
            ["query", movie_dir, "matrix3.xml", "actor", "--config", "naive"]
        ) == 0
        out = capsys.readouterr().out
        assert "<actor>" in out
        assert "results" in out

    def test_wildcard_and_limit(self, movie_dir, capsys):
        assert main(
            ["query", movie_dir, "matrix1.xml", "*", "--limit", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "-- 3 results" in out

    def test_exact_order_flag(self, movie_dir, capsys):
        assert main(
            ["query", movie_dir, "matrix3.xml", "*", "--exact-order"]
        ) == 0
        out = capsys.readouterr().out
        distances = [
            int(line.split()[1]) for line in out.splitlines()
            if line.startswith("distance")
        ]
        assert distances == sorted(distances)

    def test_index_dir_builds_then_loads(self, movie_dir, tmp_path, capsys):
        index_dir = str(tmp_path / "idx")
        assert main(
            ["query", movie_dir, "matrix3.xml", "actor",
             "--config", "naive", "--index-dir", index_dir]
        ) == 0
        first = capsys.readouterr().out
        assert "built and saved" in first
        assert main(
            ["query", movie_dir, "matrix3.xml", "actor",
             "--config", "naive", "--index-dir", index_dir]
        ) == 0
        second = capsys.readouterr().out
        assert "loaded persisted index" in second
        # identical result lines either way
        strip = lambda out: [l for l in out.splitlines() if l.startswith("distance")]
        assert strip(first) == strip(second)

    def test_unknown_document_exits(self, movie_dir):
        with pytest.raises(SystemExit):
            main(["query", movie_dir, "ghost.xml", "actor"])

    def test_unknown_anchor_exits(self, movie_dir):
        with pytest.raises(SystemExit):
            main(["query", movie_dir, "matrix1.xml#nope", "actor"])


class TestRelaxed:
    def test_relaxed_query(self, movie_dir, capsys):
        assert main(
            ["relaxed", movie_dir,
             '/movie[title = "Matrix: Revolutions"]/actor/movie',
             "--top-k", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "score" in out
        assert "results" in out


class TestDemoDblp:
    def test_demo_runs(self, capsys):
        assert main(["demo-dblp", "--documents", "80"]) == 0
        out = capsys.readouterr().out
        assert "index sizes" in out
        assert "HOPI" in out
        assert "seconds to k results" in out


class TestMetrics:
    def test_json_format_default(self, movie_dir, capsys):
        assert main(["metrics", movie_dir, "--config", "naive"]) == 0
        out = capsys.readouterr().out
        import json

        payload = json.loads(out)
        names = {m["name"] for m in payload["metrics"]}
        assert "flix_queries_total" in names
        assert "flix_query_seconds" in names
        assert "flix_meta_documents" in names

    def test_prom_format(self, movie_dir, capsys):
        assert main(
            ["metrics", movie_dir, "--config", "naive", "--format", "prom"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE flix_queries_total counter" in out
        assert "# TYPE flix_meta_documents gauge" in out
        assert "# TYPE flix_query_seconds histogram" in out
        assert 'flix_query_seconds_bucket{axis="descendants",le="+Inf"} 3' in out

    def test_queries_knob(self, movie_dir, capsys):
        import json

        assert main(
            ["metrics", movie_dir, "--config", "naive", "--queries", "1"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        queries = next(
            m for m in payload["metrics"] if m["name"] == "flix_queries_total"
        )
        assert queries["samples"][0]["value"] == 1

    def test_no_observability(self, movie_dir, capsys):
        assert main(
            ["metrics", movie_dir, "--config", "naive",
             "--format", "prom", "--no-observability"]
        ) == 0
        out = capsys.readouterr().out
        assert "no metrics" in out

    def test_trace_flag_renders_tree(self, movie_dir, capsys):
        assert main(
            ["metrics", movie_dir, "--config", "naive", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "pee.query" in out
        assert "pee.probe" in out


class TestServeBench:
    def test_json_output(self, capsys):
        import json

        assert main(
            ["serve-bench", "--documents", "6", "--workers", "1,2",
             "--latency-ms", "0.05", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_results_identical_to_serial"] is True
        assert {run["workers"] for run in payload["runs"]} == {1, 2}

    def test_table_output(self, capsys):
        assert main(
            ["serve-bench", "--documents", "6", "--workers", "1",
             "--latency-ms", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "workers" in out
        assert "warm" in out

    def test_bad_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--workers", "0,nope"])


class TestRepair:
    @pytest.fixture()
    def index_dir(self, movie_dir, tmp_path):
        from repro.collection.io import load_collection
        from repro.core.framework import Flix

        directory = tmp_path / "idx"
        flix = Flix.build(load_collection(movie_dir))
        flix.save(directory)
        return str(directory)

    def test_intact_index_reports_clean(self, movie_dir, index_dir, capsys):
        assert main(["repair", movie_dir, index_dir]) == 0
        assert "intact" in capsys.readouterr().out

    def test_check_flag_reports_without_repairing(
        self, movie_dir, index_dir, capsys
    ):
        from pathlib import Path

        victim = sorted(Path(index_dir).glob("meta_*.sqlite"))[0]
        victim.write_bytes(b"zap")
        assert main(["repair", movie_dir, index_dir, "--check"]) == 1
        assert victim.read_bytes() == b"zap"  # untouched
        assert victim.name in capsys.readouterr().out

    def test_repairs_damage(self, movie_dir, index_dir, capsys):
        from pathlib import Path

        from repro.collection.io import load_collection
        from repro.core.persistence import verify_flix

        victim = sorted(Path(index_dir).glob("meta_*.sqlite"))[0]
        victim.write_bytes(b"zap")
        assert main(["repair", movie_dir, index_dir]) == 0
        out = capsys.readouterr().out
        assert "rebuilt 1 file(s)" in out
        assert verify_flix(load_collection(movie_dir), index_dir) == []


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_config_rejected(self, movie_dir):
        with pytest.raises(SystemExit):
            main(["build", movie_dir, "--config", "nope"])


class TestDurabilityCommands:
    @pytest.fixture()
    def crashed_deployment(self, tmp_path):
        """A saved deployment plus a WAL with one unsnapshotted add."""
        from repro.core.config import FlixConfig
        from repro.core.framework import Flix
        from repro.collection.builder import build_collection
        from repro.collection.document import XmlDocument
        from repro.wal import wal_path_for

        collection = build_collection(
            [XmlDocument.from_text("a.xml", "<a><p>one</p></a>")]
        )
        flix = Flix.build(collection, FlixConfig.naive())
        collection_dir = tmp_path / "collection"
        index_dir = tmp_path / "index"
        save_collection(collection, collection_dir)
        flix.save(index_dir)
        flix.enable_wal(wal_path_for(index_dir))
        flix.add_document(
            XmlDocument.from_text("b.xml", "<b><q>two</q></b>")
        )
        return str(collection_dir), str(index_dir), flix

    def test_recover_replays_the_log(self, crashed_deployment, capsys):
        collection_dir, index_dir, flix = crashed_deployment
        assert main(["recover", collection_dir, index_dir]) == 0
        out = capsys.readouterr().out
        assert "replayed 1/1 record(s)" in out
        assert "applied verbs: add" in out

    def test_recover_snapshot_checkpoints(self, crashed_deployment, capsys):
        collection_dir, index_dir, flix = crashed_deployment
        assert main(
            ["recover", collection_dir, index_dir, "--snapshot"]
        ) == 0
        assert "log checkpointed" in capsys.readouterr().out
        # the checkpoint is cold-loadable and replays nothing
        assert main(["recover", collection_dir, index_dir]) == 0
        assert "replayed 0/0" in capsys.readouterr().out

    def test_wal_lists_records(self, crashed_deployment, capsys):
        collection_dir, index_dir, flix = crashed_deployment
        assert main(["wal", index_dir]) == 0
        out = capsys.readouterr().out
        assert "tail generation 1" in out
        assert "add" in out

    def test_wal_json(self, crashed_deployment, capsys):
        import json

        collection_dir, index_dir, flix = crashed_deployment
        assert main(["wal", index_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tail_generation"] == 1
        assert payload["discarded_bytes"] == 0
        assert [r["verb"] for r in payload["records"]] == ["begin", "add"]

    def test_wal_without_log_exits_one(self, movie_dir, tmp_path, capsys):
        assert main(["wal", str(tmp_path)]) == 1
        assert "no write-ahead log" in capsys.readouterr().out


class TestExplain:
    def test_table_output(self, movie_dir, capsys):
        assert main(
            ["explain", movie_dir, "matrix3.xml", "actor", "--planner"]
        ) == 0
        out = capsys.readouterr().out
        assert "mode=planned" in out
        assert "est.matches" in out

    def test_fixed_mode_without_planner(self, movie_dir, capsys):
        assert main(["explain", movie_dir, "matrix3.xml", "actor"]) == 0
        out = capsys.readouterr().out
        assert "mode=fixed" in out

    def test_json_output(self, movie_dir, capsys):
        import json

        assert main(
            ["explain", movie_dir, "matrix3.xml", "*", "--planner", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "planned"
        assert payload["kind"] == "descendants"
        assert isinstance(payload["probes"], list)

    def test_loads_persisted_index(self, movie_dir, tmp_path, capsys):
        index_dir = str(tmp_path / "index")
        assert main(
            ["explain", movie_dir, "matrix3.xml", "actor",
             "--planner", "--index-dir", index_dir]
        ) == 0
        assert "built and saved" in capsys.readouterr().out
        assert main(
            ["explain", movie_dir, "matrix3.xml", "actor",
             "--index-dir", index_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "loaded persisted index" in out
        # the saved manifest carries the planner config
        assert "mode=planned" in out
