"""The real multi-process path: ``spawn_worker`` subprocesses."""

from __future__ import annotations

import os

import pytest

from repro.core.api import QueryRequest
from repro.shard.coordinator import ShardCoordinator
from repro.shard.plan import ShardPlanner, write_shard_map
from repro.shard.worker import spawn_worker


@pytest.fixture(scope="module")
def cluster(deployment):
    """Two real worker subprocesses plus a connected coordinator."""
    shard_map = ShardPlanner(2).plan(deployment.flix)
    write_shard_map(shard_map, deployment.index_dir)
    workers = [
        spawn_worker(deployment.collection_dir, deployment.index_dir, shard)
        for shard in range(2)
    ]
    coordinator = ShardCoordinator.connect(
        deployment.index_dir,
        [(worker.host, worker.port) for worker in workers],
    )
    yield coordinator, workers, shard_map
    coordinator.shutdown_workers()
    coordinator.close()
    for worker in workers:
        worker.close()


class TestWorkerProcess:
    def test_ready_handshake_reports_shard_and_port(self, cluster):
        _, workers, _ = cluster
        for shard_id, worker in enumerate(workers):
            assert worker.shard_id == shard_id
            assert worker.port > 0
            assert worker.process.poll() is None  # still alive

    def test_ping_reports_identity_and_ownership(self, cluster):
        coordinator, workers, shard_map = cluster
        health = coordinator.health()
        assert health["healthy"] == 2
        for entry in health["shards"]:
            assert entry["healthy"]
            assert entry["generation"] == shard_map.generation
            assert entry["owned_metas"] == len(
                shard_map.owned_metas(entry["shard"])
            )
            # a genuinely separate process, not a thread
            assert entry["pid"] != os.getpid()

    def test_query_parity_across_processes(self, cluster, deployment):
        coordinator, _, _ = cluster
        for name in sorted(deployment.collection.documents):
            start = deployment.collection.document_root(name)
            request = QueryRequest.descendants(start)
            serial = deployment.flix.query(request)
            remote = coordinator.query(request)
            assert [repr(r) for r in remote.results] == [
                repr(r) for r in serial.results
            ]
            assert remote.stats.completeness == serial.stats.completeness

    def test_worker_metrics_exposed_over_the_wire(self, cluster):
        coordinator, _, _ = cluster
        _, reply = coordinator._clients[0].call("metrics", {"format": "json"})
        assert "flix_shard_worker_requests_total" in reply["text"]

    def test_worker_survives_a_bad_request(self, cluster, deployment):
        coordinator, workers, _ = cluster
        with pytest.raises(KeyError):
            coordinator.query(QueryRequest.descendants(10_000_000))
        assert workers[0].process.poll() is None
        # and keeps serving afterwards
        start = deployment.collection.document_root(
            sorted(deployment.collection.documents)[0]
        )
        assert coordinator.query(QueryRequest.descendants(start)).results
