"""Planner parity across the sharded deployment (``docs/PLANNING.md``).

The serial invariant carries over unchanged: a coordinator answering
over a planner-enabled saved index must stay byte-identical to the
planner-*off* serial baseline for every query kind, in both
``delegate`` and ``distributed`` cross-shard modes.  The CI chaos job
re-runs this file under ``FAULT_PLAN=moderate``, which is exactly the
ISSUE's chaos-parity requirement (transient faults are retried by the
resilient backend, so determinism holds).
"""

from __future__ import annotations

import json
import urllib.request
from types import SimpleNamespace

import pytest

from repro.collection.io import save_collection
from repro.core.api import QueryRequest
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.planner import QueryPlan
from repro.datasets.dblp import DblpSpec, generate_dblp
from repro.shard.http import FrontDoor

from tests.shard.conftest import in_process_cluster


@pytest.fixture(scope="module")
def planned_deployment(tmp_path_factory):
    """A saved packed + planner-enabled index, and the planner-off
    serial baseline built over the same collection."""
    base = tmp_path_factory.mktemp("planner-deployment")
    collection = generate_dblp(DblpSpec(documents=6, seed=7))
    config = FlixConfig.naive().with_packed()
    baseline = Flix.build(collection, config)
    flix = Flix.build(collection, config.with_planner())
    collection_dir = base / "collection"
    index_dir = base / "index"
    save_collection(collection, collection_dir)
    flix.save(index_dir)
    return SimpleNamespace(
        collection=collection,
        flix=flix,
        baseline=baseline,
        collection_dir=collection_dir,
        index_dir=index_dir,
    )


def _all_kind_requests(collection):
    roots = [
        collection.document_root(name) for name in sorted(collection.documents)
    ]
    a, b = roots[0], roots[1]
    return [
        ("descendants", QueryRequest.descendants(a)),
        ("type_query", QueryRequest.type_query("article", tag="author")),
        ("ancestors", QueryRequest.ancestors(a + 1)),
        ("children", QueryRequest.children(a)),
        ("path", QueryRequest.find_path(a, ["author"])),
        ("connections", QueryRequest.connections(a)),
        ("cost", QueryRequest.cost(a, b)),
        ("test", QueryRequest.test(a, b)),
    ]


def _signature(response):
    return (
        [repr(row) for row in response.results],
        response.value,
        response.stats.completeness,
    )


class TestShardedParity:
    @pytest.mark.parametrize("mode", ["delegate", "distributed"])
    def test_all_kinds_identical_to_unplanned_serial(
        self, planned_deployment, mode
    ):
        requests = _all_kind_requests(planned_deployment.collection)
        serial = {
            name: planned_deployment.baseline.query(request)
            for name, request in requests
        }
        with in_process_cluster(
            planned_deployment, 3, cross_shard=mode
        ) as (coordinator, _workers):
            for name, request in requests:
                response = coordinator.query(request)
                assert _signature(response) == _signature(serial[name]), (
                    mode, name,
                )

    def test_distributed_loop_prunes(self, planned_deployment):
        # the coordinator-side Figure-4 loop runs the same frontier; on
        # a linked layout it must report pruned work in the stats
        requests = _all_kind_requests(planned_deployment.collection)
        with in_process_cluster(
            planned_deployment, 3, cross_shard="distributed"
        ) as (coordinator, _workers):
            pruned = 0
            for _name, request in requests:
                stats = coordinator.query(request).stats
                pruned += (
                    stats.planner_pruned_pops + stats.planner_pruned_pushes
                )
        assert pruned > 0


class TestShardedExplain:
    def test_coordinator_explain(self, planned_deployment):
        start = planned_deployment.collection.document_root(
            sorted(planned_deployment.collection.documents)[0]
        )
        with in_process_cluster(planned_deployment, 2) as (coordinator, _):
            plan = coordinator.explain(
                QueryRequest.descendants(start, tag="author")
            )
            assert plan is not None
            assert plan.mode == "planned"
            assert plan.probes

    def test_query_with_explain_stamps_plan(self, planned_deployment):
        start = planned_deployment.collection.document_root(
            sorted(planned_deployment.collection.documents)[0]
        )
        with in_process_cluster(planned_deployment, 2) as (coordinator, _):
            response = coordinator.query(
                QueryRequest.descendants(start).with_explain()
            )
            assert response.plan is not None
            assert response.plan.kind == "descendants"

    def test_http_explain_route(self, planned_deployment):
        start = planned_deployment.collection.document_root(
            sorted(planned_deployment.collection.documents)[0]
        )
        with in_process_cluster(planned_deployment, 2) as (coordinator, _):
            with FrontDoor(coordinator) as door:
                host, port = door.start()
                body = json.dumps(
                    {"kind": "descendants", "source": start, "tag": "author"}
                ).encode()
                request = urllib.request.Request(
                    f"http://{host}:{port}/explain",
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as raw:
                    payload = json.loads(raw.read())
                plan = QueryPlan.from_dict(payload)
                assert plan.mode == "planned"

    def test_http_query_with_explain_flag(self, planned_deployment):
        start = planned_deployment.collection.document_root(
            sorted(planned_deployment.collection.documents)[0]
        )
        with in_process_cluster(planned_deployment, 2) as (coordinator, _):
            with FrontDoor(coordinator) as door:
                host, port = door.start()
                body = json.dumps(
                    {"kind": "descendants", "source": start, "explain": True}
                ).encode()
                request = urllib.request.Request(
                    f"http://{host}:{port}/query",
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as raw:
                    payload = json.loads(raw.read())
                assert payload["plan"] is not None
                assert payload["plan"]["kind"] == "descendants"
                assert payload["completeness"] == "complete"

    def test_env_override_disables_coordinator_planner(
        self, planned_deployment, monkeypatch
    ):
        monkeypatch.setenv("FLIX_PLANNER", "0")
        start = planned_deployment.collection.document_root(
            sorted(planned_deployment.collection.documents)[0]
        )
        with in_process_cluster(planned_deployment, 2) as (coordinator, _):
            plan = coordinator.explain(QueryRequest.descendants(start))
            assert plan is not None
            assert plan.mode == "fixed"
