"""Shard planning and ``shard_map.json`` persistence."""

from __future__ import annotations

import json

import pytest

from repro.shard.plan import (
    SHARD_MAP_NAME,
    ShardMap,
    ShardPlanError,
    ShardPlanner,
    load_shard_map,
    write_shard_map,
)


class TestPlanner:
    def test_every_meta_assigned_exactly_once(self, deployment):
        shard_map = ShardPlanner(3).plan(deployment.flix)
        live = {m.meta_id for m in deployment.flix.layout.live_metas()}
        assert set(shard_map.shard_of_meta) == live
        assert all(0 <= s < 3 for s in shard_map.shard_of_meta.values())

    def test_node_routing_matches_layout(self, deployment):
        shard_map = ShardPlanner(4).plan(deployment.flix)
        layout_meta_of = deployment.flix.layout.meta_of
        for node, meta_id in layout_meta_of.items():
            assert shard_map.meta_of(node) == meta_id
            assert (
                shard_map.shard_of_node(node)
                == shard_map.shard_of_meta[meta_id]
            )

    def test_unknown_node_raises_key_error_like_serial(self, deployment):
        shard_map = ShardPlanner(2).plan(deployment.flix)
        missing = max(deployment.flix.layout.meta_of) + 1000
        with pytest.raises(KeyError) as excinfo:
            shard_map.meta_of(missing)
        # the serial PEE's message, so coordinator passthrough is identical
        assert "is not part of the collection" in str(excinfo.value)

    def test_cross_links_have_cross_shard_endpoints(self, deployment):
        shard_map = ShardPlanner(3).plan(deployment.flix)
        for source, target, source_shard, target_shard in shard_map.cross_links:
            assert source_shard != target_shard
            assert shard_map.shard_of_node(source) == source_shard
            assert shard_map.shard_of_node(target) == target_shard

    def test_node_weight_roughly_balanced(self, deployment):
        shard_map = ShardPlanner(2).plan(deployment.flix)
        weights = {0: 0, 1: 0}
        for start, end, meta_id in shard_map.meta_runs:
            weights[shard_map.shard_of_meta[meta_id]] += end - start + 1
        total = sum(weights.values())
        assert total == len(deployment.flix.layout.meta_of)
        # greedy largest-first packing: no shard should own everything
        assert all(weight < total for weight in weights.values())

    def test_more_shards_than_metas_is_legal(self, deployment):
        live = len(deployment.flix.layout.live_metas())
        shard_map = ShardPlanner(live + 5).plan(deployment.flix)
        owners = set(shard_map.shard_of_meta.values())
        assert len(owners) <= live  # surplus shards own nothing

    def test_reachable_shards_is_a_closure(self, deployment):
        shard_map = ShardPlanner(3).plan(deployment.flix)
        for shard in range(3):
            reach = shard_map.reachable_shards(shard)
            assert shard in reach
            adjacency = shard_map.shard_adjacency(True)
            for member in reach:
                assert adjacency[member] <= reach

    def test_fingerprint_and_generation_recorded(self, deployment):
        shard_map = ShardPlanner(2).plan(deployment.flix)
        assert shard_map.index_fingerprint == \
            deployment.flix.index_fingerprint()
        assert shard_map.generation == deployment.flix.layout_generation

    def test_zero_shards_rejected(self):
        with pytest.raises(ShardPlanError):
            ShardPlanner(0)


class TestPersistence:
    def test_round_trip_preserves_everything(self, deployment, tmp_path):
        original = ShardPlanner(3).plan(deployment.flix)
        path = write_shard_map(original, tmp_path)
        assert path.name == SHARD_MAP_NAME
        loaded = load_shard_map(tmp_path)
        assert loaded == original

    def test_routing_survives_round_trip(self, deployment, tmp_path):
        original = ShardPlanner(2).plan(deployment.flix)
        write_shard_map(original, tmp_path)
        loaded = load_shard_map(tmp_path)
        for node in list(deployment.flix.layout.meta_of)[:50]:
            assert loaded.shard_of_node(node) == original.shard_of_node(node)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ShardPlanError):
            load_shard_map(tmp_path)

    def test_corrupt_json_raises(self, tmp_path):
        (tmp_path / SHARD_MAP_NAME).write_text("{not json")
        with pytest.raises(ShardPlanError):
            load_shard_map(tmp_path)

    def test_missing_fields_raise(self, tmp_path):
        (tmp_path / SHARD_MAP_NAME).write_text(json.dumps({"shards": 2}))
        with pytest.raises(ShardPlanError):
            load_shard_map(tmp_path)

    def test_unsupported_version_raises(self, deployment, tmp_path):
        payload = ShardPlanner(2).plan(deployment.flix).to_json()
        payload["format_version"] = 99
        (tmp_path / SHARD_MAP_NAME).write_text(json.dumps(payload))
        with pytest.raises(ShardPlanError):
            load_shard_map(tmp_path)

    def test_out_of_range_shard_assignment_rejected(self):
        with pytest.raises(ShardPlanError):
            ShardMap(
                shards=2,
                shard_of_meta={0: 5},
                meta_runs=((0, 10, 0),),
                cross_links=(),
            )
