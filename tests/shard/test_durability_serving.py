"""Durability meets serving: wal_pull, roles, and graceful drains."""

from __future__ import annotations

import signal
import socket
import threading
import urllib.request

import pytest

from repro.shard.coordinator import ShardCoordinator
from repro.shard.http import FrontDoor
from repro.shard.plan import ShardPlanner, write_shard_map
from repro.shard.protocol import read_frame, write_frame
from repro.shard.worker import ShardWorker, spawn_worker

from .conftest import in_process_cluster


def _single_worker(deployment, **kwargs):
    write_shard_map(ShardPlanner(1).plan(deployment.flix), deployment.index_dir)
    worker = ShardWorker.attach(
        deployment.collection_dir, deployment.index_dir, 0, **kwargs
    )
    host, port = worker.start()
    return worker, host, port


def _call(host, port, verb, payload):
    with socket.create_connection((host, port), timeout=10.0) as sock:
        write_frame(sock, (verb, payload))
        return read_frame(sock)


class TestWalPullVerb:
    def test_ping_reports_role(self, deployment):
        worker, host, port = _single_worker(deployment, role="follower")
        try:
            verb, payload = _call(host, port, "ping", {})
            assert verb == "pong"
            assert payload["role"] == "follower"
        finally:
            worker.close()

    def test_missing_log_serves_empty_segment(self, deployment):
        worker, host, port = _single_worker(deployment)
        try:
            verb, payload = _call(host, port, "wal_pull", {"after_generation": 4})
            assert verb == "wal_records"
            assert payload["records"] == []
            assert payload["base_generation"] == 4
            assert payload["tail_generation"] == 4
        finally:
            worker.close()

    def test_records_filtered_by_cursor(self, deployment, tmp_path):
        from repro.wal import WriteAheadLog, wal_path_for

        wal = WriteAheadLog(wal_path_for(deployment.index_dir))
        wal.append("remove", 1, {"name": "x.xml"})
        wal.append("remove", 2, {"name": "y.xml"})
        wal.close()
        worker, host, port = _single_worker(deployment)
        try:
            _, payload = _call(host, port, "wal_pull", {"after_generation": 1})
            assert [r["generation"] for r in payload["records"]] == [2]
            assert payload["base_generation"] == 0
            assert payload["tail_generation"] == 2
        finally:
            worker.close()
            wal_path_for(deployment.index_dir).unlink()


class TestWorkerDrain:
    def test_draining_worker_refuses_new_requests(self, deployment):
        worker, host, port = _single_worker(deployment)
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            worker._draining = True  # simulate mid-drain
            write_frame(sock, ("ping", {}))
            verb, payload = read_frame(sock)
            assert verb == "error"
            assert payload["type"] == "ShardUnavailable"
            sock.close()
        finally:
            worker._draining = False
            worker.close()

    def test_drain_syncs_and_stops(self, deployment):
        from repro.wal import wal_path_for

        worker, host, port = _single_worker(deployment)
        worker.flix.enable_wal(wal_path_for(deployment.index_dir), fsync="none")
        worker.drain(timeout=5.0)
        with pytest.raises(OSError):
            _call(host, port, "ping", {})
        wal_path_for(deployment.index_dir).unlink()

    def test_sigterm_drains_subprocess_to_exit_zero(self, deployment):
        write_shard_map(
            ShardPlanner(1).plan(deployment.flix), deployment.index_dir
        )
        worker = spawn_worker(
            deployment.collection_dir, deployment.index_dir, 0
        )
        try:
            verb, _ = _call(worker.host, worker.port, "ping", {})
            assert verb == "pong"
            worker.process.send_signal(signal.SIGTERM)
            assert worker.process.wait(timeout=30.0) == 0
        finally:
            worker.close()


class TestCoordinatorRoles:
    def test_health_carries_roles(self, deployment):
        with in_process_cluster(deployment, 2) as (coordinator, _workers):
            report = coordinator.health()
            assert report["role"] == "primary"
            assert all(
                entry["role"] == "primary" for entry in report["shards"]
            )
            assert "replication_lag" not in report

    def test_follower_coordinator_reports_lag(self, deployment):
        class FakeReplication:
            replication_lag = 3
            generation = 11

        write_shard_map(
            ShardPlanner(1).plan(deployment.flix), deployment.index_dir
        )
        worker = ShardWorker.attach(
            deployment.collection_dir, deployment.index_dir, 0,
            role="follower",
        )
        endpoint = worker.start()
        coordinator = ShardCoordinator.connect(
            deployment.index_dir, [endpoint],
            role="follower", replication=FakeReplication(),
        )
        try:
            report = coordinator.health()
            assert report["role"] == "follower"
            assert report["replication_lag"] == 3
            assert report["replication_generation"] == 11
            assert all(
                entry["role"] == "follower" for entry in report["shards"]
            )
        finally:
            coordinator.close()
            worker.close()

    def test_bad_role_rejected(self, deployment):
        shard_map = ShardPlanner(1).plan(deployment.flix)
        with pytest.raises(ValueError, match="role"):
            ShardCoordinator(shard_map, [object()], role="scribe")


class TestFrontDoorDrain:
    def test_drain_finishes_inflight_then_refuses(self, deployment):
        with in_process_cluster(deployment, 2) as (coordinator, _workers):
            door = FrontDoor(coordinator)
            host, port = door.start()
            with urllib.request.urlopen(
                f"http://{host}:{port}/health", timeout=10.0
            ) as reply:
                assert reply.status == 200
            door.drain(timeout=10.0)
            with pytest.raises(OSError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/health", timeout=2.0
                )
            door.close()  # second close is a no-op

    def test_drain_waits_for_inflight_requests(self, deployment):
        with in_process_cluster(deployment, 2) as (coordinator, _workers):
            door = FrontDoor(coordinator)
            door.start()
            entered = threading.Event()
            release = threading.Event()

            with door._track():
                pass  # sanity: the tracker balances

            def hold():
                with door._track():
                    entered.set()
                    release.wait(timeout=10.0)

            holder = threading.Thread(target=hold, daemon=True)
            holder.start()
            assert entered.wait(timeout=5.0)

            drained = threading.Event()

            def drain():
                door.drain(timeout=10.0)
                drained.set()

            threading.Thread(target=drain, daemon=True).start()
            assert not drained.wait(timeout=0.5)  # blocked on the holder
            release.set()
            assert drained.wait(timeout=10.0)
            holder.join(timeout=5.0)
