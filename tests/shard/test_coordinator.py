"""Coordinator correctness: parity, caching, budgets, degradation.

The headline invariant: a ``ShardCoordinator`` answer is byte-identical
to serial ``Flix.query`` — same results in the same order, and for the
``distributed`` mode the same per-query stats too (the coordinator runs
the very same priority-queue loop, only the expansions travel).
"""

from __future__ import annotations

import pytest

from repro.core.api import QueryRequest
from repro.core.config import CacheConfig
from repro.core.pee import QueryBudget
from repro.shard.distributed import ExpansionLost

from tests.shard.conftest import in_process_cluster


def _all_kind_requests(collection):
    roots = [
        collection.document_root(name) for name in sorted(collection.documents)
    ]
    a, b = roots[0], roots[1]
    return [
        ("descendants", QueryRequest.descendants(a)),
        ("type_query", QueryRequest.type_query("article", tag="author")),
        ("ancestors", QueryRequest.ancestors(a + 1)),
        ("children", QueryRequest.children(a)),
        ("path", QueryRequest.find_path(a, ["author"])),
        ("connections", QueryRequest.connections(a)),
        ("cost", QueryRequest.cost(a, b)),
        ("test", QueryRequest.test(a, b)),
    ]


def _signature(response):
    return (
        [repr(row) for row in response.results],
        response.value,
        response.stats.completeness,
    )


def _stats_tuple(stats):
    return (
        stats.queue_pops,
        stats.link_traversals,
        stats.meta_document_visits,
        stats.entries_dropped,
        stats.results_returned,
        stats.results_suppressed,
        stats.covered_probes,
        stats.completeness,
    )


class TestParity:
    @pytest.mark.parametrize("mode", ["delegate", "distributed"])
    def test_all_kinds_byte_identical_to_serial(self, deployment, mode):
        requests = _all_kind_requests(deployment.collection)
        serial = {
            name: deployment.flix.query(request) for name, request in requests
        }
        with in_process_cluster(deployment, 3, cross_shard=mode) as (
            coordinator, _workers,
        ):
            for name, request in requests:
                response = coordinator.query(request)
                assert _signature(response) == _signature(serial[name]), name

    def test_distributed_stats_equal_serial(self, deployment):
        # the distributed loop IS the serial loop; the counters must agree
        roots = sorted(deployment.collection.documents)
        start = deployment.collection.document_root(roots[0])
        request = QueryRequest.descendants(start)
        serial = deployment.flix.query(request)
        with in_process_cluster(deployment, 3, cross_shard="distributed") as (
            coordinator, _workers,
        ):
            response = coordinator.query(request)
        assert _stats_tuple(response.stats) == _stats_tuple(serial.stats)

    def test_unknown_node_raises_key_error_through_the_wire(self, deployment):
        missing = max(deployment.flix.layout.meta_of) + 1000
        with in_process_cluster(deployment, 2) as (coordinator, _workers):
            with pytest.raises(KeyError):
                coordinator.query(QueryRequest.descendants(missing))

    def test_limit_applied_at_coordinator(self, deployment):
        start = deployment.collection.document_root(
            sorted(deployment.collection.documents)[0]
        )
        request = QueryRequest.descendants(start, limit=3)
        serial = deployment.flix.query(request)
        with in_process_cluster(deployment, 2, cross_shard="distributed") as (
            coordinator, _workers,
        ):
            response = coordinator.query(request)
        assert _signature(response) == _signature(serial)
        assert len(response.results) == 3


class TestCaching:
    def test_repeat_query_served_from_cache(self, deployment):
        start = deployment.collection.document_root(
            sorted(deployment.collection.documents)[0]
        )
        request = QueryRequest.descendants(start)
        with in_process_cluster(
            deployment, 2, cache=CacheConfig(maxsize=64, shards=2)
        ) as (coordinator, _workers):
            first = coordinator.query(request)
            second = coordinator.query(request)
            assert not first.from_cache
            assert second.from_cache
            assert _signature(second) == _signature(first)
            stats = coordinator.cache_stats()
            assert stats.hits == 1
            assert stats.misses == 1

    def test_limited_request_slices_cached_superset(self, deployment):
        start = deployment.collection.document_root(
            sorted(deployment.collection.documents)[0]
        )
        with in_process_cluster(
            deployment, 2, cache=CacheConfig(maxsize=64, shards=2)
        ) as (coordinator, _workers):
            full = coordinator.query(QueryRequest.descendants(start))
            limited = coordinator.query(
                QueryRequest.descendants(start, limit=2)
            )
            assert limited.from_cache
            assert [repr(r) for r in limited.results] == [
                repr(r) for r in full.results[:2]
            ]

    def test_cache_survives_invalidation_cycle(self, deployment):
        # entries stored after invalidate_all() must hit (generation
        # stamping: the regression behind the bench's cold/warm split)
        start = deployment.collection.document_root(
            sorted(deployment.collection.documents)[0]
        )
        request = QueryRequest.descendants(start)
        with in_process_cluster(
            deployment, 2, cache=CacheConfig(maxsize=64, shards=2)
        ) as (coordinator, _workers):
            coordinator.query(request)
            coordinator.invalidate_cache()
            refreshed = coordinator.query(request)
            assert not refreshed.from_cache
            assert coordinator.query(request).from_cache

    def test_budgeted_answers_never_cached(self, deployment):
        # the last synthetic document reaches the most residual links, so
        # a one-pop budget is guaranteed to stop the search early
        start = deployment.collection.document_root(
            sorted(deployment.collection.documents)[-1]
        )
        budget = QueryBudget(max_queue_pops=1)
        with in_process_cluster(
            deployment, 2, cache=CacheConfig(maxsize=64, shards=2)
        ) as (coordinator, _workers):
            truncated = coordinator.query(
                QueryRequest.descendants(start), budget=budget
            )
            assert truncated.stats.completeness == "truncated"
            follow_up = coordinator.query(QueryRequest.descendants(start))
            assert not follow_up.from_cache
            assert follow_up.stats.is_complete

    def test_default_budget_applies_and_truncates(self, deployment):
        start = deployment.collection.document_root(
            sorted(deployment.collection.documents)[-1]
        )
        with in_process_cluster(
            deployment, 2, default_budget=QueryBudget(max_queue_pops=1)
        ) as (coordinator, _workers):
            response = coordinator.query(QueryRequest.descendants(start))
            assert response.stats.completeness == "truncated"


class TestDegradation:
    def test_delegation_fails_over_to_a_live_shard(self, deployment):
        requests = _all_kind_requests(deployment.collection)
        serial = {
            name: deployment.flix.query(request) for name, request in requests
        }
        with in_process_cluster(deployment, 3) as (coordinator, workers):
            workers[0].close()  # every request owned by shard 0 must fail over
            for name, request in requests:
                response = coordinator.query(request)
                assert _signature(response) == _signature(serial[name]), name
                assert response.stats.is_complete, name
            health = coordinator.health()
            assert health["healthy"] == 2
            assert not health["shards"][0]["healthy"]

    def test_all_shards_down_degrades_instead_of_raising(self, deployment):
        start = deployment.collection.document_root(
            sorted(deployment.collection.documents)[0]
        )
        with in_process_cluster(deployment, 2) as (coordinator, workers):
            for worker in workers:
                worker.close()
            response = coordinator.query(QueryRequest.descendants(start))
            assert response.stats.completeness == "degraded"
            assert response.results == []
            assert coordinator.health()["healthy"] == 0

    def test_recovered_worker_rejoins_after_health_check(self, deployment):
        with in_process_cluster(deployment, 2) as (coordinator, _workers):
            coordinator._mark_health(1, False)
            health = coordinator.health()  # ping succeeds, flips it back
            assert health["healthy"] == 2

    def test_distributed_merge_stays_ordered_under_a_degraded_shard(
        self, deployment
    ):
        """The satellite scenario: one shard's expansions are lost, the
        merged stream is flagged ``truncated`` but stays distance-ordered
        and a strict subset of the serial answer."""
        shard_counts = 3
        roots = sorted(deployment.collection.documents)
        # the last document's closure spans the most shards; exact_order
        # makes the stream's distance ordering a hard guarantee
        start = deployment.collection.document_root(roots[-1])
        request = QueryRequest.descendants(start, exact_order=True)
        serial = deployment.flix.query(request)
        serial_reprs = [repr(row) for row in serial.results]
        with in_process_cluster(
            deployment, shard_counts, cross_shard="distributed"
        ) as (coordinator, _workers):
            shard_map = coordinator._map
            # the search must actually span shards for the loss to matter
            home = shard_map.shard_of_node(start)
            assert len(shard_map.reachable_shards(home)) > 1
            dead_shard = next(
                s for s in shard_map.reachable_shards(home) if s != home
            )
            real_expand = coordinator._distributed._expand_rpc

            def lossy_expand(meta_id, payload):
                if shard_map.shard_of_meta[meta_id] == dead_shard:
                    raise ExpansionLost(dead_shard)
                return real_expand(meta_id, payload)

            coordinator._distributed._expand_rpc = lossy_expand
            response = coordinator.query(request)

        assert response.stats.completeness == "truncated"
        rows = response.results
        assert 0 < len(rows) < len(serial.results)
        # distance-ordered, exactly like the serial stream
        distances = [row.distance for row in rows]
        assert distances == sorted(distances)
        # everything returned is correct: a subset of the serial answer
        assert set(repr(row) for row in rows) <= set(serial_reprs)
