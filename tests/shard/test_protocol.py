"""Wire framing: length-prefixed pickled ``(verb, payload)`` pairs."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.shard.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


class TestFraming:
    def test_round_trip(self):
        left, right = _pair()
        try:
            message = ("query", {"request": [1, 2, 3], "budget": None})
            write_frame(left, message)
            assert read_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_multiple_frames_in_sequence(self):
        left, right = _pair()
        try:
            for index in range(5):
                write_frame(left, ("ping", {"n": index}))
            for index in range(5):
                assert read_frame(right) == ("ping", {"n": index})
        finally:
            left.close()
            right.close()

    def test_encode_frame_is_length_prefixed(self):
        frame = encode_frame(("pong", {}))
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_eof_mid_frame_raises_connection_error(self):
        left, right = _pair()
        frame = encode_frame(("query", {"big": "x" * 1000}))
        left.sendall(frame[: len(frame) // 2])
        left.close()
        try:
            with pytest.raises(ConnectionError):
                read_frame(right)
        finally:
            right.close()

    def test_clean_eof_raises_connection_error(self):
        left, right = _pair()
        left.close()
        try:
            with pytest.raises(ConnectionError):
                read_frame(right)
        finally:
            right.close()

    def test_oversized_length_rejected_before_reading_body(self):
        left, right = _pair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_garbage_body_raises_protocol_error(self):
        left, right = _pair()
        try:
            body = b"not a pickle at all"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_pair_payload_rejected(self):
        import pickle

        left, right = _pair()
        try:
            body = pickle.dumps(["just", "a", "list"])
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_concurrent_writers_do_not_interleave(self):
        # write_frame sends one atomic sendall per frame; many threads
        # writing to the same socket must still produce parseable frames
        left, right = _pair()
        errors = []

        def write_many(tag):
            try:
                for index in range(20):
                    write_frame(left, (tag, {"n": index}))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=write_many, args=(f"t{i}",))
            for i in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            seen = 0
            while seen < 80:
                verb, payload = read_frame(right)
                assert verb.startswith("t")
                assert 0 <= payload["n"] < 20
                seen += 1
        finally:
            for thread in threads:
                thread.join()
            left.close()
            right.close()
        assert not errors
