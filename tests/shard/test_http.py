"""The HTTP front door: /query, /health, /metrics."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.api import QueryRequest
from repro.shard.http import FrontDoor, request_from_json, response_to_json

from tests.shard.conftest import in_process_cluster


@pytest.fixture()
def door(deployment):
    with in_process_cluster(deployment, 2) as (coordinator, _workers):
        front = FrontDoor(coordinator)
        front.start()
        try:
            yield front, deployment
        finally:
            front.close()


def _get(door, path):
    host, port = door.address
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as reply:
            return reply.status, reply.headers, reply.read()
    except urllib.error.HTTPError as error:
        return error.code, error.headers, error.read()


def _post(door, path, payload):
    host, port = door.address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRequestJson:
    def test_round_trip_descendants(self):
        request = request_from_json(
            {"kind": "descendants", "source": 5, "tag": "author", "limit": 3}
        )
        assert request == QueryRequest.descendants(5, tag="author", limit=3)

    def test_budget_and_model_dicts_are_inflated(self):
        request = request_from_json(
            {
                "kind": "test",
                "source": 1,
                "target": 2,
                "budget": {"max_queue_pops": 7},
            }
        )
        assert request.budget.max_queue_pops == 7

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            request_from_json({"kind": "descendants", "source": 1, "bogus": 2})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError):
            request_from_json({"source": 1})


class TestRoutes:
    def test_query_round_trip(self, door):
        front, deployment = door
        start = deployment.collection.document_root(
            sorted(deployment.collection.documents)[0]
        )
        status, body = _post(
            front, "/query", {"kind": "descendants", "source": start}
        )
        assert status == 200
        serial = deployment.flix.query(QueryRequest.descendants(start))
        assert body == response_to_json(serial) | {
            "elapsed_seconds": body["elapsed_seconds"],
        }
        assert body["completeness"] == "complete"

    def test_query_unknown_node_is_404(self, door):
        front, _ = door
        status, body = _post(
            front, "/query", {"kind": "descendants", "source": 10_000_000}
        )
        assert status == 404
        assert "not part of the collection" in body["error"]

    def test_query_bad_body_is_400(self, door):
        front, _ = door
        status, body = _post(front, "/query", {"source": 1})
        assert status == 400
        assert "kind" in body["error"]

    def test_non_integer_source_is_400(self, door):
        # a document name is not a node id: must come back 400, not a
        # dropped connection from the routing layer comparing str to int
        front, _ = door
        for route in ("/query", "/explain"):
            status, body = _post(
                front, route,
                {"kind": "descendants", "source": "matrix3.xml"},
            )
            assert status == 400
            assert "integer node id" in body["error"]

    def test_health_route(self, door):
        front, _ = door
        status, _, raw = _get(front, "/health")
        assert status == 200
        health = json.loads(raw)
        assert health["healthy"] == 2
        assert health["total"] == 2

    def test_metrics_prometheus_and_json(self, door):
        front, _ = door
        status, headers, raw = _get(front, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"flix_shard_workers_healthy" in raw
        status, headers, raw = _get(front, "/metrics?format=json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        json.loads(raw)

    def test_unknown_route_is_404(self, door):
        front, _ = door
        status, _, _ = _get(front, "/nope")
        assert status == 404
