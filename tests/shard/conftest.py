"""Shared fixtures for the sharded-serving tests.

One packed DBLP deployment is built and saved once per test package;
individual tests plan shard maps over it and start in-process workers
(real sockets, real framing, no subprocess cost).  The subprocess path
is covered separately in ``test_worker_process.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.collection.io import save_collection
from repro.core.config import CacheConfig, FlixConfig
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp
from repro.shard.coordinator import ShardCoordinator
from repro.shard.plan import ShardPlanner, write_shard_map
from repro.shard.worker import ShardWorker


@pytest.fixture(scope="package")
def deployment(tmp_path_factory):
    """A saved packed index + collection directory, built once."""
    base = tmp_path_factory.mktemp("shard-deployment")
    collection = generate_dblp(DblpSpec(documents=6, seed=7))
    flix = Flix.build(collection, FlixConfig.naive().with_packed())
    collection_dir = base / "collection"
    index_dir = base / "index"
    save_collection(collection, collection_dir)
    flix.save(index_dir)
    return SimpleNamespace(
        collection=collection,
        flix=flix,
        collection_dir=collection_dir,
        index_dir=index_dir,
    )


@contextmanager
def in_process_cluster(
    deployment,
    shards: int,
    cross_shard: str = "delegate",
    cache: CacheConfig = None,
    default_budget=None,
):
    """Plan ``shards`` shards, start that many in-process workers, and
    yield ``(coordinator, workers)``; tears everything down on exit."""
    shard_map = ShardPlanner(shards).plan(deployment.flix)
    write_shard_map(shard_map, deployment.index_dir)
    workers = [
        ShardWorker.attach(
            deployment.collection_dir, deployment.index_dir, shard
        )
        for shard in range(shards)
    ]
    endpoints = [worker.start() for worker in workers]
    coordinator = ShardCoordinator.connect(
        deployment.index_dir,
        endpoints,
        cache=cache,
        cross_shard=cross_shard,
        default_budget=default_budget,
    )
    try:
        yield coordinator, workers
    finally:
        coordinator.close()
        for worker in workers:
            worker.close()
