"""The docs-consistency checker itself must work (CI runs it directly)."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"


def test_checker_passes_on_current_docs():
    proc = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_checker_resolves_and_rejects():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from check_docs import resolve

        assert resolve("repro.core.framework.Flix")
        assert resolve("repro.obs.MetricsRegistry")
        assert resolve("repro.obs")
        assert resolve("repro.shard.coordinator.ShardCoordinator")
        assert not resolve("repro.not_a_module.thing")
        assert not resolve("repro.core.framework.NotAClass")
    finally:
        sys.path.remove(str(REPO_ROOT / "tools"))


def test_every_doc_file_is_registered():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from check_docs import CHECKED_DOCS, check_all_docs_registered

        assert check_all_docs_registered() == []
        registered = {doc.name for doc in CHECKED_DOCS}
        on_disk = {doc.name for doc in (REPO_ROOT / "docs").glob("*.md")}
        assert registered == on_disk
    finally:
        sys.path.remove(str(REPO_ROOT / "tools"))


def test_deprecated_mentions_must_be_flagged(tmp_path, monkeypatch):
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_docs

        doc = tmp_path / "STALE.md"
        doc.write_text(
            "Use `enable_cache(128)` to turn caching on.\n"
            "`disable_cache()` is deprecated; prefer CacheConfig.\n"
        )
        monkeypatch.setattr(check_docs, "CHECKED_DOCS", (doc,))
        errors = check_docs.check_deprecated_mentions()
        assert len(errors) == 1  # line 2 is flagged, line 1 is not
        assert "enable_cache" in errors[0]
    finally:
        sys.path.remove(str(REPO_ROOT / "tools"))


def test_legacy_flix_query_methods_flagged_only_when_qualified(
    tmp_path, monkeypatch
):
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_docs

        doc = tmp_path / "STALE.md"
        doc.write_text(
            "Call `Flix.find_descendants(start)` for the axis.\n"
            "Examples use `flix.find_path(a, tags)` directly.\n"
            "`QueryRequest.find_path(...)` is the modern constructor.\n"
            "`find_descendants_streamed` pages results out.\n"
            "`Flix.find_ancestors` is deprecated; use `query_stream`.\n"
        )
        monkeypatch.setattr(check_docs, "CHECKED_DOCS", (doc,))
        errors = check_docs.check_deprecated_mentions()
        # lines 1 and 2 are unflagged shim references; 3 and 4 are live
        # APIs sharing the name; 5 carries the deprecation mark
        assert len(errors) == 2
        assert ":1 " in errors[0] and "Flix.find_descendants" in errors[0]
        assert ":2 " in errors[1] and "Flix.find_path" in errors[1]
    finally:
        sys.path.remove(str(REPO_ROOT / "tools"))
