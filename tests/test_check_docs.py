"""The docs-consistency checker itself must work (CI runs it directly)."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"


def test_checker_passes_on_current_docs():
    proc = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_checker_resolves_and_rejects():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from check_docs import resolve

        assert resolve("repro.core.framework.Flix")
        assert resolve("repro.obs.MetricsRegistry")
        assert resolve("repro.obs")
        assert not resolve("repro.not_a_module.thing")
        assert not resolve("repro.core.framework.NotAClass")
    finally:
        sys.path.remove(str(REPO_ROOT / "tools"))
