"""Shared fixtures and hypothesis strategies for the FliX test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument
from repro.datasets.dblp import DblpSpec, generate_dblp
from repro.datasets.movies import generate_movie_collection
from repro.datasets.synthetic import generate_figure1_collection
from repro.graph.digraph import Digraph

# ----------------------------------------------------------------------
# deterministic example graphs
# ----------------------------------------------------------------------


def diamond_graph() -> Digraph:
    """0 -> {1, 2} -> 3: the smallest multi-path DAG."""
    return Digraph([(0, 1), (0, 2), (1, 3), (2, 3)])


def chain_graph(length: int) -> Digraph:
    return Digraph([(i, i + 1) for i in range(length)])


def cycle_graph(length: int) -> Digraph:
    return Digraph([(i, (i + 1) % length) for i in range(length)])


def random_digraph(seed: int, nodes: int, edge_factor: float = 1.5) -> Digraph:
    rng = random.Random(seed)
    graph = Digraph()
    for i in range(nodes):
        graph.add_node(i)
    for _ in range(int(nodes * edge_factor)):
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u != v:
            graph.add_edge(u, v)
    return graph


def random_tree(seed: int, nodes: int) -> Digraph:
    rng = random.Random(seed)
    graph = Digraph()
    graph.add_node(0)
    for i in range(1, nodes):
        graph.add_edge(rng.randrange(i), i)
    return graph


def random_tags(seed: int, nodes: int, alphabet: str = "abcd") -> dict:
    rng = random.Random(seed)
    return {i: rng.choice(alphabet) for i in range(nodes)}


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------

# (seed, node count) pairs from which tests derive deterministic graphs;
# keeping randomness inside random_digraph keeps shrinking effective.
graph_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=30),
)

tree_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=40),
)

xml_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.-]{0,8}", fullmatch=True)

# Text that is safe in XML content after escaping (the serializer escapes
# &, <, >; control characters are out of scope for the subset we parse).
xml_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"),
    ),
    max_size=40,
)


@pytest.fixture()
def object_layout(monkeypatch):
    """Pin a test to the plain object index layout.

    CI's packed-parity job exports ``FLIX_PACKED=1`` (forcing every
    ``Flix.build`` onto the packed layout) and the chaos job exports
    ``FAULT_PLAN=moderate`` (wrapping every backend in a
    ``ResilientBackend``); tests that assert raw object-layout
    *internals* — backend class names, build-report byte accounting —
    opt out of both overrides through this fixture.
    """
    monkeypatch.delenv("FLIX_PACKED", raising=False)
    monkeypatch.delenv("FLIX_FAULT_PLAN", raising=False)
    monkeypatch.delenv("FAULT_PLAN", raising=False)


# ----------------------------------------------------------------------
# collection fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def dblp_collection():
    """A small but structurally faithful DBLP corpus (150 records)."""
    return generate_dblp(DblpSpec(documents=150))


@pytest.fixture(scope="session")
def movie_collection():
    return generate_movie_collection()


@pytest.fixture(scope="session")
def figure1_collection():
    return generate_figure1_collection()


@pytest.fixture()
def tiny_collection():
    """Three hand-written documents with one inter- and one intra-doc link."""
    docs = [
        XmlDocument.from_text(
            "a.xml",
            '<doc id="r"><sec id="s1"><p>alpha</p></sec>'
            '<sec id="s2"><ref idref="s1"/></sec></doc>',
        ),
        XmlDocument.from_text(
            "b.xml",
            '<doc><sec><link xlink:href="a.xml#s2"/></sec></doc>',
        ),
        XmlDocument.from_text(
            "c.xml",
            '<doc><link xlink:href="b.xml"/><p>gamma</p></doc>',
        ),
    ]
    return build_collection(docs)
