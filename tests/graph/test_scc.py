"""Unit and property tests for Tarjan SCC and condensation."""

from hypothesis import given

from repro.graph.digraph import Digraph
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.traversal import bfs_distances, topological_sort
from tests.conftest import cycle_graph, diamond_graph, graph_params, random_digraph


class TestScc:
    def test_dag_gives_singletons(self):
        components = strongly_connected_components(diamond_graph())
        assert sorted(len(c) for c in components) == [1, 1, 1, 1]

    def test_cycle_is_one_component(self):
        components = strongly_connected_components(cycle_graph(4))
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1, 2, 3]

    def test_two_cycles_with_bridge(self):
        g = Digraph([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        components = {frozenset(c) for c in strongly_connected_components(g)}
        assert components == {frozenset({0, 1}), frozenset({2, 3})}

    def test_self_loop_is_component(self):
        g = Digraph([(0, 0), (0, 1)])
        components = {frozenset(c) for c in strongly_connected_components(g)}
        assert frozenset({0}) in components

    def test_empty_graph(self):
        assert strongly_connected_components(Digraph()) == []

    def test_deep_chain_no_recursion_error(self):
        g = Digraph([(i, i + 1) for i in range(5000)])
        components = strongly_connected_components(g)
        assert len(components) == 5001


class TestCondensation:
    def test_condensation_is_acyclic(self):
        g = Digraph([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)])
        dag, _component_of = condensation(g)
        topological_sort(dag)  # raises on a cycle

    def test_component_mapping_consistent(self):
        g = cycle_graph(3)
        _dag, component_of = condensation(g)
        assert component_of[0] == component_of[1] == component_of[2]

    def test_cross_edges_preserved(self):
        g = Digraph([(0, 1), (1, 0), (1, 2)])
        dag, component_of = condensation(g)
        assert dag.has_edge(component_of[0], component_of[2])

    @given(graph_params)
    def test_mutual_reachability_iff_same_component(self, params):
        seed, n = params
        g = random_digraph(seed, n)
        _dag, component_of = condensation(g)
        forward = {node: bfs_distances(g, node) for node in g}
        for u in g:
            for v in g:
                mutual = v in forward[u] and u in forward[v]
                assert mutual == (component_of[u] == component_of[v])

    @given(graph_params)
    def test_condensation_edge_implies_data_edge(self, params):
        seed, n = params
        g = random_digraph(seed, n)
        dag, component_of = condensation(g)
        data_pairs = {
            (component_of[u], component_of[v])
            for u, v in g.edges()
            if component_of[u] != component_of[v]
        }
        assert set(dag.edges()) == data_pairs
