"""Unit tests for BFS/DFS/Dijkstra/topological sort."""

import pytest

from repro.graph.digraph import Digraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_reverse_distances,
    dfs_preorder,
    dijkstra,
    topological_sort,
)
from tests.conftest import chain_graph, cycle_graph, diamond_graph


class TestBfsDistances:
    def test_source_at_distance_zero(self):
        g = diamond_graph()
        assert bfs_distances(g, 0)[0] == 0

    def test_diamond_distances(self):
        assert bfs_distances(diamond_graph(), 0) == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_unreachable_nodes_absent(self):
        g = Digraph([(0, 1)])
        g.add_node(2)
        assert 2 not in bfs_distances(g, 0)

    def test_cycle_terminates_with_correct_distances(self):
        dist = bfs_distances(cycle_graph(5), 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_max_distance_truncates(self):
        dist = bfs_distances(chain_graph(10), 0, max_distance=3)
        assert max(dist.values()) == 3
        assert len(dist) == 4

    def test_missing_source_raises(self):
        with pytest.raises(KeyError):
            bfs_distances(Digraph(), "nope")


class TestBfsReverse:
    def test_reverse_matches_forward_on_reversed_graph(self):
        g = diamond_graph()
        assert bfs_reverse_distances(g, 3) == bfs_distances(g.reversed(), 3)

    def test_reverse_on_chain(self):
        assert bfs_reverse_distances(chain_graph(3), 3) == {3: 0, 2: 1, 1: 2, 0: 3}

    def test_missing_target_raises(self):
        with pytest.raises(KeyError):
            bfs_reverse_distances(Digraph(), 0)


class TestDfsPreorder:
    def test_visits_every_node_once(self):
        g = diamond_graph()
        order = list(dfs_preorder(g, [0]))
        assert sorted(order) == [0, 1, 2, 3]

    def test_parent_before_child(self):
        g = chain_graph(5)
        order = list(dfs_preorder(g, [0]))
        assert order == [0, 1, 2, 3, 4, 5]

    def test_multiple_roots(self):
        g = Digraph([(0, 1), (2, 3)])
        order = list(dfs_preorder(g, [0, 2]))
        assert sorted(order) == [0, 1, 2, 3]

    def test_deterministic(self):
        g = diamond_graph()
        assert list(dfs_preorder(g, [0])) == list(dfs_preorder(g, [0]))


class TestDijkstra:
    def test_matches_bfs_on_unit_weights(self):
        g = diamond_graph()

        def neighbours(node):
            return [(succ, 1) for succ in g.successors(node)]

        assert dijkstra(4, 0, neighbours) == bfs_distances(g, 0)

    def test_prefers_cheaper_path(self):
        weights = {("a", "b"): 10, ("a", "c"): 1, ("c", "b"): 2}

        def neighbours(node):
            return [(v, w) for (u, v), w in weights.items() if u == node]

        dist = dijkstra(3, "a", neighbours)
        assert dist["b"] == 3

    def test_negative_weight_rejected(self):
        def neighbours(node):
            return [("b", -1)] if node == "a" else []

        with pytest.raises(ValueError):
            dijkstra(2, "a", neighbours)


class TestTopologicalSort:
    def test_respects_edges(self):
        g = diamond_graph()
        order = topological_sort(g)
        position = {node: i for i, node in enumerate(order)}
        for u, v in g.edges():
            assert position[u] < position[v]

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            topological_sort(cycle_graph(3))

    def test_empty_graph(self):
        assert topological_sort(Digraph()) == []
