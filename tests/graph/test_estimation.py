"""Tests for Cohen's randomized closure-size estimator."""

import pytest

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.graph.estimation import estimate_closure_size, estimate_descendant_counts
from tests.conftest import chain_graph, cycle_graph, diamond_graph, random_digraph


class TestDescendantCounts:
    def test_requires_two_rounds(self):
        with pytest.raises(ValueError):
            estimate_descendant_counts(diamond_graph(), rounds=1)

    def test_estimates_within_feasible_range(self):
        g = random_digraph(5, 25)
        counts = estimate_descendant_counts(g, rounds=10)
        for node, value in counts.items():
            assert 1.0 <= value <= g.node_count

    def test_cycle_members_share_estimate(self):
        counts = estimate_descendant_counts(cycle_graph(4), rounds=10)
        assert len({round(v, 9) for v in counts.values()}) == 1

    def test_sink_estimates_one(self):
        g = chain_graph(3)
        counts = estimate_descendant_counts(g, rounds=200)
        # clamped below at 1.0, so the estimate can only err slightly upward
        assert 1.0 <= counts[3] < 1.15

    def test_deterministic_for_seed(self):
        g = random_digraph(7, 20)
        a = estimate_descendant_counts(g, rounds=5, seed=1)
        b = estimate_descendant_counts(g, rounds=5, seed=1)
        assert a == b

    def test_different_seeds_differ(self):
        g = random_digraph(7, 20)
        a = estimate_descendant_counts(g, rounds=5, seed=1)
        b = estimate_descendant_counts(g, rounds=5, seed=2)
        assert a != b


class TestClosureSizeEstimate:
    def test_converges_to_exact_size(self):
        """With many rounds the estimate lands within 20% of the truth."""
        g = random_digraph(11, 40)
        exact = transitive_closure(g).pair_count
        estimate = estimate_closure_size(g, rounds=400)
        assert abs(estimate - exact) / exact < 0.20

    def test_single_node(self):
        g = Digraph()
        g.add_node(0)
        assert estimate_closure_size(g, rounds=5) == pytest.approx(1.0)

    def test_chain_estimate_reasonable(self):
        g = chain_graph(9)  # exact closure: 10+9+...+1 = 55
        estimate = estimate_closure_size(g, rounds=300)
        assert 35 < estimate < 80

    def test_cyclic_graph_handled_exactly_at_component_level(self):
        g = cycle_graph(5)  # every node reaches all 5
        estimate = estimate_closure_size(g, rounds=200)
        exact = 25
        assert abs(estimate - exact) / exact < 0.35
