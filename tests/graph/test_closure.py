"""Unit and property tests for the transitive-closure oracle."""

from hypothesis import given

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.graph.traversal import bfs_distances
from tests.conftest import chain_graph, cycle_graph, diamond_graph, graph_params, random_digraph


class TestTransitiveClosure:
    def test_every_node_reaches_itself(self):
        closure = transitive_closure(diamond_graph())
        for node in range(4):
            assert closure.reachable(node, node)
            assert closure.distance(node, node) == 0

    def test_diamond_shortest_distance(self):
        closure = transitive_closure(diamond_graph())
        assert closure.distance(0, 3) == 2
        assert closure.distance(1, 2) is None

    def test_chain_distances(self):
        closure = transitive_closure(chain_graph(4))
        for i in range(5):
            for j in range(5):
                expected = j - i if j >= i else None
                assert closure.distance(i, j) == expected

    def test_cycle_full_reachability(self):
        closure = transitive_closure(cycle_graph(3))
        for u in range(3):
            for v in range(3):
                assert closure.reachable(u, v)
        assert closure.distance(0, 2) == 2
        assert closure.distance(2, 0) == 1

    def test_pair_count_includes_self_pairs(self):
        closure = transitive_closure(chain_graph(2))
        # 3 nodes: pairs (0,0)(0,1)(0,2)(1,1)(1,2)(2,2)
        assert closure.pair_count == 6

    def test_descendants_view(self):
        closure = transitive_closure(diamond_graph())
        assert closure.descendants(0) == {0: 0, 1: 1, 2: 1, 3: 2}
        assert closure.descendants(3) == {3: 0}

    def test_pairs_iterates_everything(self):
        closure = transitive_closure(chain_graph(1))
        assert set(closure.pairs()) == {(0, 0, 0), (0, 1, 1), (1, 1, 0)}

    def test_unknown_node_contains(self):
        closure = transitive_closure(chain_graph(1))
        assert 0 in closure
        assert 99 not in closure
        assert not closure.reachable(99, 0)
        assert closure.distance(99, 0) is None

    @given(graph_params)
    def test_matches_bfs_everywhere(self, params):
        seed, n = params
        g = random_digraph(seed, n)
        closure = transitive_closure(g)
        for node in g:
            assert closure.descendants(node) == bfs_distances(g, node)
