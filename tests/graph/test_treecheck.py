"""Tests for tree/forest detection — the PPO admissibility predicate."""

from hypothesis import given

from repro.graph.digraph import Digraph
from repro.graph.treecheck import forest_roots, is_forest, is_tree
from tests.conftest import chain_graph, cycle_graph, random_tree, tree_params


class TestIsForest:
    def test_empty_graph_is_forest(self):
        assert is_forest(Digraph())

    def test_single_node(self):
        g = Digraph()
        g.add_node(0)
        assert is_forest(g)
        assert is_tree(g)

    def test_chain_is_tree(self):
        assert is_tree(chain_graph(5))

    def test_two_trees_are_forest_not_tree(self):
        g = Digraph([(0, 1), (2, 3)])
        assert is_forest(g)
        assert not is_tree(g)

    def test_diamond_rejected(self):
        g = Digraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert not is_forest(g)  # node 3 has two parents

    def test_cycle_rejected(self):
        assert not is_forest(cycle_graph(3))

    def test_self_loop_rejected(self):
        assert not is_forest(Digraph([(0, 0)]))

    def test_cycle_hanging_off_tree_rejected(self):
        g = Digraph([(0, 1), (1, 2), (2, 1)])
        assert not is_forest(g)  # node 1 has in-degree 2

    def test_rho_shape_rejected(self):
        # 0 -> 1 -> 2 -> 3 -> 1: cycle reachable from a root
        g = Digraph([(0, 1), (1, 2), (2, 3), (3, 1)])
        assert not is_forest(g)

    def test_disconnected_cycle_rejected(self):
        g = Digraph([(0, 1)])
        g.add_edge(2, 3)
        g.add_edge(3, 2)
        assert not is_forest(g)

    @given(tree_params)
    def test_random_trees_accepted(self, params):
        seed, n = params
        assert is_tree(random_tree(seed, n))

    @given(tree_params)
    def test_tree_plus_cross_edge_rejected(self, params):
        seed, n = params
        if n < 3:
            return
        g = random_tree(seed, n)
        # Adding an edge into any non-root node breaks unique parenthood.
        g.add_edge(n - 1, 1) if not g.has_edge(n - 1, 1) else None
        if g.edge_count == n:  # the edge was actually new
            assert not is_forest(g)


class TestForestRoots:
    def test_roots_of_forest(self):
        g = Digraph([(0, 1), (2, 3)])
        assert forest_roots(g) == [0, 2]

    def test_cycle_has_no_roots(self):
        assert forest_roots(cycle_graph(3)) == []

    def test_single_tree_root(self):
        assert forest_roots(chain_graph(3)) == [0]
