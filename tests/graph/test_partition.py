"""Unit and property tests for size-bounded graph partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.digraph import Digraph
from repro.graph.partition import partition_graph
from tests.conftest import chain_graph, random_digraph, random_tree


class TestPartitionBasics:
    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            partition_graph(Digraph(), 0)

    def test_empty_graph(self):
        partitioning = partition_graph(Digraph(), 5)
        assert partitioning.blocks == []
        assert partitioning.cut_size == 0

    def test_single_block_when_graph_fits(self):
        g = chain_graph(5)
        partitioning = partition_graph(g, 100)
        assert len(partitioning.blocks) == 1
        assert partitioning.cut_size == 0

    def test_size_one_blocks(self):
        g = chain_graph(3)
        partitioning = partition_graph(g, 1)
        assert all(len(b) == 1 for b in partitioning.blocks)
        assert partitioning.cut_size == 3  # every edge is cut

    def test_cut_edges_are_real_edges(self):
        g = random_digraph(1, 30)
        partitioning = partition_graph(g, 7)
        for u, v in partitioning.cut_edges:
            assert g.has_edge(u, v)
            assert partitioning.block_of[u] != partitioning.block_of[v]

    def test_validate_detects_overlap(self):
        g = chain_graph(2)
        partitioning = partition_graph(g, 2)
        partitioning.blocks.append({0})  # corrupt: node 0 twice
        with pytest.raises(ValueError):
            partitioning.validate(g)

    def test_disconnected_components_stay_separate_blocks(self):
        g = Digraph([(0, 1), (2, 3)])
        partitioning = partition_graph(g, 10)
        partitioning.validate(g)
        assert partitioning.block_of[0] == partitioning.block_of[1]
        assert partitioning.block_of[2] == partitioning.block_of[3]


class TestPartitionProperties:
    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=15),
    )
    def test_disjoint_cover_and_size_bound(self, seed, nodes, max_size):
        g = random_digraph(seed, nodes)
        partitioning = partition_graph(g, max_size)
        partitioning.validate(g)
        for block in partitioning.blocks:
            assert 1 <= len(block) <= max_size

    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=2, max_value=40),
    )
    def test_cut_edges_exactly_the_crossing_ones(self, seed, nodes):
        g = random_tree(seed, nodes)
        partitioning = partition_graph(g, max(2, nodes // 3))
        expected = {
            (u, v)
            for u, v in g.edges()
            if partitioning.block_of[u] != partitioning.block_of[v]
        }
        assert set(partitioning.cut_edges) == expected

    def test_refinement_never_worsens_cut(self):
        for seed in range(10):
            g = random_digraph(seed, 40, edge_factor=2.0)
            rough = partition_graph(g, 8, refine=False)
            refined = partition_graph(g, 8, refine=True)
            assert refined.cut_size <= rough.cut_size + 2  # merge may shift slightly

    def test_tree_partition_cuts_few_edges(self):
        """On a 60-node tree with blocks of 20, at most ~n/20 edges cut * slack."""
        g = random_tree(9, 60)
        partitioning = partition_graph(g, 20)
        # A tree of 60 nodes has 59 edges; a sane partitioner cuts far fewer
        # than half of them.
        assert partitioning.cut_size < 20
