"""Unit tests for the directed-graph substrate."""

import pytest

from repro.graph.digraph import Digraph


class TestConstruction:
    def test_empty_graph(self):
        g = Digraph()
        assert g.node_count == 0
        assert g.edge_count == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_add_node_idempotent(self):
        g = Digraph()
        g.add_node("a")
        g.add_node("a")
        assert g.node_count == 1

    def test_add_edge_creates_endpoints(self):
        g = Digraph()
        g.add_edge(1, 2)
        assert 1 in g
        assert 2 in g
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_add_edge_idempotent(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        assert g.edge_count == 1

    def test_constructor_from_edges(self):
        g = Digraph([(1, 2), (2, 3)])
        assert g.node_count == 3
        assert g.edge_count == 2

    def test_self_loop_allowed(self):
        g = Digraph([(1, 1)])
        assert g.has_edge(1, 1)
        assert g.in_degree(1) == 1
        assert g.out_degree(1) == 1


class TestRemoval:
    def test_remove_edge(self):
        g = Digraph([(1, 2), (1, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_edge(1, 3)
        assert g.edge_count == 1
        assert 2 in g  # node survives edge removal

    def test_remove_missing_edge_raises(self):
        g = Digraph([(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(2, 1)

    def test_remove_node_removes_incident_edges(self):
        g = Digraph([(1, 2), (2, 3), (3, 1)])
        g.remove_node(2)
        assert 2 not in g
        assert g.edge_count == 1
        assert g.has_edge(3, 1)

    def test_remove_missing_node_raises(self):
        g = Digraph()
        with pytest.raises(KeyError):
            g.remove_node(99)


class TestAdjacency:
    def test_successors_and_predecessors(self):
        g = Digraph([(1, 2), (1, 3), (4, 1)])
        assert g.successors(1) == {2, 3}
        assert g.predecessors(1) == {4}
        assert g.out_degree(1) == 2
        assert g.in_degree(1) == 1

    def test_degrees_of_isolated_node(self):
        g = Digraph()
        g.add_node("x")
        assert g.in_degree("x") == 0
        assert g.out_degree("x") == 0

    def test_edges_iteration_complete(self):
        edges = {(1, 2), (2, 3), (1, 3)}
        g = Digraph(edges)
        assert set(g.edges()) == edges

    def test_len_and_iter(self):
        g = Digraph([(1, 2)])
        assert len(g) == 2
        assert set(iter(g)) == {1, 2}


class TestDerivedGraphs:
    def test_subgraph_keeps_only_internal_edges(self):
        g = Digraph([(1, 2), (2, 3), (3, 4)])
        sub = g.subgraph({1, 2, 4})
        assert sub.node_count == 3
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)
        assert sub.edge_count == 1

    def test_subgraph_of_disjoint_nodes_is_edgeless(self):
        g = Digraph([(1, 2)])
        sub = g.subgraph({1})
        assert sub.node_count == 1
        assert sub.edge_count == 0

    def test_reversed_flips_every_edge(self):
        g = Digraph([(1, 2), (2, 3)])
        rev = g.reversed()
        assert rev.has_edge(2, 1)
        assert rev.has_edge(3, 2)
        assert rev.edge_count == g.edge_count
        assert rev.node_count == g.node_count

    def test_copy_is_independent(self):
        g = Digraph([(1, 2)])
        dup = g.copy()
        dup.add_edge(2, 3)
        assert not g.has_edge(2, 3)
        assert g.node_count == 2
