"""Serializer tests, including the property-based round trip."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel.dom import XmlElement
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import escape_attribute, escape_text, serialize
from tests.conftest import xml_names, xml_text


def trees_equal(a: XmlElement, b: XmlElement) -> bool:
    if a.name != b.name or a.attributes != b.attributes:
        return False
    if a.texts != b.texts or len(a.children) != len(b.children):
        return False
    return all(trees_equal(x, y) for x, y in zip(a.children, b.children))


class TestSerializeBasics:
    def test_empty_element_self_closes(self):
        assert serialize(XmlElement("a")) == "<a/>"

    def test_attributes_serialized_in_order(self):
        e = XmlElement("a", {"x": "1", "y": "2"})
        assert serialize(e) == '<a x="1" y="2"/>'

    def test_text_escaped(self):
        e = XmlElement("a")
        e.append_text("<&>")
        assert serialize(e) == "<a>&lt;&amp;&gt;</a>"

    def test_attribute_escaped(self):
        e = XmlElement("a", {"x": '<"&>'})
        assert serialize(e) == '<a x="&lt;&quot;&amp;&gt;"/>'

    def test_declaration_flag(self):
        assert serialize(XmlElement("a"), declaration=True).startswith("<?xml")

    def test_mixed_content_order_preserved(self):
        root = XmlElement("r")
        root.append_text("a")
        root.make_child("x", text="y")
        root.append_text("b")
        assert serialize(root) == "<r>a<x>y</x>b</r>"

    def test_escape_helpers(self):
        assert escape_text("a&b") == "a&amp;b"
        assert escape_attribute('a"b') == "a&quot;b"


def random_element(rng: random.Random, names, texts, depth: int = 0) -> XmlElement:
    element = XmlElement(rng.choice(names))
    for _ in range(rng.randrange(3)):
        element.attributes[rng.choice(names)] = rng.choice(texts)
    element.append_text(rng.choice(texts))
    if depth < 3:
        for _ in range(rng.randrange(3)):
            element.append_child(random_element(rng, names, texts, depth + 1))
            element.append_text(rng.choice(texts))
    return element


class TestRoundTrip:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.lists(xml_names, min_size=1, max_size=4, unique=True),
        st.lists(xml_text, min_size=1, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_parse_serialize_parse_fixpoint(self, seed, names, texts):
        rng = random.Random(seed)
        original = random_element(rng, names, texts)
        text = serialize(original)
        reparsed = parse_document(text)
        assert trees_equal(original, reparsed), text
        # serialize is deterministic: a second round trip is a fixpoint
        assert serialize(reparsed) == text

    def test_dblp_like_record(self):
        text = (
            '<article key="journals/tods/x"><author>A B</author>'
            "<title>Indexing &amp; Querying</title><year>1999</year>"
            '<cite xlink:href="other.xml"/></article>'
        )
        assert serialize(parse_document(text)) == text
