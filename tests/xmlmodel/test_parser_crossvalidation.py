"""Cross-validation of the hand-written parser against xml.etree.

For any document our serializer emits, stdlib ElementTree and our parser
must agree on names, attributes, text, and structure.  This catches whole
classes of parser bugs that self-round-trip tests cannot (a bug shared by
our parser and serializer would cancel out).
"""

import random
import xml.etree.ElementTree as stdlib_etree

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel.dom import XmlElement
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import serialize
from tests.conftest import xml_names

# stdlib-safe text: ElementTree rejects control chars; stick to printable
safe_text = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x2FF),
    max_size=30,
)

# names without ':' (ElementTree treats colons as namespaces)
plain_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.-]{0,8}", fullmatch=True).filter(
    lambda s: not s.lower().startswith("xml")
)


def random_element(rng, names, texts, depth=0):
    element = XmlElement(rng.choice(names))
    for _ in range(rng.randrange(3)):
        element.attributes[rng.choice(names)] = rng.choice(texts)
    element.append_text(rng.choice(texts))
    if depth < 3:
        for _ in range(rng.randrange(3)):
            element.append_child(random_element(rng, names, texts, depth + 1))
            element.append_text(rng.choice(texts))
    return element


def agree(ours: XmlElement, theirs: stdlib_etree.Element) -> bool:
    if ours.name != theirs.tag:
        return False
    if ours.attributes != dict(theirs.attrib):
        return False
    if ours.texts[0] != (theirs.text or ""):
        return False
    if len(ours.children) != len(theirs):
        return False
    for i, (our_child, their_child) in enumerate(zip(ours.children, theirs)):
        if not agree(our_child, their_child):
            return False
        if ours.texts[i + 1] != (their_child.tail or ""):
            return False
    return True


class TestAgainstElementTree:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(plain_names, min_size=1, max_size=4, unique=True),
        st.lists(safe_text, min_size=1, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_both_parsers_agree_on_serialized_documents(self, seed, names, texts):
        rng = random.Random(seed)
        original = random_element(rng, names, texts)
        text = serialize(original)
        ours = parse_document(text)
        theirs = stdlib_etree.fromstring(text)
        assert agree(ours, theirs), text

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(plain_names, min_size=1, max_size=3, unique=True),
        st.lists(safe_text, min_size=1, max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_stdlib_reparses_our_serialization_of_stdlib_output(
        self, seed, names, texts
    ):
        """serialize(parse(x)) stays stdlib-parseable and equivalent."""
        rng = random.Random(seed)
        text = serialize(random_element(rng, names, texts))
        once = parse_document(text)
        again = stdlib_etree.fromstring(serialize(once))
        assert agree(once, again)

    def test_entity_handling_matches_stdlib(self):
        text = "<a x=\"1 &amp; 2\">&lt;tag&gt; &#65;</a>"
        ours = parse_document(text)
        theirs = stdlib_etree.fromstring(text)
        assert ours.text == theirs.text
        assert ours.get("x") == theirs.get("x")

    def test_cdata_matches_stdlib(self):
        text = "<a><![CDATA[x < y & z]]></a>"
        assert parse_document(text).text == stdlib_etree.fromstring(text).text
