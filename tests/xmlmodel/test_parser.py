"""Unit tests for the hand-written XML parser."""

import pytest

from repro.xmlmodel.parser import XmlParseError, parse_document, parse_fragment


class TestBasicParsing:
    def test_minimal_document(self):
        root = parse_document("<a/>")
        assert root.name == "a"
        assert root.children == []
        assert root.text == ""

    def test_nested_elements(self):
        root = parse_document("<a><b><c/></b><d/></a>")
        assert [c.name for c in root.children] == ["b", "d"]
        assert root.children[0].children[0].name == "c"

    def test_attributes_double_and_single_quotes(self):
        root = parse_document("""<a x="1" y='2'/>""")
        assert root.attributes == {"x": "1", "y": "2"}

    def test_text_content(self):
        root = parse_document("<a>hello <b>world</b>!</a>")
        assert root.texts == ["hello ", "!"]
        assert root.find("b").text == "world"
        assert root.full_text == "hello world!"

    def test_whitespace_in_tags(self):
        root = parse_document('<a  x="1"  ></a >')
        assert root.get("x") == "1"

    def test_xml_declaration_and_doctype_skipped(self):
        text = (
            '<?xml version="1.0"?>\n'
            "<!DOCTYPE doc [ <!ELEMENT doc (#PCDATA)> ]>\n"
            "<doc>x</doc>"
        )
        assert parse_document(text).text == "x"

    def test_comments_skipped(self):
        root = parse_document("<a><!-- comment -->text<!-- more --></a>")
        assert root.text == "text"

    def test_processing_instruction_skipped(self):
        root = parse_document("<a><?target data?>x</a>")
        assert root.text == "x"

    def test_cdata_verbatim(self):
        root = parse_document("<a><![CDATA[<not> &parsed;]]></a>")
        assert root.text == "<not> &parsed;"

    def test_deeply_nested_no_recursion_error(self):
        depth = 3000
        text = "".join(f"<e{i}>" for i in range(depth))
        text += "".join(f"</e{i}>" for i in reversed(range(depth)))
        root = parse_document(text)
        assert root.name == "e0"


class TestEntities:
    def test_predefined_entities(self):
        root = parse_document("<a>&amp;&lt;&gt;&quot;&apos;</a>")
        assert root.text == "&<>\"'"

    def test_numeric_references(self):
        root = parse_document("<a>&#65;&#x42;</a>")
        assert root.text == "AB"

    def test_entities_in_attributes(self):
        root = parse_document('<a x="&lt;&amp;&gt;"/>')
        assert root.get("x") == "<&>"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<a>&nosuch;</a>")

    def test_bad_numeric_reference_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<a>&#xZZ;</a>")


class TestWellFormedness:
    @pytest.mark.parametrize(
        "text",
        [
            "<a>",  # unterminated
            "<a></b>",  # mismatched end tag
            "<a><b></a></b>",  # crossed nesting
            "<a/><b/>",  # two roots
            "<a x=1/>",  # unquoted attribute
            '<a x="1" x="2"/>',  # duplicate attribute
            "text<a/>",  # content before root
            "<a/>trailing",  # content after root
            "<a><!-- -- --></a>",  # double hyphen in comment
            "<1tag/>",  # invalid name start
            '<a x="<"/>',  # < in attribute
            "",  # empty input
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(XmlParseError):
            parse_document(text)

    def test_error_carries_position(self):
        try:
            parse_document("<a>\n<b></c></a>")
        except XmlParseError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected XmlParseError")


class TestFragments:
    def test_multiple_roots(self):
        roots = parse_fragment("<a/><b>x</b><c/>")
        assert [r.name for r in roots] == ["a", "b", "c"]

    def test_empty_fragment(self):
        assert parse_fragment("   ") == []

    def test_fragment_with_comments_between(self):
        roots = parse_fragment("<a/><!-- sep --><b/>")
        assert [r.name for r in roots] == ["a", "b"]
