"""Unit tests for link extraction."""

from repro.xmlmodel.links import LinkKind, collect_anchors, extract_links
from repro.xmlmodel.parser import parse_document


class TestAnchors:
    def test_collects_all_ids(self):
        root = parse_document('<a id="r"><b id="x"/><c id="y"/></a>')
        anchors = collect_anchors(root)
        assert set(anchors) == {"r", "x", "y"}
        assert anchors["x"].name == "b"

    def test_first_duplicate_wins(self):
        root = parse_document('<a><b id="x">first</b><c id="x">second</c></a>')
        assert collect_anchors(root)["x"].name == "b"

    def test_empty_id_ignored(self):
        root = parse_document('<a id=""/>')
        assert collect_anchors(root) == {}


class TestIdrefLinks:
    def test_single_idref(self):
        root = parse_document('<a><b idref="x"/></a>')
        (link,) = extract_links(root)
        assert link.kind is LinkKind.IDREF
        assert link.is_intra_document
        assert link.target_fragment == "x"
        assert link.source.name == "b"

    def test_idrefs_splits_on_whitespace(self):
        root = parse_document('<a><b idrefs="x y  z"/></a>')
        fragments = [l.target_fragment for l in extract_links(root)]
        assert fragments == ["x", "y", "z"]


class TestXlinkLinks:
    def test_document_link(self):
        root = parse_document('<a><b xlink:href="other.xml"/></a>')
        (link,) = extract_links(root)
        assert link.kind is LinkKind.XLINK
        assert link.target_document == "other.xml"
        assert link.target_fragment is None
        assert not link.is_intra_document

    def test_document_fragment_link(self):
        root = parse_document('<a><b xlink:href="other.xml#sec2"/></a>')
        (link,) = extract_links(root)
        assert link.target_document == "other.xml"
        assert link.target_fragment == "sec2"

    def test_same_document_fragment(self):
        root = parse_document('<a><b xlink:href="#sec2"/></a>')
        (link,) = extract_links(root)
        assert link.is_intra_document
        assert link.target_fragment == "sec2"

    def test_plain_href_treated_as_xlink(self):
        root = parse_document('<a><b href="doc.xml"/></a>')
        (link,) = extract_links(root)
        assert link.target_document == "doc.xml"

    def test_external_urls_skipped(self):
        root = parse_document(
            '<a><b href="http://x.example/p"/><c href="mailto:x@y"/></a>'
        )
        assert extract_links(root) == []

    def test_empty_href_skipped(self):
        root = parse_document('<a><b xlink:href=""/></a>')
        assert extract_links(root) == []

    def test_xlink_preferred_over_plain_href(self):
        root = parse_document('<a><b xlink:href="x.xml" href="y.xml"/></a>')
        (link,) = extract_links(root)
        assert link.target_document == "x.xml"


class TestMixed:
    def test_document_order(self):
        root = parse_document(
            '<a><b idref="i1"/><c><d xlink:href="z.xml"/></c><e idref="i2"/></a>'
        )
        kinds = [l.kind for l in extract_links(root)]
        assert kinds == [LinkKind.IDREF, LinkKind.XLINK, LinkKind.IDREF]

    def test_element_with_both_idref_and_href(self):
        root = parse_document('<a><b idref="x" xlink:href="d.xml"/></a>')
        links = extract_links(root)
        assert len(links) == 2
        assert {l.kind for l in links} == {LinkKind.IDREF, LinkKind.XLINK}
