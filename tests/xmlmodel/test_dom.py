"""Unit tests for the minimal DOM."""

import pytest

from repro.xmlmodel.dom import XmlElement


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            XmlElement("")

    def test_attributes_copied(self):
        attrs = {"a": "1"}
        element = XmlElement("x", attrs)
        attrs["a"] = "2"
        assert element.get("a") == "1"

    def test_append_child_sets_parent(self):
        parent = XmlElement("p")
        child = XmlElement("c")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_reparenting_rejected(self):
        a, b, c = XmlElement("a"), XmlElement("b"), XmlElement("c")
        a.append_child(c)
        with pytest.raises(ValueError):
            b.append_child(c)

    def test_make_child_with_text(self):
        root = XmlElement("r")
        child = root.make_child("t", {"k": "v"}, text="hello")
        assert child.name == "t"
        assert child.get("k") == "v"
        assert child.text == "hello"


class TestText:
    def test_text_interleaving(self):
        root = XmlElement("r")
        root.append_text("a")
        root.make_child("x")
        root.append_text("b")
        root.make_child("y")
        root.append_text("c")
        assert root.texts == ["a", "b", "c"]
        assert root.text == "abc"

    def test_full_text_includes_descendants(self):
        root = XmlElement("r")
        root.append_text("1")
        child = root.make_child("c", text="2")
        child.make_child("g", text="3")
        root.append_text("4")
        assert root.full_text == "1234"

    def test_consecutive_append_text_merges(self):
        root = XmlElement("r")
        root.append_text("a")
        root.append_text("b")
        assert root.texts == ["ab"]


class TestNavigation:
    @pytest.fixture()
    def tree(self):
        root = XmlElement("root")
        a = root.make_child("a")
        a.make_child("leaf", text="one")
        a.make_child("leaf", text="two")
        root.make_child("b")
        return root

    def test_iter_is_preorder(self, tree):
        names = [e.name for e in tree.iter()]
        assert names == ["root", "a", "leaf", "leaf", "b"]

    def test_find_first_match(self, tree):
        a = tree.find("a")
        assert a is not None
        assert a.find("leaf").text == "one"

    def test_find_missing_returns_none(self, tree):
        assert tree.find("nope") is None

    def test_find_all(self, tree):
        leaves = tree.find("a").find_all("leaf")
        assert [l.text for l in leaves] == ["one", "two"]

    def test_ancestors_and_depth(self, tree):
        leaf = tree.find("a").find("leaf")
        assert [e.name for e in leaf.ancestors()] == ["a", "root"]
        assert leaf.depth == 2
        assert tree.depth == 0

    def test_root_property(self, tree):
        leaf = tree.find("a").find("leaf")
        assert leaf.root is tree
        assert tree.root is tree

    def test_subtree_size(self, tree):
        assert tree.subtree_size() == 5
        assert tree.find("b").subtree_size() == 1

    def test_get_with_default(self):
        element = XmlElement("x", {"id": "e1"})
        assert element.get("id") == "e1"
        assert element.get("missing") is None
        assert element.get("missing", "d") == "d"
