"""Tests for the declarative fault plans (repro.faults.plan)."""

import pytest

from repro.faults import FaultPlan, plan_from_env


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(write_error_rate=-0.1)

    def test_counters_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_first=-1)
        with pytest.raises(ValueError):
            FaultPlan(break_after=-2)
        with pytest.raises(ValueError):
            FaultPlan(latency_seconds=-0.5)

    def test_noop_detection(self):
        assert FaultPlan().is_noop
        assert not FaultPlan(read_error_rate=0.1).is_noop
        assert not FaultPlan(fail_first=1).is_noop
        assert not FaultPlan(break_after=0).is_noop

    def test_table_restriction(self):
        plan = FaultPlan(read_error_rate=1.0).restricted_to("edges")
        assert plan.applies_to("edges")
        assert not plan.applies_to("other")
        assert FaultPlan().applies_to("anything")


class TestSpecStrings:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=7,
            read_error_rate=0.2,
            fail_first=3,
            break_after=100,
            tables=("a", "b"),
        )
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_unknown_key_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown fault-plan key"):
            FaultPlan.from_spec("read_eror_rate=0.2")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_spec("read_error_rate")


class TestPlanFromEnv:
    def test_absent_and_off_mean_none(self):
        assert plan_from_env({}) is None
        assert plan_from_env({"FAULT_PLAN": ""}) is None
        assert plan_from_env({"FAULT_PLAN": "off"}) is None

    def test_moderate_scenario_by_name(self):
        plan = plan_from_env({"FAULT_PLAN": "moderate"})
        assert plan == FaultPlan.moderate()
        assert plan.read_error_rate == pytest.approx(0.2)

    def test_spec_string(self):
        plan = plan_from_env({"FLIX_FAULT_PLAN": "read_error_rate=0.5,seed=9"})
        assert plan.read_error_rate == pytest.approx(0.5)
        assert plan.seed == 9

    def test_flix_variable_wins(self):
        plan = plan_from_env(
            {"FLIX_FAULT_PLAN": "seed=1,fail_first=1", "FAULT_PLAN": "moderate"}
        )
        assert plan.fail_first == 1
