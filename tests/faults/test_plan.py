"""Tests for the declarative fault plans (repro.faults.plan)."""

import pytest

from repro.faults import FaultPlan, plan_from_env


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(write_error_rate=-0.1)

    def test_counters_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_first=-1)
        with pytest.raises(ValueError):
            FaultPlan(break_after=-2)
        with pytest.raises(ValueError):
            FaultPlan(latency_seconds=-0.5)

    def test_noop_detection(self):
        assert FaultPlan().is_noop
        assert not FaultPlan(read_error_rate=0.1).is_noop
        assert not FaultPlan(fail_first=1).is_noop
        assert not FaultPlan(break_after=0).is_noop

    def test_table_restriction(self):
        plan = FaultPlan(read_error_rate=1.0).restricted_to("edges")
        assert plan.applies_to("edges")
        assert not plan.applies_to("other")
        assert FaultPlan().applies_to("anything")


class TestSpecStrings:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=7,
            read_error_rate=0.2,
            fail_first=3,
            break_after=100,
            tables=("a", "b"),
        )
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_unknown_key_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown fault-plan key"):
            FaultPlan.from_spec("read_eror_rate=0.2")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_spec("read_error_rate")


class TestPlanFromEnv:
    def test_absent_and_off_mean_none(self):
        assert plan_from_env({}) is None
        assert plan_from_env({"FAULT_PLAN": ""}) is None
        assert plan_from_env({"FAULT_PLAN": "off"}) is None

    def test_moderate_scenario_by_name(self):
        plan = plan_from_env({"FAULT_PLAN": "moderate"})
        assert plan == FaultPlan.moderate()
        assert plan.read_error_rate == pytest.approx(0.2)

    def test_spec_string(self):
        plan = plan_from_env({"FLIX_FAULT_PLAN": "read_error_rate=0.5,seed=9"})
        assert plan.read_error_rate == pytest.approx(0.5)
        assert plan.seed == 9

    def test_flix_variable_wins(self):
        plan = plan_from_env(
            {"FLIX_FAULT_PLAN": "seed=1,fail_first=1", "FAULT_PLAN": "moderate"}
        )
        assert plan.fail_first == 1


class TestCrashFaults:
    """The crash-fault fields (crash_after_writes / torn_write_bytes)."""

    def test_crash_fields_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_after_writes=-1)
        with pytest.raises(ValueError):
            FaultPlan(torn_write_bytes=-3)

    def test_crash_only_plan_is_storage_noop(self):
        plan = FaultPlan(crash_after_writes=2, torn_write_bytes=4)
        assert plan.storage_is_noop  # must not wrap storage backends
        assert not plan.is_noop  # but it is not a no-op overall

    def test_storage_plan_is_not_storage_noop(self):
        assert not FaultPlan(read_error_rate=0.1).storage_is_noop
        assert FaultPlan().storage_is_noop and FaultPlan().is_noop

    def test_spec_round_trips_crash_fields(self):
        plan = FaultPlan.from_spec("crash_after_writes=3,torn_write_bytes=9")
        assert plan.crash_after_writes == 3
        assert plan.torn_write_bytes == 9
        again = FaultPlan.from_spec(plan.to_spec())
        assert again == plan

    def test_spec_none_clears_crash_fields(self):
        plan = FaultPlan.from_spec("crash_after_writes=none")
        assert plan.crash_after_writes is None

    def test_env_plan_with_crash_fields(self):
        plan = plan_from_env({"FAULT_PLAN": "crash_after_writes=1"})
        assert plan is not None and plan.crash_after_writes == 1
