"""Tests for fault injection at the storage and index layers."""

import pytest

from repro.faults import FaultPlan, FaultyBackend, FaultyFactory, FaultyIndex
from repro.storage.errors import (
    PermanentStorageError,
    TransientStorageError,
)
from repro.storage.memory import MemoryBackend
from repro.storage.table import Column, TableSchema

SCHEMA = TableSchema(name="t", columns=(Column("a", "int"), Column("b", "str")))


def make_table(plan: FaultPlan):
    backend = FaultyBackend(MemoryBackend(), plan)
    return backend, backend.create_table(SCHEMA)


class TestDeterminism:
    def fault_signature(self, plan, operations=200):
        backend, table = make_table(plan)
        table_ok = []
        for i in range(operations):
            try:
                table.insert((i, "x"))
                table_ok.append(("w", i, True))
            except TransientStorageError:
                table_ok.append(("w", i, False))
            try:
                list(table.scan())
                table_ok.append(("r", i, True))
            except TransientStorageError:
                table_ok.append(("r", i, False))
        return table_ok

    def test_same_seed_same_faults(self):
        plan = FaultPlan(seed=3, read_error_rate=0.3, write_error_rate=0.3)
        assert self.fault_signature(plan) == self.fault_signature(plan)

    def test_different_seed_different_faults(self):
        a = FaultPlan(seed=1, read_error_rate=0.3, write_error_rate=0.3)
        b = FaultPlan(seed=2, read_error_rate=0.3, write_error_rate=0.3)
        assert self.fault_signature(a) != self.fault_signature(b)

    def test_sites_are_independent(self):
        plan = FaultPlan(seed=0, read_error_rate=0.5)
        backend = FaultyBackend(MemoryBackend(), plan)
        t1 = backend.create_table(SCHEMA)
        other = TableSchema(name="u", columns=(Column("a", "int"),))
        t2 = backend.create_table(other)
        # drawing faults on one site must not consume the other's sequence
        for _ in range(20):
            try:
                list(t1.scan())
            except TransientStorageError:
                pass
        solo_backend = FaultyBackend(MemoryBackend(), plan)
        solo = solo_backend.create_table(other)

        def outcomes(table):
            out = []
            for _ in range(20):
                try:
                    list(table.scan())
                    out.append(True)
                except TransientStorageError:
                    out.append(False)
            return out

        assert outcomes(t2) == outcomes(solo)


class TestFaultShapes:
    def test_fail_first_then_succeed(self):
        _, table = make_table(FaultPlan(fail_first=3))
        for _ in range(3):
            with pytest.raises(TransientStorageError):
                table.insert((1, "x"))
        table.insert((1, "x"))  # fourth operation succeeds
        assert table.row_count() == 1

    def test_break_after_fails_permanently(self):
        _, table = make_table(FaultPlan(break_after=2))
        table.insert((1, "x"))
        table.insert((2, "y"))
        for _ in range(3):
            with pytest.raises(PermanentStorageError):
                list(table.scan())

    def test_hard_failure_plan(self):
        _, table = make_table(FaultPlan.hard_failure())
        with pytest.raises(TransientStorageError):
            table.insert((1, "x"))
        with pytest.raises(TransientStorageError):
            list(table.scan())

    def test_corruption_flips_rows(self):
        _, table = make_table(FaultPlan(seed=1, corrupt_rate=1.0))
        table.insert((5, "hello"))
        rows = list(table.scan())
        assert rows != [(5, "hello")]  # deterministically corrupted

    def test_latency_spikes_call_sleep(self):
        plan = FaultPlan(read_latency_rate=1.0, latency_seconds=0.25)
        backend = FaultyBackend(MemoryBackend(), plan)
        slept = []
        site = backend.site("t")
        site.before_read(sleep=slept.append)
        assert slept == [0.25]

    def test_injection_counter(self):
        backend, table = make_table(FaultPlan(fail_first=2))
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                table.insert((1, "x"))
        table.insert((1, "x"))
        assert backend.injected_total() == 2

    def test_table_restriction_spares_other_tables(self):
        plan = FaultPlan.hard_failure().restricted_to("other")
        _, table = make_table(plan)
        table.insert((1, "x"))  # "t" is not in the plan's table list
        assert table.row_count() == 1

    def test_batch_insert_fails_before_any_write(self):
        _, table = make_table(FaultPlan(fail_first=1))
        with pytest.raises(TransientStorageError):
            table.insert_many([(1, "a"), (2, "b")])
        assert table.row_count() == 0  # nothing half-applied
        table.insert_many([(1, "a"), (2, "b")])
        assert table.row_count() == 2


class TestFaultyFactory:
    def test_products_are_faulty_and_independent(self):
        factory = FaultyFactory(MemoryBackend, FaultPlan(fail_first=1))
        b1, b2 = factory(), factory()
        t1 = b1.create_table(SCHEMA)
        t2 = b2.create_table(SCHEMA)
        with pytest.raises(TransientStorageError):
            t1.insert((1, "x"))
        with pytest.raises(TransientStorageError):  # own counter, fails too
            t2.insert((1, "x"))
        t1.insert((1, "x"))
        t2.insert((1, "x"))

    def test_factory_is_picklable(self):
        import pickle

        factory = FaultyFactory(MemoryBackend, FaultPlan(seed=5, fail_first=1))
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.plan == factory.plan


class TestFaultyIndex:
    def test_probes_fail_per_plan(self):
        from repro.graph.digraph import Digraph
        from repro.indexes.transitive import TransitiveClosureIndex

        graph = Digraph([(0, 1), (1, 2)])
        index = TransitiveClosureIndex.build(
            graph, {0: "a", 1: "b", 2: "c"}, MemoryBackend()
        )
        faulty = FaultyIndex(index, FaultPlan(fail_first=1))
        with pytest.raises(TransientStorageError):
            faulty.reachable(0, 2)
        assert faulty.reachable(0, 2) is True
        assert faulty.strategy_name == "transitive_closure"
        assert faulty.contains(1)
