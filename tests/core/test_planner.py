"""Cost-based probe planner (``repro.core.planner``, ``docs/PLANNING.md``).

The headline invariant: for every query kind, the planner-driven loop
returns *byte-identical* responses to the paper's fixed probe discipline
— same results in the same order, same value, completeness stays
``complete`` — while pruning provably covered work.  The opt-in
``order="cost"`` mode relaxes only the stream order (node-set identity).
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.api import QueryRequest
from repro.core.config import FlixConfig, PlannerConfig, apply_planner_env
from repro.core.framework import Flix
from repro.core.planner import (
    LayoutStatistics,
    ProbeFrontier,
    ProbePlanner,
    QueryPlan,
    collect_layout_statistics,
)
from repro.datasets.dblp import DblpSpec, generate_dblp


@pytest.fixture(scope="module")
def linked():
    """A citation-heavy DBLP collection under the naive configuration:
    one meta document per document, so queries cross many residual links
    and §5.1 coverage drops plenty of duplicate heap entries — exactly
    the work the planner's frontier must prune without changing a byte.
    """
    collection = generate_dblp(
        DblpSpec(documents=40, mean_citations=6.0, citation_skew=0.9, seed=11)
    )
    base = FlixConfig.naive()

    class Fixture:
        pass

    fx = Fixture()
    fx.collection = collection
    fx.off = Flix.build(collection, base)
    fx.on = Flix.build(collection, base.with_planner())
    fx.cost = Flix.build(
        collection, base.with_planner(PlannerConfig(order="cost"))
    )
    return fx


def _all_kind_requests(collection):
    roots = [
        collection.document_root(name)
        for name in sorted(collection.documents)
    ]
    author = sorted(collection.nodes_with_tag("author"))[0]
    title = sorted(collection.nodes_with_tag("title"))[0]
    return [
        ("descendants", QueryRequest.descendants(roots[0])),
        ("descendants_tag", QueryRequest.descendants(roots[1], tag="author")),
        ("ancestors", QueryRequest.ancestors(author)),
        ("children", QueryRequest.children(roots[2])),
        ("type_query", QueryRequest.type_query("article", tag="author")),
        ("path", QueryRequest.find_path(roots[3], ["article", "author"])),
        ("connections", QueryRequest.connections(roots[4], tag="title")),
        ("cost", QueryRequest.cost(roots[5], title)),
        ("test", QueryRequest.test(roots[0], title)),
        ("test_bidi", QueryRequest.test(roots[0], title, bidirectional=True)),
    ]


def _signature(response):
    """Byte-identity: results (order included), value, completeness."""
    return (
        [repr(row) for row in response.results],
        response.value,
        response.stats.completeness,
    )


def _node_set(response):
    nodes = []
    for row in response.results:
        nodes.append(row.node if hasattr(row, "node") else tuple(row)[0])
    return sorted(nodes)


class TestProbeFrontier:
    def test_pop_admitted_once(self):
        frontier = ProbeFrontier()
        assert frontier.admit_pop(7)
        assert not frontier.admit_pop(7)
        assert frontier.admit_pop(8)

    def test_push_to_popped_node_refused(self):
        frontier = ProbeFrontier()
        frontier.admit_pop(7)
        assert not frontier.admit_push(7, 0)

    def test_push_dedup_tracks_min_priority(self):
        frontier = ProbeFrontier()
        assert frontier.admit_push(3, priority=5)
        # same or worse priority: a provably dominated duplicate
        assert not frontier.admit_push(3, priority=5)
        assert not frontier.admit_push(3, priority=9)
        # strictly better priority MUST be admitted (correctness, not
        # just performance: the closer entry defines the node's distance)
        assert frontier.admit_push(3, priority=2)
        assert not frontier.admit_push(3, priority=2)


class TestPlannerConfig:
    def test_round_trip(self):
        config = PlannerConfig(prune=False, order="cost", rounds=4)
        assert PlannerConfig.from_dict(config.to_dict()) == config

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            PlannerConfig(order="mystery")

    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            PlannerConfig(rounds=0)

    def test_with_without_planner(self):
        base = FlixConfig.naive()
        assert base.planner is None
        on = base.with_planner()
        assert on.planner == PlannerConfig()
        assert on.without_planner().planner is None

    def test_env_override(self, monkeypatch):
        base = FlixConfig.naive()
        monkeypatch.delenv("FLIX_PLANNER", raising=False)
        assert apply_planner_env(base).planner is None
        monkeypatch.setenv("FLIX_PLANNER", "1")
        assert apply_planner_env(base).planner is not None
        assert apply_planner_env(base.with_planner()).planner is not None
        monkeypatch.setenv("FLIX_PLANNER", "0")
        assert apply_planner_env(base.with_planner()).planner is None
        assert apply_planner_env(base).planner is None

    def test_env_applies_to_build(self, monkeypatch, linked):
        monkeypatch.setenv("FLIX_PLANNER", "0")
        flix = Flix.build(linked.collection, FlixConfig.naive().with_planner())
        assert flix.config.planner is None


class TestStatistics:
    def test_collect_covers_live_metas(self, linked):
        stats = linked.on.planner_statistics()
        assert stats is not None
        live = {meta.meta_id for meta in linked.on.layout.slots if meta}
        assert set(stats.metas) == live
        assert stats.generation == linked.on.layout_generation

    def test_memoized_per_generation(self, linked):
        first = linked.on.planner_statistics()
        assert linked.on.planner_statistics() is first
        assert linked.on.planner_statistics(refresh=True) is not first

    def test_json_round_trip(self, linked):
        stats = linked.on.planner_statistics()
        loaded = LayoutStatistics.from_json(stats.to_json())
        assert loaded == stats

    def test_estimated_matches(self, linked):
        stats = linked.on.planner_statistics()
        meta = next(iter(stats.metas.values()))
        # the wildcard estimate counts every node; a tag estimate never
        # exceeds it; an unseen tag still gets a nonnegative floor
        assert meta.estimated_matches(None) == float(meta.nodes)
        for tag in meta.tag_counts:
            assert 0.0 <= meta.estimated_matches(tag) <= float(meta.nodes)
        assert meta.estimated_matches("no-such-tag") >= 0.0

    def test_available_with_planner_off(self, linked):
        # EXPLAIN on an unconfigured instance still needs the estimates
        stats = linked.off.planner_statistics()
        assert stats is not None and stats.metas


class TestParity:
    def test_all_kinds_byte_identical(self, linked):
        for name, request in _all_kind_requests(linked.collection):
            off = linked.off.query(request)
            on = linked.on.query(request)
            assert _signature(off) == _signature(on), name
            assert on.stats.completeness == "complete", name

    def test_cost_order_same_node_sets(self, linked):
        for name, request in _all_kind_requests(linked.collection):
            off = linked.off.query(request)
            cost = linked.cost.query(request)
            assert _node_set(off) == _node_set(cost), name
            assert cost.stats.completeness == "complete", name
            assert off.value == cost.value, name

    def test_exact_order_never_reordered(self, linked):
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        request = QueryRequest.descendants(start, exact_order=True)
        assert _signature(linked.off.query(request)) == _signature(
            linked.cost.query(request)
        )

    def test_pruning_fires_on_linked_layout(self, linked):
        author = sorted(linked.collection.nodes_with_tag("author"))[0]
        off = linked.off.query(QueryRequest.ancestors(author))
        on = linked.on.query(QueryRequest.ancestors(author))
        pruned = (
            on.stats.planner_pruned_pops + on.stats.planner_pruned_pushes
        )
        assert pruned > 0
        assert on.stats.queue_pops < off.stats.queue_pops
        assert off.stats.planner_pruned_pops == 0
        assert off.stats.planner_pruned_pushes == 0

    def test_index_fingerprints_identical(self, linked):
        # the planner is a query-time layer: the built indexes, and so
        # the fingerprint, must not depend on it
        assert linked.off.index_fingerprint() == linked.on.index_fingerprint()

    def test_limits_and_budgets_keep_parity(self, linked):
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        for request in (
            QueryRequest.descendants(start, limit=5),
            QueryRequest.descendants(start, max_distance=2),
        ):
            assert _signature(linked.off.query(request)) == _signature(
                linked.on.query(request)
            )


class TestExplain:
    def test_planned_mode(self, linked):
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        plan = linked.on.explain(QueryRequest.descendants(start, tag="author"))
        assert plan.mode == "planned"
        assert plan.kind == "descendants"
        assert plan.generation == linked.on.layout_generation
        assert plan.probes
        ranks = [probe.rank for probe in plan.probes]
        assert ranks == sorted(ranks)

    def test_fixed_mode_when_planner_off(self, linked):
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        plan = linked.off.explain(QueryRequest.descendants(start))
        assert plan.mode == "fixed"

    def test_direct_mode_for_graph_kinds(self, linked):
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        title = sorted(linked.collection.nodes_with_tag("title"))[0]
        for request in (
            QueryRequest.children(start),
            QueryRequest.connections(start),
            QueryRequest.cost(start, title),
        ):
            plan = linked.on.explain(request)
            assert plan.mode == "direct", request.kind

    def test_query_stamps_plan(self, linked):
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        request = QueryRequest.descendants(start).with_explain()
        assert request.explain
        response = linked.on.query(request)
        assert response.plan is not None
        assert response.plan.mode == "planned"
        # without the flag nothing is stamped
        plain = linked.on.query(QueryRequest.descendants(start))
        assert plain.plan is None

    def test_explain_bypasses_cache(self, linked):
        request = QueryRequest.descendants(
            linked.collection.document_root(
                sorted(linked.collection.documents)[0]
            )
        ).with_explain()
        assert request.cache_key() is None

    def test_plan_dict_round_trip(self, linked):
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        plan = linked.on.explain(QueryRequest.descendants(start))
        assert QueryPlan.from_dict(plan.to_dict()) == plan

    def test_pruned_metas_are_unreachable(self, linked):
        # every statically pruned meta is live but outside the residual-
        # link closure of the source metas: probing it could never happen
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        plan = linked.on.explain(QueryRequest.descendants(start))
        probed = {probe.meta_id for probe in plan.probes}
        assert not probed & set(plan.pruned_metas)

    def test_explain_traced(self, linked):
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        linked.on.explain(QueryRequest.descendants(start))
        assert linked.on.obs.tracer.last_trace("pee.plan") is not None


class TestSidecarPersistence:
    def test_sidecar_saved_and_loaded(self, linked, tmp_path):
        index_dir = tmp_path / "index"
        linked.on.save(index_dir)
        sidecar = index_dir / "planner_stats.json"
        assert sidecar.is_file()
        loaded = Flix.load(linked.collection, index_dir)
        assert loaded.config.planner is not None
        # the sidecar primed the memo: no recollection on first use
        assert loaded._planner_stats is not None
        assert loaded._planner_stats[0] == loaded.layout_generation
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        request = QueryRequest.descendants(start)
        assert _signature(loaded.query(request)) == _signature(
            linked.off.query(request)
        )

    def test_no_sidecar_without_planner(self, linked, tmp_path):
        index_dir = tmp_path / "index"
        linked.off.save(index_dir)
        assert not (index_dir / "planner_stats.json").is_file()

    def test_stale_sidecar_ignored(self, linked, tmp_path):
        index_dir = tmp_path / "index"
        linked.on.save(index_dir)
        sidecar = index_dir / "planner_stats.json"
        stats = LayoutStatistics.from_json(sidecar.read_text())
        import dataclasses

        stale = dataclasses.replace(stats, generation=stats.generation + 99)
        sidecar.write_text(stale.to_json())
        loaded = Flix.load(linked.collection, index_dir)
        assert loaded._planner_stats is None

    def test_corrupt_sidecar_is_advisory(self, linked, tmp_path):
        index_dir = tmp_path / "index"
        linked.on.save(index_dir)
        (index_dir / "planner_stats.json").write_text("{not json")
        loaded = Flix.load(linked.collection, index_dir)
        assert loaded.config.planner is not None
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        assert _signature(loaded.query(QueryRequest.descendants(start))) == (
            _signature(linked.off.query(QueryRequest.descendants(start)))
        )

    def test_manifest_round_trips_planner_config(self, linked, tmp_path):
        index_dir = tmp_path / "index"
        linked.cost.save(index_dir)
        loaded = Flix.load(linked.collection, index_dir)
        assert loaded.config.planner == PlannerConfig(order="cost")


class TestPlannerObject:
    def test_statistics_provider_failures_swallowed(self):
        def exploding():
            raise RuntimeError("no stats today")

        planner = ProbePlanner(PlannerConfig(), statistics=exploding)
        assert planner.statistics() is None
        assert planner.prunes

    def test_fifo_planner_does_not_reorder(self):
        planner = ProbePlanner(PlannerConfig())
        assert planner.prunes and not planner.reorders
        assert ProbePlanner(PlannerConfig(order="cost")).reorders

    def test_frontier_disabled_without_prune(self):
        planner = ProbePlanner(PlannerConfig(prune=False))
        assert planner.frontier() is None
        assert ProbePlanner(PlannerConfig()).frontier() is not None


class TestDeprecatedShims:
    def test_all_legacy_shims_warn(self, linked):
        flix = linked.off
        collection = linked.collection
        start = collection.document_root(sorted(collection.documents)[0])
        title = sorted(collection.nodes_with_tag("title"))[0]
        calls = [
            lambda: list(flix.find_descendants(start, tag="author")),
            lambda: list(flix.find_ancestors(title)),
            lambda: list(flix.find_children(start)),
            lambda: list(flix.evaluate_type_query("article", "author")),
            lambda: flix.find_path(start, ["article", "author"]),
            lambda: flix.find_connections(start, tag="title"),
            lambda: flix.connection_cost(start, title),
            lambda: flix.connection_test(start, title),
        ]
        for call in calls:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                call()
            assert any(
                issubclass(w.category, DeprecationWarning) for w in caught
            ), call

    def test_shim_results_match_query(self, linked):
        # deprecated does not mean broken: the shims stay thin wrappers
        flix = linked.off
        start = linked.collection.document_root(
            sorted(linked.collection.documents)[0]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = list(flix.find_descendants(start))
        modern = flix.query(QueryRequest.descendants(start)).results
        assert [repr(r) for r in legacy] == [repr(r) for r in modern]
