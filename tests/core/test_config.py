"""Unit tests for FliX configurations."""

import pytest

from repro.core.config import FlixConfig


class TestValidation:
    def test_unknown_mdb_strategy(self):
        with pytest.raises(ValueError):
            FlixConfig(name="x", mdb_strategy="nope", allowed_strategies=("ppo",))

    def test_bad_partition_size(self):
        with pytest.raises(ValueError):
            FlixConfig(
                name="x",
                mdb_strategy="naive",
                allowed_strategies=("ppo",),
                partition_size=0,
            )

    def test_empty_strategies(self):
        with pytest.raises(ValueError):
            FlixConfig(name="x", mdb_strategy="naive", allowed_strategies=())


class TestPredefined:
    def test_naive(self):
        config = FlixConfig.naive()
        assert config.mdb_strategy == "naive"
        assert "ppo" in config.allowed_strategies
        assert "hopi" in config.allowed_strategies

    def test_maximal_ppo_variants(self):
        partitioned = FlixConfig.maximal_ppo()
        single = FlixConfig.maximal_ppo(single_tree=True)
        assert partitioned.allowed_strategies == ("ppo",)
        assert not partitioned.single_tree
        assert single.single_tree
        assert single.name != partitioned.name

    def test_unconnected_hopi_sizes(self):
        config = FlixConfig.unconnected_hopi(5000)
        assert config.partition_size == 5000
        assert config.allowed_strategies == ("hopi",)
        assert "5000" in config.name

    def test_hybrid(self):
        config = FlixConfig.hybrid(1234)
        assert config.mdb_strategy == "hybrid"
        assert config.partition_size == 1234

    def test_configs_are_frozen(self):
        config = FlixConfig.naive()
        with pytest.raises(AttributeError):
            config.partition_size = 1


class TestRecommend:
    def test_no_links_prefers_maximal_ppo(self):
        config = FlixConfig.recommend(0.0, 0, 30.0)
        assert config.mdb_strategy == "maximal_ppo"

    def test_few_inter_links_prefers_maximal_ppo(self):
        config = FlixConfig.recommend(0.005, 0, 30.0)
        assert config.mdb_strategy == "maximal_ppo"

    def test_large_documents_few_links_prefers_naive(self):
        config = FlixConfig.recommend(0.003, 10, 5000.0)
        assert config.mdb_strategy == "naive"

    def test_dense_links_prefers_unconnected_hopi(self):
        config = FlixConfig.recommend(0.1, 50, 30.0)
        assert config.mdb_strategy == "unconnected_hopi"

    def test_mixed_prefers_hybrid(self):
        config = FlixConfig.recommend(0.02, 10, 30.0)
        assert config.mdb_strategy == "hybrid"
