"""Unit tests for the Meta Document Builder."""

import pytest

from repro.core.config import FlixConfig
from repro.core.mdb import MetaDocumentBuilder
from repro.graph.treecheck import is_forest


def build_specs(collection, config):
    return MetaDocumentBuilder(collection, config).build_specs()


def assert_disjoint_cover(collection, specs):
    seen = set()
    for spec in specs:
        assert not (spec.nodes & seen)
        seen |= spec.nodes
    assert seen == set(collection.node_ids())


class TestNaive:
    def test_one_meta_document_per_document(self, tiny_collection):
        specs = build_specs(tiny_collection, FlixConfig.naive())
        assert len(specs) == tiny_collection.document_count
        assert_disjoint_cover(tiny_collection, specs)

    def test_intra_document_links_internal(self, tiny_collection):
        specs = build_specs(tiny_collection, FlixConfig.naive())
        internal = {edge for spec in specs for edge in spec.internal_edges}
        intra = [
            (u, v)
            for u, v in tiny_collection.link_edges
            if tiny_collection.info(u).document == tiny_collection.info(v).document
        ]
        for edge in intra:
            assert edge in internal

    def test_inter_document_links_residual(self, tiny_collection):
        specs = build_specs(tiny_collection, FlixConfig.naive())
        internal = {edge for spec in specs for edge in spec.internal_edges}
        inter = [
            (u, v)
            for u, v in tiny_collection.link_edges
            if tiny_collection.info(u).document != tiny_collection.info(v).document
        ]
        for edge in inter:
            assert edge not in internal


class TestMaximalPpo:
    def test_every_meta_document_is_forest(self, figure1_collection):
        specs = build_specs(figure1_collection, FlixConfig.maximal_ppo())
        assert_disjoint_cover(figure1_collection, specs)
        for spec in specs:
            assert is_forest(spec.build_graph())

    def test_single_tree_variant_one_spec(self, figure1_collection):
        specs = build_specs(
            figure1_collection, FlixConfig.maximal_ppo(single_tree=True)
        )
        assert len(specs) == 1
        assert specs[0].nodes == set(figure1_collection.node_ids())
        assert is_forest(specs[0].build_graph())

    def test_root_links_absorbed_on_dblp(self, dblp_collection):
        """DBLP links point at roots, so groups larger than one doc form."""
        specs = build_specs(dblp_collection, FlixConfig.maximal_ppo())
        assert_disjoint_cover(dblp_collection, specs)
        assert len(specs) < dblp_collection.document_count
        for spec in specs:
            assert is_forest(spec.build_graph())

    def test_accepted_links_never_share_targets(self, dblp_collection):
        """Each document root receives at most one accepted link."""
        specs = build_specs(dblp_collection, FlixConfig.maximal_ppo())
        for spec in specs:
            graph = spec.build_graph()
            for node in spec.nodes:
                assert graph.in_degree(node) <= 1


class TestUnconnectedHopi:
    def test_partition_size_respected(self, dblp_collection):
        config = FlixConfig.unconnected_hopi(partition_size=200)
        specs = build_specs(dblp_collection, config)
        assert_disjoint_cover(dblp_collection, specs)
        for spec in specs:
            assert len(spec.nodes) <= 200

    def test_all_internal_edges_kept_within_blocks(self, figure1_collection):
        config = FlixConfig.unconnected_hopi(partition_size=50)
        specs = build_specs(figure1_collection, config)
        for spec in specs:
            for u, v in spec.internal_edges:
                assert u in spec.nodes
                assert v in spec.nodes

    def test_larger_partitions_fewer_specs(self, dblp_collection):
        small = build_specs(dblp_collection, FlixConfig.unconnected_hopi(100))
        large = build_specs(dblp_collection, FlixConfig.unconnected_hopi(1000))
        assert len(large) < len(small)


class TestHybrid:
    def test_disjoint_cover(self, figure1_collection):
        specs = build_specs(figure1_collection, FlixConfig.hybrid(100))
        assert_disjoint_cover(figure1_collection, specs)

    def test_dense_documents_not_forced_into_forests(self, figure1_collection):
        """Figure 1's densely linked half must land in HOPI-able blocks."""
        specs = build_specs(figure1_collection, FlixConfig.hybrid(100))
        shapes = [is_forest(spec.build_graph()) for spec in specs]
        assert not all(shapes)  # at least one non-forest (HOPI) block
        assert any(shapes)  # and at least one PPO-able block

    def test_meta_ids_dense_and_ordered(self, figure1_collection):
        specs = build_specs(figure1_collection, FlixConfig.hybrid(100))
        assert [s.meta_id for s in specs] == list(range(len(specs)))


class TestSpecValidation:
    def test_internal_edge_outside_nodes_rejected(self, tiny_collection):
        from repro.core.meta_document import MetaDocumentSpec

        spec = MetaDocumentSpec(0, {0, 1}, [(0, 99)])
        with pytest.raises(ValueError):
            spec.build_graph()
