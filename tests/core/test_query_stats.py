"""Per-query statistics isolation (the ``last_stats`` race fix).

Before the fix, ``PathExpressionEvaluator._search`` mutated a single
shared ``self.last_stats`` while streaming, so two in-flight queries
scrambled each other's counters.  Now every query carries its own
:class:`QueryStats` on the returned :class:`QueryStream`; ``last_stats``
is only a snapshot published when a query finishes.
"""

import itertools

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.pee import QueryStats, QueryStream


@pytest.fixture(scope="module")
def flix(figure1_collection):
    return Flix.build(figure1_collection, FlixConfig.unconnected_hopi(60))


@pytest.fixture(scope="module")
def roots(figure1_collection):
    return [
        figure1_collection.document_root(name)
        for name in ("d01.xml", "d05.xml", "d08.xml")
    ]


class TestPerQueryStats:
    def test_stream_carries_its_own_stats(self, flix, roots):
        stream = flix.pee.find_descendants(roots[0])
        assert isinstance(stream, QueryStream)
        assert isinstance(stream.stats, QueryStats)
        results = list(stream)
        assert stream.stats.results_returned == len(results)

    def test_interleaved_queries_do_not_share_counters(self, flix, roots):
        """Consume two streams alternately; each must count only its own
        results — the exact scenario the shared-counter bug corrupted."""
        baseline = {}
        for root in roots[:2]:
            stream = flix.pee.find_descendants(root)
            list(stream)
            baseline[root] = stream.stats.snapshot()

        first = flix.pee.find_descendants(roots[0])
        second = flix.pee.find_descendants(roots[1])
        for a, b in itertools.zip_longest(first, second):
            pass
        for root, stream in ((roots[0], first), (roots[1], second)):
            assert stream.stats.results_returned == baseline[root].results_returned
            assert (
                stream.stats.meta_document_visits
                == baseline[root].meta_document_visits
            )
            assert stream.stats.link_traversals == baseline[root].link_traversals

    def test_last_stats_is_a_stable_snapshot(self, flix, roots):
        first = flix.pee.find_descendants(roots[0])
        list(first)
        published = flix.pee.last_stats
        returned_then = published.results_returned
        # a later query must not mutate the already-published object
        list(flix.pee.find_descendants(roots[1]))
        assert published.results_returned == returned_then
        assert flix.pee.last_stats is not published

    def test_covered_probes_counted(self, flix, roots):
        """Duplicate elimination probes previously visited entries; on the
        link-rich figure 1 collection some query must probe at least once."""
        total = 0
        for root in roots:
            stream = flix.pee.find_descendants(root)
            list(stream)
            total += stream.stats.covered_probes
        assert total > 0

    def test_framework_aggregates_multi_step_stats(self, flix, figure1_collection):
        """``find_path`` runs one search per query step; what reaches the
        self-tuning monitor must be the merged counters of all steps, not
        just the final step's."""
        start = figure1_collection.document_root("d01.xml")
        results = list(flix.find_path(start, ["item", "link"]))
        assert results
        recorded = flix.monitor._stats[-1]
        assert recorded.results_returned >= len(results)
        assert recorded.meta_document_visits >= 2  # one per step minimum

    def test_merge_sums_every_counter(self):
        left = QueryStats(1, 2, 3, 4, 5, 6)
        right = QueryStats(10, 20, 30, 40, 50, 60)
        left.merge(right)
        assert left == QueryStats(11, 22, 33, 44, 55, 66)
        # merge leaves the source untouched
        assert right == QueryStats(10, 20, 30, 40, 50, 60)

    def test_snapshot_is_independent(self):
        stats = QueryStats(results_returned=7)
        frozen = stats.snapshot()
        stats.results_returned = 99
        assert frozen.results_returned == 7
