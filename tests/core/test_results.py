"""Unit tests for the StreamedList (multithreaded delivery, section 3.1)."""

import threading
import time

import pytest

from repro.core.results import StreamedList


class TestSingleThreaded:
    def test_append_and_iterate(self):
        stream = StreamedList()
        stream.append(1)
        stream.append(2)
        stream.close()
        assert list(stream) == [1, 2]

    def test_append_after_close_rejected(self):
        stream = StreamedList()
        stream.close()
        with pytest.raises(RuntimeError):
            stream.append(1)

    def test_close_idempotent(self):
        stream = StreamedList()
        stream.close()
        stream.close()
        assert stream.closed

    def test_snapshot_and_len(self):
        stream = StreamedList()
        stream.append("a")
        assert stream.snapshot() == ["a"]
        assert len(stream) == 1
        stream.append("b")
        assert len(stream) == 2

    def test_get_by_index(self):
        stream = StreamedList()
        stream.append("x")
        assert stream.get(0) == "x"

    def test_get_past_end_of_closed_stream(self):
        stream = StreamedList()
        stream.close()
        with pytest.raises(IndexError):
            stream.get(0)

    def test_get_timeout(self):
        stream = StreamedList()
        with pytest.raises(TimeoutError):
            stream.get(0, timeout=0.01)

    def test_multiple_iterations_see_same_items(self):
        stream = StreamedList()
        stream.append(1)
        stream.close()
        assert list(stream) == list(stream) == [1]


class TestMultiThreaded:
    def test_consumer_blocks_until_producer_delivers(self):
        stream = StreamedList()
        received = []

        def consume():
            for item in stream:
                received.append(item)

        consumer = threading.Thread(target=consume)
        consumer.start()
        for i in range(5):
            stream.append(i)
            time.sleep(0.001)
        stream.close()
        consumer.join(timeout=5)
        assert not consumer.is_alive()
        assert received == [0, 1, 2, 3, 4]

    def test_cancellation_observed_by_producer(self):
        stream = StreamedList()
        produced = []

        def produce():
            for i in range(10_000):
                if stream.cancelled:
                    break
                stream.append(i)
                produced.append(i)
                time.sleep(0.0005)
            stream.close()

        producer = threading.Thread(target=produce)
        producer.start()
        stream.get(3, timeout=5)  # wait for a few results
        stream.cancel()
        producer.join(timeout=5)
        assert not producer.is_alive()
        assert len(produced) < 10_000
        assert stream.closed

    def test_get_blocks_for_future_item(self):
        stream = StreamedList()

        def produce():
            time.sleep(0.02)
            stream.append("late")
            stream.close()

        threading.Thread(target=produce).start()
        assert stream.get(0, timeout=5) == "late"
