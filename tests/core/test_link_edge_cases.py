"""Link-graph edge cases: dangling targets, self-loops, residual cycles.

The paper's data model is the open web: idref/XLink targets may not
exist, may point at their own element, and residual links across meta
documents may form cycles.  These tests pin down that the builder and the
PEE terminate and stay correct on all of them — including cycle
traversal under a hop budget, which must end ``truncated`` rather than
spin.
"""

import pytest

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument
from repro.core.config import FlixConfig
from repro.core.framework import Flix


def results_of(stream):
    return [(r.node, r.distance) for r in stream]


class TestDanglingTargets:
    @pytest.fixture()
    def dangling_collection(self):
        docs = [
            XmlDocument.from_text(
                "a.xml",
                '<doc id="r"><sec><ref idref="no-such-id"/></sec>'
                '<sec id="here"><p>text</p></sec></doc>',
            ),
            XmlDocument.from_text(
                "b.xml",
                '<doc><link xlink:href="missing.xml"/>'
                '<link xlink:href="a.xml#nowhere"/>'
                '<link xlink:href="a.xml#here"/></doc>',
            ),
        ]
        return build_collection(docs)

    def test_unresolved_links_recorded_not_indexed(self, dangling_collection):
        assert len(dangling_collection.unresolved_links) == 3

    def test_build_and_query_ignore_dangling_targets(self, dangling_collection):
        flix = Flix.build(dangling_collection, FlixConfig.naive())
        start = dangling_collection.document_root("b.xml")
        nodes = {node for node, _ in results_of(flix.pee.find_descendants(start))}
        # the one resolvable link is followed; the dangling two are absent
        resolved = dangling_collection.documents["a.xml"].anchors["here"]
        assert dangling_collection.node_id_of(resolved) in nodes

    def test_self_check_passes_with_dangling_links(self, dangling_collection):
        flix = Flix.build(dangling_collection, FlixConfig.naive())
        flix.self_check(samples=10, seed=1)


class TestSelfLoops:
    @pytest.fixture()
    def loop_collection(self):
        docs = [
            XmlDocument.from_text(
                "loop.xml",
                '<doc><sec id="s"><ref idref="s"/><p>body</p></sec></doc>',
            ),
            XmlDocument.from_text(
                "other.xml",
                '<doc><link xlink:href="loop.xml"/></doc>',
            ),
        ]
        return build_collection(docs)

    def test_self_loop_terminates(self, loop_collection):
        flix = Flix.build(loop_collection, FlixConfig.naive())
        start = loop_collection.document_root("other.xml")
        results = results_of(flix.pee.find_descendants(start))
        assert len(results) == len(set(n for n, _ in results))  # no dups

    def test_self_loop_with_budget_stays_finite(self, loop_collection):
        config = FlixConfig.naive().with_resilience(max_link_hops=2)
        flix = Flix.build(loop_collection, config)
        start = loop_collection.document_root("other.xml")
        results_of(flix.pee.find_descendants(start))  # must terminate


class TestResidualCycles:
    @pytest.fixture()
    def cycle_collection(self):
        """Three documents whose roots link in a cycle a -> b -> c -> a,
        each with local content below the linking element."""
        docs = [
            XmlDocument.from_text(
                "a.xml",
                '<doc><link xlink:href="b.xml"/><item>in-a</item></doc>',
            ),
            XmlDocument.from_text(
                "b.xml",
                '<doc><link xlink:href="c.xml"/><item>in-b</item></doc>',
            ),
            XmlDocument.from_text(
                "c.xml",
                '<doc><link xlink:href="a.xml"/><item>in-c</item></doc>',
            ),
        ]
        return build_collection(docs)

    def cycle_flix(self, collection, **resilience):
        config = FlixConfig.naive()
        if resilience:
            config = config.with_resilience(**resilience)
        return Flix.build(collection, config)

    def test_cycle_spans_three_meta_documents(self, cycle_collection):
        flix = self.cycle_flix(cycle_collection)
        assert len(flix.meta_documents) == 3
        assert flix.report.residual_link_count == 3

    def test_cycle_traversal_terminates_and_reaches_all(self, cycle_collection):
        flix = self.cycle_flix(cycle_collection)
        start = cycle_collection.document_root("a.xml")
        stream = flix.pee.find_descendants(start, tag="item")
        items = results_of(stream)
        # the cycle makes every document's item reachable, exactly once
        assert len(items) == 3
        assert len({n for n, _ in items}) == 3
        assert stream.completeness == "complete"

    def test_cycle_under_hop_budget_truncates(self, cycle_collection):
        flix = self.cycle_flix(cycle_collection, max_link_hops=1)
        start = cycle_collection.document_root("a.xml")
        stream = flix.pee.find_descendants(start, tag="item")
        items = results_of(stream)
        assert stream.completeness == "truncated"
        assert 1 <= len(items) < 3  # budget stopped the walk mid-cycle

    def test_cycle_ancestors_terminate(self, cycle_collection):
        flix = self.cycle_flix(cycle_collection)
        item = results_of(
            flix.pee.find_descendants(
                cycle_collection.document_root("a.xml"), tag="item"
            )
        )[0][0]
        ancestors = results_of(flix.pee.find_ancestors(item))
        assert len(ancestors) == len({n for n, _ in ancestors})

    def test_cycle_connection_test_terminates(self, cycle_collection):
        flix = self.cycle_flix(cycle_collection)
        a = cycle_collection.document_root("a.xml")
        c = cycle_collection.document_root("c.xml")
        assert flix.connection_test(a, c) is not None
        assert flix.connection_test(c, a) is not None  # around the cycle
