"""Graceful degradation of the PEE: budgets, BFS fallback, completeness.

The acceptance bar for the resilience layer: a hard-failed meta-document
index yields *partial-to-identical* results flagged ``degraded`` instead
of an exception, and budget-limited queries stop early flagged
``truncated`` — never silently wrong.
"""

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.pee import QueryBudget
from repro.faults import FaultPlan, FaultyIndex
from repro.storage.errors import PermanentStorageError


def results_of(stream):
    return [(r.node, r.distance) for r in stream]


@pytest.fixture()
def resilient_flix(figure1_collection):
    config = FlixConfig.naive().with_resilience()
    return Flix.build(figure1_collection, config)


def roots(collection, count=4):
    return [
        collection.document_root(name)
        for name in sorted(collection.documents)[:count]
    ]


class TestMissingIndexFallback:
    def test_results_identical_and_flagged_degraded(
        self, figure1_collection, resilient_flix
    ):
        start = roots(figure1_collection)[0]
        healthy = results_of(resilient_flix.pee.find_descendants(start))
        assert resilient_flix.pee.last_stats.completeness == "complete"

        victim = resilient_flix.meta_documents[0]
        victim.index = None
        stream = resilient_flix.pee.find_descendants(start)
        assert results_of(stream) == healthy
        assert stream.completeness == "degraded"
        assert resilient_flix.pee.last_stats.fallback_meta_documents == 1
        assert resilient_flix.degraded_meta_ids == [victim.meta_id]

    def test_fallback_is_sticky_and_stays_degraded(
        self, figure1_collection, resilient_flix
    ):
        start = roots(figure1_collection)[0]
        resilient_flix.meta_documents[0].index = None
        results_of(resilient_flix.pee.find_descendants(start))
        second = resilient_flix.pee.find_descendants(start)
        results_of(second)
        assert second.completeness == "degraded"
        # the sticky fallback is reused, not re-counted as an activation
        assert second.stats.fallback_meta_documents == 0

    def test_ancestor_axis_also_degrades(
        self, figure1_collection, resilient_flix
    ):
        start = roots(figure1_collection)[0]
        healthy = results_of(resilient_flix.pee.find_ancestors(start))
        fresh = Flix.build(
            figure1_collection, FlixConfig.naive().with_resilience()
        )
        fresh.meta_documents[0].index = None
        stream = fresh.pee.find_ancestors(start)
        assert results_of(stream) == healthy
        assert stream.completeness == "degraded"

    def test_without_resilience_missing_index_raises(
        self, figure1_collection, monkeypatch
    ):
        # pin injection off so CI's FAULT_PLAN=moderate chaos run cannot
        # force-enable resilience and defeat the point of this test
        monkeypatch.setenv("FLIX_FAULT_PLAN", "off")
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        flix.meta_documents[0].index = None
        start = roots(figure1_collection)[0]
        with pytest.raises(PermanentStorageError, match="fallback is disabled"):
            results_of(flix.pee.find_descendants(start))

    def test_fallback_disabled_by_config(self, figure1_collection):
        config = FlixConfig.naive().with_resilience(allow_query_fallback=False)
        flix = Flix.build(figure1_collection, config)
        flix.meta_documents[0].index = None
        with pytest.raises(PermanentStorageError):
            results_of(
                flix.pee.find_descendants(roots(figure1_collection)[0])
            )


class TestFailingIndexFallback:
    def test_storage_errors_trigger_fallback_with_identical_results(
        self, figure1_collection, resilient_flix
    ):
        expected = {
            start: results_of(resilient_flix.pee.find_descendants(start))
            for start in roots(figure1_collection)
        }
        broken = Flix.build(
            figure1_collection, FlixConfig.naive().with_resilience()
        )
        for meta in broken.meta_documents:
            meta.index = FaultyIndex(meta.index, FaultPlan.hard_failure())
        for start, healthy in expected.items():
            stream = broken.pee.find_descendants(start)
            assert results_of(stream) == healthy
            assert stream.completeness == "degraded"
        assert broken.degraded_meta_ids  # at least one fallback activated

    def test_connection_test_survives_broken_index(
        self, figure1_collection, resilient_flix
    ):
        start = roots(figure1_collection)[0]
        healthy = results_of(resilient_flix.pee.find_descendants(start))
        target = next(
            (node for node, dist in healthy if dist > 0), None
        )
        if target is None:
            pytest.skip("document root has no descendants")
        assert resilient_flix.connection_test(start, target) is not None
        for meta in resilient_flix.meta_documents:
            meta.index = FaultyIndex(meta.index, FaultPlan.hard_failure())
        resilient_flix.pee._fallbacks.clear()
        assert resilient_flix.connection_test(start, target) is not None


class TestQueryBudgets:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            QueryBudget(max_link_hops=0)
        with pytest.raises(ValueError):
            QueryBudget(deadline_seconds=-1.0)
        assert QueryBudget().is_noop
        assert not QueryBudget(max_queue_pops=5).is_noop

    def test_from_resilience(self):
        from repro.core.config import ResilienceConfig

        assert QueryBudget.from_resilience(None) is None
        assert QueryBudget.from_resilience(ResilienceConfig()) is None
        budget = QueryBudget.from_resilience(
            ResilienceConfig(max_link_hops=7, max_queue_pops=9)
        )
        assert budget.max_link_hops == 7
        assert budget.max_queue_pops == 9

    def test_queue_pop_budget_truncates(self, figure1_collection):
        config = FlixConfig.naive().with_resilience(max_queue_pops=1)
        flix = Flix.build(figure1_collection, config)
        full = Flix.build(figure1_collection, FlixConfig.naive())
        start = roots(figure1_collection)[0]
        complete = results_of(full.pee.find_descendants(start))
        stream = flix.pee.find_descendants(start)
        partial = results_of(stream)
        assert stream.completeness == "truncated"
        # partial results are a prefix-consistent subset, never inventions
        assert set(partial) <= set(complete)
        assert len(partial) < len(complete)

    def test_deadline_budget_truncates(self, figure1_collection):
        config = FlixConfig.naive().with_resilience(
            query_deadline_seconds=1e-9
        )
        flix = Flix.build(figure1_collection, config)
        stream = flix.pee.find_descendants(roots(figure1_collection)[0])
        results_of(stream)
        assert stream.completeness == "truncated"

    def test_generous_budget_stays_complete(self, figure1_collection):
        config = FlixConfig.naive().with_resilience(
            max_queue_pops=10 ** 6, max_link_hops=10 ** 6
        )
        flix = Flix.build(figure1_collection, config)
        full = Flix.build(figure1_collection, FlixConfig.naive())
        start = roots(figure1_collection)[0]
        stream = flix.pee.find_descendants(start)
        assert results_of(stream) == results_of(
            full.pee.find_descendants(start)
        )
        assert stream.completeness == "complete"


class TestQueryStreamLifecycle:
    def test_close_is_idempotent(self, resilient_flix, figure1_collection):
        stream = resilient_flix.pee.find_descendants(
            roots(figure1_collection)[0]
        )
        next(stream)
        stream.close()
        stream.close()  # second close is a no-op, not an error

    def test_stats_finalized_exactly_once_on_abandoned_stream(
        self, resilient_flix, figure1_collection
    ):
        pee = resilient_flix.pee
        marker = pee.last_stats
        stream = pee.find_descendants(roots(figure1_collection)[0])
        # never started: the generator's finally would never run on its own
        stream.close()
        assert pee.last_stats is not marker  # finalizer published anyway

    def test_close_after_exhaustion_does_not_republish(
        self, resilient_flix, figure1_collection
    ):
        pee = resilient_flix.pee
        stream = pee.find_descendants(roots(figure1_collection)[0])
        list(stream)
        published = pee.last_stats
        stream.close()
        assert pee.last_stats is published  # one-shot finalizer

    def test_context_manager_closes(self, resilient_flix, figure1_collection):
        pee = resilient_flix.pee
        with pee.find_descendants(roots(figure1_collection)[0]) as stream:
            next(stream)
        assert pee.last_stats.queue_pops >= 1

    def test_completeness_counter_emitted(self, figure1_collection):
        config = FlixConfig.naive().with_resilience()
        flix = Flix.build(figure1_collection, config)
        start = roots(figure1_collection)[0]
        list(flix.pee.find_descendants(start))
        counter = flix.obs.registry.counter("flix_query_completeness_total")
        assert counter.value(level="complete") >= 1
        flix.meta_documents[0].index = None
        list(flix.pee.find_descendants(start))
        assert counter.value(level="degraded") >= 1
        fallbacks = flix.obs.registry.counter("flix_query_fallbacks_total")
        assert fallbacks.value(cause="missing") == 1


class TestChaosParity:
    """The acceptance scenario: 20% transient read faults on every storage
    operation, absorbed by retries — build succeeds and cross-meta queries
    return results identical to a fault-free run."""

    def test_build_and_queries_identical_under_faults(
        self, figure1_collection, monkeypatch
    ):
        baseline = Flix.build(figure1_collection, FlixConfig.hybrid(40))
        starts = roots(figure1_collection)
        expected = {
            s: results_of(baseline.pee.find_descendants(s)) for s in starts
        }

        monkeypatch.setenv("FLIX_FAULT_PLAN", "read_error_rate=0.2,seed=11")
        shaken = Flix.build(figure1_collection, FlixConfig.hybrid(40))
        assert shaken.config.resilience is not None  # force-enabled
        assert shaken.index_fingerprint() == baseline.index_fingerprint()
        for start in starts:
            stream = shaken.pee.find_descendants(start)
            assert results_of(stream) == expected[start]
            assert stream.completeness == "complete"
