"""Tests for generalized connection models (sections 1.1 / 7)."""

import pytest

from repro.core.config import FlixConfig
from repro.core.connections import ConnectionEvaluator, ConnectionModel
from repro.core.framework import Flix
from repro.graph.closure import transitive_closure


class TestModelValidation:
    def test_positive_costs_required(self):
        with pytest.raises(ValueError):
            ConnectionModel(tree_cost=0.0)
        with pytest.raises(ValueError):
            ConnectionModel(link_cost=-1.0)
        with pytest.raises(ValueError):
            ConnectionModel(reverse_tree_cost=0.0)

    def test_factories(self):
        assert ConnectionModel.descendants().link_cost == 1.0
        assert ConnectionModel.link_penalized(3.0).link_cost == 3.0
        undirected = ConnectionModel.undirected()
        assert undirected.reverse_tree_cost is not None
        assert undirected.reverse_link_cost is not None


class TestDescendantsModelMatchesOracle:
    def test_uniform_costs_equal_hop_distances(self, figure1_collection):
        evaluator = ConnectionEvaluator(figure1_collection)
        oracle = transitive_closure(figure1_collection.graph)
        start = figure1_collection.document_root("d05.xml")
        results = dict(evaluator.find_connected(start, include_self=True))
        expected = {n: float(d) for n, d in oracle.descendants(start).items()}
        assert results == expected

    def test_stream_exactly_sorted(self, figure1_collection):
        evaluator = ConnectionEvaluator(figure1_collection)
        start = figure1_collection.document_root("d01.xml")
        costs = [c for _n, c in evaluator.find_connected(start)]
        assert costs == sorted(costs)

    def test_unknown_start(self, figure1_collection):
        evaluator = ConnectionEvaluator(figure1_collection)
        with pytest.raises(KeyError):
            list(evaluator.find_connected(10**9))


class TestLinkPenalty:
    def test_cross_document_results_cost_more(self, figure1_collection):
        evaluator = ConnectionEvaluator(figure1_collection)
        start = figure1_collection.document_root("d01.xml")
        plain = dict(evaluator.find_connected(start))
        penalized = dict(
            evaluator.find_connected(start, model=ConnectionModel.link_penalized(5.0))
        )
        assert set(plain) == set(penalized)
        for node in plain:
            same_doc = (
                figure1_collection.info(node).document == "d01.xml"
            )
            if same_doc:
                assert penalized[node] == plain[node]
            else:
                assert penalized[node] > plain[node]

    def test_max_cost_prunes(self, figure1_collection):
        evaluator = ConnectionEvaluator(figure1_collection)
        start = figure1_collection.document_root("d01.xml")
        results = list(
            evaluator.find_connected(
                start, model=ConnectionModel.link_penalized(10.0), max_cost=9.0
            )
        )
        # nothing beyond the local document is affordable
        for node, cost in results:
            assert figure1_collection.info(node).document == "d01.xml"
            assert cost <= 9.0


class TestUndirectedModel:
    def test_reverse_traversal_reaches_upstream(self, figure1_collection):
        evaluator = ConnectionEvaluator(figure1_collection)
        # a leaf element cannot reach its own root going forward ...
        leaf = figure1_collection.document_nodes("d02.xml")[-1]
        root = figure1_collection.document_root("d02.xml")
        forward = dict(evaluator.find_connected(leaf, include_self=True))
        assert root not in forward
        # ... but does under the undirected model, at a penalty
        undirected = dict(
            evaluator.find_connected(
                leaf, model=ConnectionModel.undirected(), include_self=True
            )
        )
        assert root in undirected
        assert undirected[root] >= figure1_collection.info(leaf).depth

    def test_actor_to_costar_movie(self, movie_collection):
        """The paper's actor/acts_in/movie example: from one movie, reach a
        co-star's other movie even against link direction."""
        evaluator = ConnectionEvaluator(movie_collection)
        (title,) = movie_collection.find_by_text("title", "Speed")
        speed_root = movie_collection.node_id_of(
            movie_collection.element(title).parent
        )
        (jw_title,) = movie_collection.find_by_text("title", "John Wick")
        john_wick_root = movie_collection.node_id_of(
            movie_collection.element(jw_title).parent
        )
        forward_only = evaluator.connection_cost(speed_root, john_wick_root)
        undirected = evaluator.connection_cost(
            speed_root, john_wick_root, model=ConnectionModel.undirected()
        )
        # forward already works via actor filmographies here; the
        # undirected cost must exist and may take a cheaper reverse shortcut
        assert undirected is not None
        if forward_only is not None:
            assert undirected <= forward_only


class TestFacadeIntegration:
    def test_find_connections_via_flix(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        start = figure1_collection.document_root("d05.xml")
        pairs = list(flix.find_connections(start, tag="item"))
        assert pairs
        for node, cost in pairs:
            assert figure1_collection.tag(node) == "item"
            assert cost >= 1.0

    def test_connection_cost_via_flix(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        a = figure1_collection.document_root("d01.xml")
        b = figure1_collection.document_root("d02.xml")
        cost = flix.connection_cost(a, b)
        assert cost is not None
        assert flix.connection_test(a, b) >= 1
