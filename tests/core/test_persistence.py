"""Tests for whole-index persistence (Flix.save / Flix.load)."""

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.persistence import PersistenceError
from repro.datasets.dblp import DblpSpec, generate_dblp
from repro.graph.closure import transitive_closure


@pytest.mark.parametrize(
    "config",
    [
        FlixConfig.naive(),
        FlixConfig.maximal_ppo(),
        FlixConfig.unconnected_hopi(60),
        FlixConfig.hybrid(60),
    ],
    ids=lambda c: c.name,
)
class TestSaveLoadRoundTrip:
    def test_answers_identical(self, figure1_collection, tmp_path, config):
        original = Flix.build(figure1_collection, config)
        original.save(tmp_path / "idx")
        loaded = Flix.load(figure1_collection, tmp_path / "idx")
        for name in sorted(figure1_collection.documents)[:5]:
            start = figure1_collection.document_root(name)
            assert [
                (r.node, r.distance) for r in loaded.find_descendants(start)
            ] == [
                (r.node, r.distance) for r in original.find_descendants(start)
            ]

    def test_loaded_index_passes_self_check(self, figure1_collection, tmp_path, config):
        Flix.build(figure1_collection, config).save(tmp_path / "idx")
        loaded = Flix.load(figure1_collection, tmp_path / "idx")
        loaded.self_check(samples=10, seed=4)

    def test_metadata_restored(self, figure1_collection, tmp_path, config):
        original = Flix.build(figure1_collection, config)
        original.save(tmp_path / "idx")
        loaded = Flix.load(figure1_collection, tmp_path / "idx")
        assert loaded.config == original.config
        assert len(loaded.meta_documents) == len(original.meta_documents)
        assert loaded.meta_of == original.meta_of
        assert (
            loaded.report.residual_link_count
            == original.report.residual_link_count
        )


class TestSaveLoadBehaviour:
    def test_loaded_index_supports_incremental_growth(self, tmp_path):
        from repro.collection.document import XmlDocument

        collection = generate_dblp(DblpSpec(documents=40))
        Flix.build(collection, FlixConfig.naive()).save(tmp_path / "idx")
        loaded = Flix.load(collection, tmp_path / "idx")
        loaded.add_document(
            XmlDocument.from_text(
                "extra.xml",
                '<article key="x"><title>New</title>'
                '<cite xlink:href="rec000000.xml"/></article>',
            )
        )
        start = collection.document_root("extra.xml")
        results = list(loaded.find_descendants(start))
        assert collection.document_root("rec000000.xml") in {
            r.node for r in results
        }

    def test_fingerprint_mismatch_rejected(self, figure1_collection, tmp_path):
        Flix.build(figure1_collection, FlixConfig.naive()).save(tmp_path / "idx")
        other = generate_dblp(DblpSpec(documents=10))
        with pytest.raises(PersistenceError):
            Flix.load(other, tmp_path / "idx")

    def test_missing_manifest_rejected(self, figure1_collection, tmp_path):
        with pytest.raises(PersistenceError):
            Flix.load(figure1_collection, tmp_path / "empty")

    def test_monolithic_round_trip(self, figure1_collection, tmp_path):
        original = Flix.build_monolithic(figure1_collection, "hopi")
        original.save(tmp_path / "mono")
        loaded = Flix.load(figure1_collection, tmp_path / "mono")
        oracle = transitive_closure(figure1_collection.graph)
        start = figure1_collection.document_root("d05.xml")
        got = {r.node for r in loaded.find_descendants(start)}
        assert got == set(oracle.descendants(start)) - {start}

    def test_dblp_round_trip_heavy(self, tmp_path):
        collection = generate_dblp(DblpSpec(documents=80))
        original = Flix.build(collection, FlixConfig.hybrid(200))
        original.save(tmp_path / "idx")
        loaded = Flix.load(collection, tmp_path / "idx")
        from repro.datasets.dblp import find_aries

        aries = find_aries(collection)
        assert [r.node for r in loaded.find_descendants(aries, tag="article")] == [
            r.node for r in original.find_descendants(aries, tag="article")
        ]
