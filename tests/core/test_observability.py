"""Integration tests: observability wired through Flix end to end.

The headline assertions mirror the acceptance criteria: a query that
crosses a meta-document boundary produces spans for both the covered
index probe and the residual-link hop, and a build with
``FlixConfig(observability=False)`` emits nothing at all.
"""

import json

import pytest

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument
from repro.core.config import FlixConfig
from repro.core.framework import Flix


@pytest.fixture()
def linked_pair():
    """Two documents joined by one XLink: the smallest cross-meta case."""
    docs = [
        XmlDocument.from_text(
            "a.xml",
            '<doc><sec><link xlink:href="b.xml#t"/></sec></doc>',
        ),
        XmlDocument.from_text(
            "b.xml",
            '<doc><sec id="t"><p>target</p></sec></doc>',
        ),
    ]
    return build_collection(docs)


def _build(collection, observability=True):
    config = FlixConfig.naive().with_observability(observability)
    return Flix.build(collection, config)


class TestCrossMetaTracing:
    def test_two_meta_query_has_probe_and_link_hop_spans(self, linked_pair):
        flix = _build(linked_pair)
        assert len(flix.meta_documents) == 2
        start = linked_pair.document_root("a.xml")
        results = list(flix.find_descendants(start))
        # the query must have crossed into b.xml through the residual link
        metas_seen = {r.meta_id for r in results}
        assert len(metas_seen) == 2

        trace = flix.trace_last_query()
        assert trace is not None
        assert trace.name == "pee.query"
        probes = trace.find("pee.probe")
        hops = trace.find("pee.link_hop")
        assert len(probes) >= 2, "both meta documents must be probed"
        assert {s.meta.get("meta_id") for s in probes} == {0, 1}
        assert len(hops) >= 1, "the residual link must be traversed"
        assert sum(s.meta.get("hops", 0) for s in hops) >= 1
        # spans nest under the root query span
        root = trace.root
        assert all(s.parent_id == root.span_id for s in probes)
        assert root.meta["results"] == len(results)

    def test_query_metrics_published_on_completion(self, linked_pair):
        flix = _build(linked_pair)
        start = linked_pair.document_root("a.xml")
        list(flix.find_descendants(start))
        reg = flix.metrics()
        assert reg.get("flix_queries_total").value(axis="descendants") == 1
        assert reg.get("flix_pee_link_hops_total").total() >= 1
        assert reg.get("flix_pee_meta_visits_total").total() >= 2
        assert reg.get("flix_pee_queue_pops_total").total() >= 2
        hist = reg.get("flix_query_seconds")
        assert hist.count(axis="descendants") == 1
        assert hist.sum(axis="descendants") > 0

    def test_query_stats_count_queue_pops(self, linked_pair):
        flix = _build(linked_pair)
        start = linked_pair.document_root("a.xml")
        stream = flix.pee.find_descendants(start)
        list(stream)
        assert stream.stats.queue_pops >= 2
        assert stream.stats.queue_pops >= stream.stats.meta_document_visits

    def test_build_metrics_published(self, linked_pair):
        flix = _build(linked_pair)
        reg = flix.metrics()
        assert reg.get("flix_meta_documents").value() == 2
        assert reg.get("flix_index_builds_total").total() == 2
        assert reg.get("flix_builds_total").value(executor="serial") == 1
        phases = reg.get("flix_build_phase_seconds")
        assert phases.count(phase="index") == 2
        assert reg.get("flix_residual_links").value() == 1
        # build-time storage writes are counted (serial build, memory backend)
        writes = reg.get("flix_storage_writes_total")
        assert writes is not None and writes.total() > 0

    def test_query_time_storage_reads_counted(self, linked_pair):
        flix = _build(linked_pair)
        start = linked_pair.document_root("a.xml")
        reg = flix.metrics()
        reads_before = (
            reg.get("flix_storage_reads_total").total()
            if reg.get("flix_storage_reads_total")
            else 0.0
        )
        # scan a meta-document backend table directly: counts must move
        backend = flix.meta_documents[0].index.backend
        for name in backend.table_names():
            list(backend.table(name).scan())
        reads_after = reg.get("flix_storage_reads_total").total()
        assert reads_after > reads_before


class TestDisabledObservability:
    def test_disabled_emits_nothing(self, linked_pair):
        flix = _build(linked_pair, observability=False)
        start = linked_pair.document_root("a.xml")
        results = list(flix.find_descendants(start))
        assert results  # queries still work
        assert flix.metrics().metrics() == []
        assert flix.trace_last_query() is None
        assert flix.export_metrics("prom") == ""
        assert json.loads(flix.export_metrics("json")) == {"metrics": []}

    def test_disabled_stream_still_carries_stats(self, linked_pair):
        # QueryStats is independent of the registry: the self-tuning
        # monitor keeps working with observability off.
        flix = _build(linked_pair, observability=False)
        start = linked_pair.document_root("a.xml")
        stream = flix.pee.find_descendants(start)
        list(stream)
        assert stream.stats.results_returned > 0
        assert stream.stats.queue_pops > 0

    def test_config_knob_round_trips(self):
        config = FlixConfig.naive()
        assert config.observability is True
        off = config.with_observability(False)
        assert off.observability is False
        assert off.name == config.name
        assert off.with_observability(True).observability is True


class TestFlixObservabilitySurface:
    def test_export_formats(self, linked_pair):
        flix = _build(linked_pair)
        start = linked_pair.document_root("a.xml")
        list(flix.find_descendants(start))
        prom = flix.export_metrics("prom")
        assert "# TYPE flix_queries_total counter" in prom
        payload = json.loads(flix.export_metrics("json"))
        names = {m["name"] for m in payload["metrics"]}
        assert "flix_queries_total" in names
        with pytest.raises(ValueError):
            flix.export_metrics("yaml")

    def test_streamed_results_counted(self, linked_pair):
        flix = _build(linked_pair)
        start = linked_pair.document_root("a.xml")
        results = flix.find_descendants_streamed(start)
        collected = list(results)
        counter = flix.metrics().get("flix_streamed_results_total")
        assert counter is not None
        assert counter.total() == len(collected)

    def test_connection_test_publishes_connection_axis(self, linked_pair):
        flix = _build(linked_pair)
        start = linked_pair.document_root("a.xml")
        # the link lands on b.xml's <sec id="t">, so the <p> inside it is
        # reachable from a.xml's root across the residual link
        target = linked_pair.nodes_with_tag("p")[0]
        assert flix.connection_test(start, target) is not None
        reg = flix.metrics()
        assert reg.get("flix_queries_total").value(axis="connection") == 1

    def test_persistence_round_trips_observability(self, linked_pair, tmp_path):
        flix = _build(linked_pair, observability=False)
        flix.save(tmp_path / "idx")
        loaded = Flix.load(linked_pair, tmp_path / "idx")
        assert loaded.config.observability is False
        assert loaded.metrics().metrics() == []

    def test_interleaved_streams_have_separate_traces(self, linked_pair):
        # Two queries consumed alternately on one thread: when both finish,
        # each trace's spans must reference only its own query.
        flix = _build(linked_pair)
        a = linked_pair.document_root("a.xml")
        b = linked_pair.document_root("b.xml")
        s1 = flix.pee.find_descendants(a)
        s2 = flix.pee.find_descendants(b)
        done1 = done2 = False
        while not (done1 and done2):
            if not done1:
                try:
                    next(s1)
                except StopIteration:
                    done1 = True
            if not done2:
                try:
                    next(s2)
                except StopIteration:
                    done2 = True
        traces = [
            t for t in flix.obs.tracer.traces() if t.name == "pee.query"
        ]
        assert len(traces) == 2
        for trace in traces:
            # every probe span's parent chain stays inside this trace
            ids = {s.span_id for s in trace.spans}
            assert all(
                s.parent_id in ids for s in trace.spans if s.parent_id is not None
            )
