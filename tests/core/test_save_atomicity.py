"""Crash-atomic saves: staging, the manifest commit point, roll-forward.

``save_flix`` stages every file under a ``.tmp`` sibling, atomically
replaces the manifest (the commit point), then renames the staged files
over the final names and cleans stale ones.  These tests reconstruct
the on-disk state a crash leaves at each phase boundary and assert that
loading (or verifying) the directory always sees a complete save —
the old one before the commit point, the new one after it.
"""

from __future__ import annotations

import json
import os
import shutil
from types import SimpleNamespace

import pytest

from repro.bench.incremental import added_documents
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.persistence import (
    TMP_SUFFIX,
    load_flix,
    save_flix,
    verify_flix,
)
from repro.datasets.dblp import DblpSpec, generate_dblp


@pytest.fixture()
def crashed_save(tmp_path):
    """A deployment directory caught between a save's manifest commit
    and its per-file renames: the new manifest under the final name,
    the old files under theirs, every new file still a ``.tmp``."""
    collection = generate_dblp(DblpSpec(documents=6, seed=7))
    flix = Flix.build(collection, FlixConfig.naive())
    directory = tmp_path / "idx"
    save_flix(flix, directory)
    for doc in added_documents(2):
        flix.add_document(doc)
    # a clean save of the mutated index provides the staged content a
    # crashed in-place save would have left (fingerprints are content
    # hashes, so byte-level sqlite differences do not matter)
    staging = tmp_path / "staging"
    save_flix(flix, staging)
    manifest = json.loads((staging / "manifest.json").read_text())
    for filename in manifest["integrity"]["files"]:
        shutil.copy2(staging / filename, directory / (filename + TMP_SUFFIX))
    shutil.copy2(staging / "manifest.json", directory / "manifest.json")
    return SimpleNamespace(
        collection=collection,
        flix=flix,
        directory=directory,
        manifest=manifest,
    )


def test_load_rolls_a_crashed_save_forward(crashed_save):
    loaded = load_flix(crashed_save.collection, crashed_save.directory)
    assert (
        loaded.index_fingerprint() == crashed_save.flix.index_fingerprint()
    )
    assert loaded.layout_generation == crashed_save.flix.layout_generation
    # the roll-forward completed every pending rename
    assert not list(crashed_save.directory.glob("*" + TMP_SUFFIX))


def test_verify_settles_then_reports_clean(crashed_save):
    assert verify_flix(crashed_save.collection, crashed_save.directory) == []


def test_partial_renames_also_roll_forward(crashed_save):
    # the crash landed mid-publish: some renames already happened
    files = sorted(crashed_save.manifest["integrity"]["files"])
    first = files[0]
    os.replace(
        crashed_save.directory / (first + TMP_SUFFIX),
        crashed_save.directory / first,
    )
    loaded = load_flix(crashed_save.collection, crashed_save.directory)
    assert (
        loaded.index_fingerprint() == crashed_save.flix.index_fingerprint()
    )


def test_stray_stage_files_do_not_damage_a_committed_save(tmp_path):
    """A crash during staging leaves ``.tmp`` strays under the *old*
    manifest: the old save loads untouched, and the next successful
    save cleans the strays up."""
    collection = generate_dblp(DblpSpec(documents=6, seed=7))
    flix = Flix.build(collection, FlixConfig.naive())
    directory = tmp_path / "idx"
    save_flix(flix, directory)
    fingerprint = flix.index_fingerprint()

    (directory / ("meta_0000.sqlite" + TMP_SUFFIX)).write_bytes(b"torn")
    (directory / ("zombie.sqlite" + TMP_SUFFIX)).write_bytes(b"junk")
    assert verify_flix(collection, directory) == []
    loaded = load_flix(collection, directory)
    assert loaded.index_fingerprint() == fingerprint

    save_flix(flix, directory)
    assert not list(directory.glob("*" + TMP_SUFFIX))


def test_save_never_touches_the_committed_files_before_commit(tmp_path):
    """The staging phase must not modify any file the current manifest
    references — that is the property the commit point stands on."""
    collection = generate_dblp(DblpSpec(documents=6, seed=7))
    flix = Flix.build(collection, FlixConfig.naive())
    directory = tmp_path / "idx"
    save_flix(flix, directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    before = {
        name: (directory / name).read_bytes()
        for name in manifest["integrity"]["files"]
    }

    # crash the save at its commit point: let staging run, then stop
    # right before the manifest replace
    import repro.core.persistence as persistence

    real = persistence.atomic_write_text

    class Boom(RuntimeError):
        pass

    def exploding(path, text, *args, **kwargs):
        raise Boom("crash before the manifest commit")

    persistence.atomic_write_text = exploding
    try:
        with pytest.raises(Boom):
            save_flix(flix, directory)
    finally:
        persistence.atomic_write_text = real

    for name, content in before.items():
        assert (directory / name).read_bytes() == content, name
    assert verify_flix(collection, directory) == []
