"""Concurrency stress tests for the multithreaded delivery path."""

import threading

from repro.core.config import FlixConfig
from repro.core.framework import Flix


class TestParallelStreams:
    def test_eight_concurrent_streamed_queries(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.hybrid(60))
        roots = [
            figure1_collection.document_root(name)
            for name in sorted(figure1_collection.documents)
        ][:8]
        expected = {
            root: [r.node for r in flix.find_descendants(root)] for root in roots
        }
        streams = {root: flix.find_descendants_streamed(root) for root in roots}
        collected = {}
        errors = []

        def consume(root):
            try:
                collected[root] = [r.node for r in streams[root]]
            except Exception as error:  # pragma: no cover - failure path
                errors.append((root, error))

        threads = [
            threading.Thread(target=consume, args=(root,)) for root in roots
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        for root in roots:
            assert collected[root] == expected[root]

    def test_concurrent_synchronous_queries_are_isolated(self, figure1_collection):
        """Each query builds its own evaluator state; interleaving many
        synchronous queries from threads must not cross-contaminate."""
        flix = Flix.build(figure1_collection, FlixConfig.unconnected_hopi(60))
        roots = [
            figure1_collection.document_root(name)
            for name in sorted(figure1_collection.documents)
        ]
        expected = {
            root: {r.node for r in flix.find_descendants(root)} for root in roots
        }
        failures = []

        def worker(root):
            # note: uses a private evaluator per call via the streamed API
            stream = flix.find_descendants_streamed(root)
            got = {r.node for r in stream}
            if got != expected[root]:
                failures.append(root)

        threads = [
            threading.Thread(target=worker, args=(root,))
            for root in roots
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert failures == []

    def test_cancellation_under_load(self, dblp_collection):
        from repro.datasets.dblp import find_aries

        flix = Flix.build(dblp_collection, FlixConfig.unconnected_hopi(100))
        aries = find_aries(dblp_collection)
        streams = [
            flix.find_descendants_streamed(aries) for _ in range(4)
        ]
        for stream in streams[:2]:
            stream.cancel()
        # non-cancelled streams complete fully
        full = [r.node for r in streams[2]]
        assert full
        # cancelled streams close without hanging
        for stream in streams[:2]:
            list(stream)
            assert stream.closed
