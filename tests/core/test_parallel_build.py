"""Determinism and plumbing tests for the parallel Index Builder.

The acceptance bar: a build with ``jobs`` > 1 must be indistinguishable
from a sequential build in everything except timing — same ``meta_of``,
same strategy choices, same per-meta index sizes, byte-for-byte identical
index tables.  ``build_executor="process"`` is pinned where the process
pool itself is under test, so the pickle round trip is exercised even on
single-CPU CI runners (where ``auto`` rightly degrades to serial).
"""

import dataclasses

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.ib import BuildProfile, IndexBuilder, _available_cpus
from repro.core.mdb import MetaDocumentBuilder
from repro.storage.memory import MemoryBackend


def _process_config(partition_size: int = 60) -> FlixConfig:
    return dataclasses.replace(
        FlixConfig.unconnected_hopi(partition_size), build_executor="process"
    )


@pytest.fixture(scope="module")
def sequential(figure1_collection):
    return Flix.build(figure1_collection, FlixConfig.unconnected_hopi(60))


class TestParity:
    """jobs=4 (process pool) vs the sequential baseline."""

    @pytest.fixture(scope="class")
    def parallel(self, figure1_collection):
        return Flix.build(figure1_collection, _process_config(), jobs=4)

    def test_meta_of_identical(self, sequential, parallel):
        assert parallel.meta_of == sequential.meta_of

    def test_strategy_choices_identical(self, sequential, parallel):
        assert [m.strategy for m in parallel.meta_documents] == [
            m.strategy for m in sequential.meta_documents
        ]
        assert [m.rationale for m in parallel.report.meta_documents] == [
            m.rationale for m in sequential.report.meta_documents
        ]

    def test_per_meta_index_sizes_identical(self, sequential, parallel):
        assert [m.index_bytes for m in parallel.report.meta_documents] == [
            m.index_bytes for m in sequential.report.meta_documents
        ]

    def test_index_tables_byte_identical(self, sequential, parallel):
        for par, seq in zip(parallel.meta_documents, sequential.meta_documents):
            assert par.index.backend.fingerprint() == seq.index.backend.fingerprint()
        assert parallel.index_fingerprint() == sequential.index_fingerprint()

    def test_residual_links_identical(self, sequential, parallel):
        assert (
            parallel.report.residual_link_count
            == sequential.report.residual_link_count
        )
        assert (
            parallel._builder.framework_backend.fingerprint()
            == sequential._builder.framework_backend.fingerprint()
        )

    def test_query_results_identical(self, sequential, parallel, figure1_collection):
        for name in sorted(figure1_collection.documents):
            start = figure1_collection.document_root(name)
            assert list(parallel.find_descendants(start)) == list(
                sequential.find_descendants(start)
            )

    def test_report_records_jobs_and_executor(self, parallel):
        assert parallel.report.jobs == 4
        assert parallel.report.executor == "process"
        assert "4 jobs (process)" in parallel.report.summary()

    def test_profiles_populated(self, parallel):
        for meta in parallel.report.meta_documents:
            profile = meta.profile
            assert profile.worker.startswith("process-")
            assert profile.busy_seconds >= 0.0
            assert profile.queue_wait_seconds >= 0.0
            assert meta.build_seconds == pytest.approx(profile.busy_seconds)
        totals = parallel.report.phase_totals()
        assert set(totals) == {"queue_wait", "graph", "selection", "index"}
        assert totals["index"] > 0.0


class TestThreadFallback:
    def test_unpicklable_factory_degrades_to_thread(
        self, sequential, figure1_collection
    ):
        """A lambda backend factory cannot cross a process boundary; the
        builder must degrade to threads and still produce the same index."""
        flix = Flix.build(
            figure1_collection,
            FlixConfig.unconnected_hopi(60),
            backend_factory=lambda: MemoryBackend(),
            jobs=4,
        )
        if _available_cpus() <= 1:
            assert flix.report.executor == "serial"
        else:
            assert flix.report.executor == "thread"
        assert flix.meta_of == sequential.meta_of
        assert flix.index_fingerprint() == sequential.index_fingerprint()

    def test_explicit_thread_executor(self, sequential, figure1_collection):
        config = dataclasses.replace(
            FlixConfig.unconnected_hopi(60), build_executor="thread"
        )
        flix = Flix.build(figure1_collection, config, jobs=2)
        assert flix.report.executor == "thread"
        for meta in flix.report.meta_documents:
            assert meta.profile.worker.startswith("thread-")
        assert flix.index_fingerprint() == sequential.index_fingerprint()


class TestSerialPaths:
    def test_jobs_one_stays_serial(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.unconnected_hopi(60))
        assert flix.report.jobs == 1
        assert flix.report.executor == "serial"
        for meta in flix.report.meta_documents:
            assert meta.profile.worker == "main"

    def test_single_meta_document_skips_pool(self, figure1_collection):
        flix = Flix.build(figure1_collection, _process_config(100_000), jobs=4)
        assert len(flix.meta_documents) == 1
        assert flix.report.executor == "serial"

    def test_explicit_serial_executor_ignores_jobs(self, figure1_collection):
        config = dataclasses.replace(
            FlixConfig.unconnected_hopi(60), build_executor="serial"
        )
        flix = Flix.build(figure1_collection, config, jobs=8)
        assert flix.report.executor == "serial"


class TestConfigPlumbing:
    def test_with_jobs(self):
        config = FlixConfig.unconnected_hopi(60).with_jobs(4)
        assert config.jobs == 4
        assert config.build_executor == "auto"
        forced = config.with_jobs(2, build_executor="thread")
        assert (forced.jobs, forced.build_executor) == (2, "thread")

    def test_config_jobs_used_by_default(self, figure1_collection):
        config = FlixConfig.unconnected_hopi(60).with_jobs(3)
        flix = Flix.build(figure1_collection, config)
        assert flix.report.jobs == 3

    def test_build_jobs_overrides_config(self, figure1_collection):
        config = FlixConfig.unconnected_hopi(60).with_jobs(3)
        flix = Flix.build(figure1_collection, config, jobs=1)
        assert flix.report.jobs == 1
        assert flix.report.executor == "serial"

    def test_invalid_jobs_rejected(self, figure1_collection):
        with pytest.raises(ValueError):
            FlixConfig.unconnected_hopi(60).with_jobs(0)
        builder = IndexBuilder(
            figure1_collection, FlixConfig.unconnected_hopi(60)
        )
        specs = MetaDocumentBuilder(
            figure1_collection, FlixConfig.unconnected_hopi(60)
        ).build_specs()
        with pytest.raises(ValueError):
            builder.build(specs, jobs=0)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(
                FlixConfig.unconnected_hopi(60), build_executor="gpu"
            )


class TestBuildProfile:
    def test_busy_seconds_sums_phases(self):
        profile = BuildProfile(
            queue_wait_seconds=5.0,
            graph_seconds=1.0,
            selection_seconds=2.0,
            index_seconds=3.0,
        )
        assert profile.busy_seconds == pytest.approx(6.0)

    def test_default_profile_on_legacy_reports(self):
        from repro.core.ib import MetaDocumentReport

        report = MetaDocumentReport(
            meta_id=0,
            node_count=1,
            internal_edge_count=0,
            strategy="ppo",
            rationale="legacy call site",
            index_bytes=0,
            build_seconds=0.0,
        )
        assert report.profile.worker == "main"
        assert report.profile.busy_seconds == 0.0
