"""Tests for Flix.self_check (index integrity verification)."""

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix


class TestSelfCheck:
    @pytest.mark.parametrize(
        "config",
        [
            FlixConfig.naive(),
            FlixConfig.maximal_ppo(),
            FlixConfig.unconnected_hopi(60),
            FlixConfig.hybrid(60),
        ],
        ids=lambda c: c.name,
    )
    def test_healthy_index_passes(self, figure1_collection, config):
        flix = Flix.build(figure1_collection, config)
        report = flix.self_check(samples=10, seed=1)
        assert report["samples"] == 10
        assert report["results_checked"] > 0

    def test_empty_collection(self):
        from repro.collection.builder import build_collection

        flix = Flix.build(build_collection([]), FlixConfig.naive())
        assert flix.self_check() == {"samples": 0, "results_checked": 0}

    def test_passes_after_incremental_growth(self, dblp_collection):
        from repro.collection.builder import build_collection
        from repro.collection.document import XmlDocument

        documents = [
            XmlDocument.from_text("a.xml", '<doc><l xlink:href="b.xml"/></doc>'),
            XmlDocument.from_text("b.xml", "<doc><p>x</p></doc>"),
        ]
        collection = build_collection(documents)
        flix = Flix.build(collection, FlixConfig.naive())
        flix.add_document(
            XmlDocument.from_text("c.xml", '<doc><l xlink:href="a.xml"/></doc>')
        )
        flix.self_check(samples=8, seed=2)

    def test_detects_corruption(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        # sabotage: drop ALL residual links — every cross-document path is
        # now missing from query answers
        for meta in flix.meta_documents:
            meta.outgoing_links.clear()
            meta.incoming_links.clear()
            meta.finalize_links()
        with pytest.raises(AssertionError):
            flix.self_check(samples=40, seed=3)
