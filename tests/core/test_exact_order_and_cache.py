"""Tests for the section 7 extensions: exact-order streaming, result
caching, and the child axis."""

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.graph.closure import transitive_closure


@pytest.fixture(scope="module")
def flix(figure1_collection):
    return Flix.build(figure1_collection, FlixConfig.unconnected_hopi(60))


@pytest.fixture(scope="module")
def oracle(figure1_collection):
    return transitive_closure(figure1_collection.graph)


class TestExactOrder:
    def test_stream_sorted_by_reported_distance(self, flix, figure1_collection):
        for name in ("d01.xml", "d05.xml", "d08.xml"):
            start = figure1_collection.document_root(name)
            results = list(flix.find_descendants(start, exact_order=True))
            distances = [r.distance for r in results]
            assert distances == sorted(distances)

    def test_same_result_set_as_approximate(self, flix, figure1_collection):
        start = figure1_collection.document_root("d05.xml")
        exact = {r.node for r in flix.find_descendants(start, exact_order=True)}
        approx = {r.node for r in flix.find_descendants(start)}
        assert exact == approx

    def test_exact_order_reduces_error_rate(self, flix, figure1_collection, oracle):
        from repro.bench.harness import order_error_rate

        start = figure1_collection.document_root("d05.xml")
        approx = list(flix.find_descendants(start, include_self=True))
        exact = list(flix.find_descendants(start, include_self=True,
                                           exact_order=True))
        assert order_error_rate(exact, oracle, start) <= order_error_rate(
            approx, oracle, start
        )

    def test_exact_order_ancestors(self, flix, figure1_collection):
        node = figure1_collection.document_nodes("d04.xml")[-1]
        results = list(flix.find_ancestors(node, exact_order=True))
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_exact_order_with_threshold(self, flix, figure1_collection):
        start = figure1_collection.document_root("d01.xml")
        results = list(
            flix.find_descendants(start, max_distance=4, exact_order=True)
        )
        distances = [r.distance for r in results]
        assert distances == sorted(distances)
        assert all(d <= 4 for d in distances)

    def test_non_decreasing_across_meta_document_boundaries(
        self, flix, figure1_collection
    ):
        """The guarantee that matters is *cross*-meta: distances must stay
        non-decreasing even where the stream hops residual links between
        meta documents (within one meta the local index orders for free)."""
        for name in ("d01.xml", "d05.xml", "d08.xml"):
            start = figure1_collection.document_root(name)
            results = list(flix.find_descendants(start, exact_order=True))
            metas_spanned = {flix.meta_of[r.node] for r in results}
            assert len(metas_spanned) >= 2, (
                f"query from {name} stayed inside one meta document; "
                "the test collection no longer exercises the boundary"
            )
            distances = [r.distance for r in results]
            assert distances == sorted(distances)


class TestResultCache:
    def test_cache_disabled_by_default(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        start = figure1_collection.document_root("d01.xml")
        list(flix.find_descendants(start))
        list(flix.find_descendants(start))
        assert flix.cache_hits == 0

    def test_cache_hit_on_repeat(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        flix.enable_cache()
        start = figure1_collection.document_root("d01.xml")
        first = list(flix.find_descendants(start, tag="item"))
        second = list(flix.find_descendants(start, tag="item"))
        assert flix.cache_hits == 1
        assert first == second

    def test_cached_results_equal_fresh(self, figure1_collection):
        plain = Flix.build(figure1_collection, FlixConfig.hybrid(60))
        cached = Flix.build(figure1_collection, FlixConfig.hybrid(60))
        cached.enable_cache()
        start = figure1_collection.document_root("d05.xml")
        for _ in range(3):
            assert list(cached.find_descendants(start)) == list(
                plain.find_descendants(start)
            )

    def test_limited_query_served_from_cached_superset(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        flix.enable_cache()
        start = figure1_collection.document_root("d01.xml")
        full = list(flix.find_descendants(start))
        limited = list(flix.find_descendants(start, limit=3))
        assert limited == full[:3]
        assert flix.cache_hits == 1

    def test_limited_queries_not_cached_as_full(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        flix.enable_cache()
        start = figure1_collection.document_root("d01.xml")
        list(flix.find_descendants(start, limit=2))
        full = list(flix.find_descendants(start))
        assert len(full) > 2

    def test_lru_eviction(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        flix.enable_cache(maxsize=2)
        roots = [
            figure1_collection.document_root(name)
            for name in ("d01.xml", "d02.xml", "d03.xml")
        ]
        for root in roots:
            list(flix.find_descendants(root))
        list(flix.find_descendants(roots[0]))  # evicted -> miss
        assert flix.cache_hits == 0
        assert flix.cache_misses >= 4

    def test_invalid_maxsize(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        with pytest.raises(ValueError):
            flix.enable_cache(maxsize=0)

    def test_disable_cache(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        flix.enable_cache()
        start = figure1_collection.document_root("d01.xml")
        list(flix.find_descendants(start))
        flix.disable_cache()
        hits_before = flix.cache_hits
        list(flix.find_descendants(start))
        assert flix.cache_hits == hits_before

    def test_add_document_invalidates_cached_results(self):
        """Cached results describe the pre-addition reachability; serving
        them after ``add_document`` would hide the new document."""
        from repro.collection.builder import build_collection
        from repro.collection.document import XmlDocument

        collection = build_collection(
            [
                XmlDocument.from_text(
                    "a.xml", '<doc><l xlink:href="b.xml"/><p>alpha</p></doc>'
                ),
                XmlDocument.from_text("b.xml", "<doc><p>beta</p></doc>"),
            ]
        )
        flix = Flix.build(collection, FlixConfig.naive())
        flix.enable_cache()
        start = collection.document_root("a.xml")
        before = list(flix.find_descendants(start, tag="p"))
        list(flix.find_descendants(start, tag="p"))
        assert flix.cache_hits == 1

        flix.add_document(
            XmlDocument.from_text(
                "c.xml", '<doc><p>gamma</p></doc>'
            )
        )
        # the cache was cleared: same query is a miss, not a stale hit
        after = list(flix.find_descendants(start, tag="p"))
        assert flix.cache_hits == 1
        assert flix.cache_misses >= 2
        assert {r.node for r in after} == {r.node for r in before}

        # a document the cached result could never contain
        flix.add_document(
            XmlDocument.from_text(
                "d.xml", '<doc><l xlink:href="a.xml"/><p>delta</p></doc>'
            )
        )
        start_d = collection.document_root("d.xml")
        texts = {
            collection.text(r.node)
            for r in flix.find_descendants(start_d, tag="p")
        }
        assert texts == {"alpha", "beta", "delta"}

    def test_rebuild_starts_with_cold_cache(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.hybrid(60))
        flix.enable_cache()
        start = figure1_collection.document_root("d05.xml")
        original = list(flix.find_descendants(start))
        list(flix.find_descendants(start))
        assert flix.cache_hits == 1

        rebuilt = flix.rebuild()
        assert rebuilt is not flix
        assert rebuilt.cache_hits == 0 and rebuilt.cache_misses == 0
        fresh = list(rebuilt.find_descendants(start))
        assert rebuilt.cache_hits == 0  # caching is opt-in per instance
        assert [r.node for r in fresh] == [r.node for r in original]


class TestChildAxis:
    def test_children_are_direct_successors(self, flix, figure1_collection):
        start = figure1_collection.document_root("d01.xml")
        children = flix.find_children(start)
        expected = sorted(figure1_collection.graph.successors(start))
        assert [c.node for c in children] == expected
        assert all(c.distance == 1 for c in children)

    def test_children_tag_filter(self, flix, figure1_collection):
        start = figure1_collection.document_root("d01.xml")
        for child in flix.find_children(start, tag="item"):
            assert figure1_collection.tag(child.node) == "item"

    def test_link_targets_count_as_children(self, flix, figure1_collection):
        """'elements that are referenced through links [are treated]
        similarly to normal child elements' (section 1.1)."""
        link_sources = {u for u, _v in figure1_collection.link_edges}
        source = next(iter(link_sources))
        children = {c.node for c in flix.find_children(source)}
        targets = {
            v for u, v in figure1_collection.link_edges if u == source
        }
        assert targets <= children
