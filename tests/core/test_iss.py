"""Unit tests for the Indexing Strategy Selector."""

import pytest

from repro.core.config import FlixConfig
from repro.core.iss import IndexingStrategySelector
from repro.graph.digraph import Digraph
from repro.indexes.base import IndexNotApplicableError
from tests.conftest import cycle_graph, random_digraph, random_tree


def select(config, graph):
    return IndexingStrategySelector(config).choose(graph)


class TestRules:
    def test_forest_gets_ppo(self):
        choice = select(FlixConfig.naive(), random_tree(1, 20))
        assert choice.strategy == "ppo"
        assert "forest" in choice.rationale

    def test_linked_graph_gets_hopi_for_long_path_loads(self):
        choice = select(FlixConfig.naive(), cycle_graph(10))
        assert choice.strategy == "hopi"

    def test_ppo_only_config_fails_on_cycle(self):
        with pytest.raises(IndexNotApplicableError):
            select(FlixConfig.maximal_ppo(), cycle_graph(3))

    def test_hopi_only_config_used_even_on_forest_graphs(self):
        """Unconnected HOPI allows only HOPI, so even tree blocks use it...
        unless PPO is allowed — it is not in this configuration."""
        choice = select(FlixConfig.unconnected_hopi(100), random_tree(1, 10))
        assert choice.strategy == "hopi"

    def test_short_path_load_prefers_summary_index(self):
        config = FlixConfig(
            name="short",
            mdb_strategy="naive",
            allowed_strategies=("ppo", "hopi", "apex"),
            expect_long_paths=False,
        )
        choice = select(config, cycle_graph(10))
        assert choice.strategy == "apex"

    def test_budget_violation_falls_back_to_apex(self):
        config = FlixConfig(
            name="tight",
            mdb_strategy="naive",
            allowed_strategies=("hopi", "apex"),
            hopi_pairs_per_node_budget=0.1,  # impossible budget
        )
        # dense graph, > SMALL_GRAPH_NODES so the estimator actually runs
        graph = random_digraph(5, 100, edge_factor=3.0)
        choice = select(config, graph)
        assert choice.strategy == "apex"
        assert "budget" in choice.rationale

    def test_budget_violation_without_alternative_keeps_hopi(self):
        config = FlixConfig(
            name="hopi_only",
            mdb_strategy="unconnected_hopi",
            allowed_strategies=("hopi",),
            hopi_pairs_per_node_budget=0.1,
        )
        graph = random_digraph(5, 100, edge_factor=3.0)
        choice = select(config, graph)
        assert choice.strategy == "hopi"
        assert "no alternative" in choice.rationale

    def test_small_graphs_skip_estimator(self):
        config = FlixConfig.naive()
        graph = cycle_graph(5)
        choice = select(config, graph)
        # worst case pairs/node for 5 nodes is tiny, well under the budget
        assert choice.strategy == "hopi"
        assert choice.estimated_closure_pairs <= 25


class TestChoiceMetadata:
    def test_rationale_always_present(self):
        for graph in (random_tree(2, 15), cycle_graph(4)):
            choice = select(FlixConfig.naive(), graph)
            assert choice.rationale
