"""Unit tests for the Index Builder."""

import pytest

from repro.core.config import FlixConfig
from repro.core.ib import IndexBuilder
from repro.core.mdb import MetaDocumentBuilder
from repro.core.meta_document import MetaDocumentSpec


def build(collection, config):
    specs = MetaDocumentBuilder(collection, config).build_specs()
    return IndexBuilder(collection, config).build(specs)


class TestBuild:
    def test_meta_of_covers_all_nodes(self, tiny_collection):
        metas, meta_of, _report = build(tiny_collection, FlixConfig.naive())
        assert set(meta_of) == set(tiny_collection.node_ids())
        for node, mid in meta_of.items():
            assert node in metas[mid]

    def test_residual_links_are_the_non_internal_edges(self, tiny_collection):
        metas, meta_of, report = build(tiny_collection, FlixConfig.naive())
        # inter-document links are residual under the naive configuration
        inter = [
            (u, v)
            for u, v in tiny_collection.link_edges
            if tiny_collection.info(u).document != tiny_collection.info(v).document
        ]
        assert report.residual_link_count == len(inter)
        for u, v in inter:
            assert v in metas[meta_of[u]].outgoing_links[u]
            assert u in metas[meta_of[v]].incoming_links[v]

    def test_link_sources_property(self, tiny_collection):
        metas, _meta_of, _report = build(tiny_collection, FlixConfig.naive())
        for meta in metas:
            assert meta.link_sources == frozenset(meta.outgoing_links)
            assert meta.link_targets == frozenset(meta.incoming_links)

    def test_indexes_answer_local_queries(self, tiny_collection):
        metas, meta_of, _report = build(tiny_collection, FlixConfig.naive())
        root = tiny_collection.document_root("a.xml")
        meta = metas[meta_of[root]]
        descendants = meta.index.find_descendants_by_tag(root, None)
        assert len(descendants) == len(tiny_collection.document_nodes("a.xml"))

    def test_report_totals(self, tiny_collection):
        _metas, _meta_of, report = build(tiny_collection, FlixConfig.naive())
        assert report.total_index_bytes > 0
        assert report.total_seconds >= 0
        assert len(report.meta_documents) == tiny_collection.document_count
        histogram = report.strategy_histogram()
        assert sum(histogram.values()) == len(report.meta_documents)

    def test_report_summary_readable(self, tiny_collection):
        _metas, _meta_of, report = build(tiny_collection, FlixConfig.naive())
        summary = report.summary()
        assert "meta" in summary
        assert "residual" in summary

    def test_strategies_match_structure(self, tiny_collection):
        metas, _meta_of, _report = build(tiny_collection, FlixConfig.naive())
        by_doc = {}
        for meta in metas:
            doc = tiny_collection.info(next(iter(meta.nodes))).document
            by_doc[doc] = meta.strategy
        # a.xml has an intra-document link -> not a forest -> hopi
        assert by_doc["a.xml"] == "hopi"
        # b.xml and c.xml are plain trees -> ppo
        assert by_doc["b.xml"] == "ppo"
        assert by_doc["c.xml"] == "ppo"


class TestValidation:
    def test_overlapping_specs_rejected(self, tiny_collection):
        config = FlixConfig.naive()
        nodes = set(tiny_collection.node_ids())
        specs = [
            MetaDocumentSpec(0, nodes, []),
            MetaDocumentSpec(1, {0}, []),
        ]
        with pytest.raises(ValueError):
            IndexBuilder(tiny_collection, config).build(specs)

    def test_incomplete_cover_rejected(self, tiny_collection):
        config = FlixConfig.naive()
        specs = [MetaDocumentSpec(0, {0, 1}, [])]
        with pytest.raises(ValueError):
            IndexBuilder(tiny_collection, config).build(specs)

    def test_misnumbered_specs_rejected(self, tiny_collection):
        config = FlixConfig.naive()
        nodes = set(tiny_collection.node_ids())
        specs = [MetaDocumentSpec(5, nodes, [])]
        with pytest.raises(ValueError):
            IndexBuilder(tiny_collection, config).build(specs)
