"""Unit tests for the Path Expression Evaluator (Figure 4)."""

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.graph.closure import transitive_closure


@pytest.fixture(params=["naive", "maximal_ppo", "unconnected_hopi", "hybrid"])
def flix(request, figure1_collection):
    configs = {
        "naive": FlixConfig.naive(),
        "maximal_ppo": FlixConfig.maximal_ppo(),
        "unconnected_hopi": FlixConfig.unconnected_hopi(60),
        "hybrid": FlixConfig.hybrid(60),
    }
    return Flix.build(figure1_collection, configs[request.param])


@pytest.fixture(scope="module")
def oracle(figure1_collection):
    return transitive_closure(figure1_collection.graph)


class TestDescendants:
    def test_result_set_matches_oracle(self, flix, figure1_collection, oracle):
        for name in list(figure1_collection.documents)[:4]:
            start = figure1_collection.document_root(name)
            got = {r.node for r in flix.find_descendants(start)}
            expected = set(oracle.descendants(start)) - {start}
            assert got == expected

    def test_no_duplicates(self, flix, figure1_collection):
        start = figure1_collection.document_root("d01.xml")
        results = list(flix.find_descendants(start))
        assert len(results) == len({r.node for r in results})

    def test_distances_are_upper_bounds(self, flix, figure1_collection, oracle):
        start = figure1_collection.document_root("d05.xml")
        for result in flix.find_descendants(start):
            assert result.distance >= oracle.distance(start, result.node)

    def test_tag_filter(self, flix, figure1_collection, oracle):
        start = figure1_collection.document_root("d01.xml")
        got = {r.node for r in flix.find_descendants(start, tag="item")}
        expected = {
            v
            for v in oracle.descendants(start)
            if figure1_collection.tag(v) == "item" and v != start
        }
        assert got == expected

    def test_include_self(self, flix, figure1_collection):
        start = figure1_collection.document_root("d01.xml")
        with_self = {r.node for r in flix.find_descendants(start, include_self=True)}
        without = {r.node for r in flix.find_descendants(start)}
        assert with_self - without == {start}

    def test_max_distance_threshold(self, flix, figure1_collection, oracle):
        start = figure1_collection.document_root("d01.xml")
        results = list(flix.find_descendants(start, max_distance=3))
        full = {r.node for r in flix.find_descendants(start)}
        for result in results:
            assert result.distance <= 3
        # thresholded results are a subset of the unthresholded answer
        assert {r.node for r in results} <= full
        # a threshold beyond the diameter changes nothing
        wide = {r.node for r in flix.find_descendants(start, max_distance=10**6)}
        assert wide == full

    def test_limit_stops_early(self, flix, figure1_collection):
        start = figure1_collection.document_root("d01.xml")
        results = list(flix.find_descendants(start, limit=5))
        assert len(results) == 5

    def test_unknown_start_raises(self, flix):
        with pytest.raises(KeyError):
            list(flix.find_descendants(10**9))

    def test_meta_id_points_to_owning_meta_document(self, flix, figure1_collection):
        start = figure1_collection.document_root("d01.xml")
        for result in flix.find_descendants(start):
            assert result.node in flix.meta_documents[result.meta_id]


class TestAncestors:
    def test_matches_oracle(self, flix, figure1_collection, oracle):
        nodes = list(figure1_collection.node_ids())
        for node in nodes[:: max(1, len(nodes) // 15)]:
            got = {r.node for r in flix.find_ancestors(node)}
            expected = {
                u for u in nodes if oracle.reachable(u, node) and u != node
            }
            assert got == expected

    def test_ancestor_distances_are_upper_bounds(self, flix, figure1_collection, oracle):
        node = figure1_collection.document_nodes("d04.xml")[-1]
        for result in flix.find_ancestors(node):
            assert result.distance >= oracle.distance(result.node, node)


class TestConnectionTest:
    def test_connected_pairs(self, flix, figure1_collection, oracle):
        nodes = list(figure1_collection.node_ids())
        checked = 0
        for u in nodes[::7]:
            for v in nodes[::11]:
                expected = oracle.distance(u, v)
                got = flix.connection_test(u, v)
                assert (got is None) == (expected is None)
                if got is not None:
                    assert got >= expected
                checked += 1
        assert checked > 10

    def test_bidirectional_agrees_on_connectivity(self, flix, figure1_collection, oracle):
        nodes = list(figure1_collection.node_ids())
        for u in nodes[::13]:
            for v in nodes[::17]:
                expected = oracle.reachable(u, v)
                got = flix.connection_test(u, v, bidirectional=True)
                assert (got is not None) == expected

    def test_threshold_cuts_off(self, flix, figure1_collection, oracle):
        nodes = list(figure1_collection.node_ids())
        for u in nodes[::9]:
            for v in nodes[::15]:
                true = oracle.distance(u, v)
                got = flix.connection_test(u, v, max_distance=2)
                if got is not None:
                    assert got <= 2
                if true is not None and true > 8:
                    # approximate distances never undershoot, so a pair far
                    # beyond the threshold must be rejected
                    assert got is None

    def test_self_connection(self, flix, figure1_collection):
        node = figure1_collection.document_root("d01.xml")
        assert flix.connection_test(node, node) == 0


class TestTypeQuery:
    def test_a_slash_slash_b(self, flix, figure1_collection, oracle):
        got = {r.node for r in flix.evaluate_type_query("doc", "note")}
        expected = set()
        for seed in figure1_collection.nodes_with_tag("doc"):
            for v, _d in oracle.descendants(seed).items():
                if figure1_collection.tag(v) == "note":
                    expected.add(v)
        assert got == expected

    def test_results_unique(self, flix):
        results = list(flix.evaluate_type_query("doc", "item"))
        assert len(results) == len({r.node for r in results})


class TestStats:
    def test_stats_recorded(self, flix, figure1_collection):
        start = figure1_collection.document_root("d05.xml")
        list(flix.find_descendants(start))
        stats = flix.pee.last_stats
        assert stats.meta_document_visits >= 1
        assert stats.results_returned >= 1
