"""Build-time resilience: retries, strategy fallback, absorbed failures.

The Index Builder's failure ladder under a resilience config: retry the
selected strategy in place, fall back to the safe strategy, and as a last
resort hand the meta document to the PEE unindexed (query-time BFS).
Without a resilience config the first failure stays fatal, as before.
"""

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.faults import FaultPlan, FaultyFactory
from repro.storage.errors import TransientStorageError
from repro.storage.memory import MemoryBackend

#: make the ppo strategy (what FlixConfig.naive selects for every meta
#: document of the figure-1 collection) fail on its very first write
PPO_KILLER = FaultPlan(write_error_rate=1.0).restricted_to("ppo_nodes")

FAST_RESILIENCE = dict(
    backoff_base_seconds=0.0, backoff_max_seconds=0.0, backoff_jitter=0.0
)


def results_of(stream):
    return [(r.node, r.distance) for r in stream]


class TestStrategyFallback:
    def test_falls_back_to_safe_strategy(self, figure1_collection):
        config = FlixConfig.naive().with_resilience(**FAST_RESILIENCE)
        flix = Flix.build(
            figure1_collection,
            config,
            backend_factory=FaultyFactory(MemoryBackend, PPO_KILLER),
        )
        assert all(
            meta.strategy == "transitive_closure"
            for meta in flix.meta_documents
        )
        report = flix.report
        assert report.fallback_count == len(flix.meta_documents)
        assert report.failures  # absorbed failures are named, not silent
        for meta_report in report.meta_documents:
            assert meta_report.fallback_from == "ppo"
            assert meta_report.attempts > 1
        assert "absorbed failures" in report.summary()

    def test_fallback_results_match_healthy_build(self, figure1_collection):
        healthy = Flix.build(figure1_collection, FlixConfig.naive())
        config = FlixConfig.naive().with_resilience(**FAST_RESILIENCE)
        fellback = Flix.build(
            figure1_collection,
            config,
            backend_factory=FaultyFactory(MemoryBackend, PPO_KILLER),
        )
        for name in sorted(figure1_collection.documents)[:4]:
            start = figure1_collection.document_root(name)
            assert results_of(fellback.pee.find_descendants(start)) == (
                results_of(healthy.pee.find_descendants(start))
            )

    def test_without_resilience_failure_is_fatal(
        self, figure1_collection, monkeypatch
    ):
        # pin injection off so CI's FAULT_PLAN=moderate chaos run cannot
        # force-enable resilience and defeat the point of this test
        monkeypatch.setenv("FLIX_FAULT_PLAN", "off")
        with pytest.raises(TransientStorageError):
            Flix.build(
                figure1_collection,
                FlixConfig.naive(),
                backend_factory=FaultyFactory(MemoryBackend, PPO_KILLER),
            )


class TestUnindexedLastResort:
    def build_unindexed(self, collection, **config_overrides):
        plan = FaultPlan(write_error_rate=1.0).restricted_to(
            "ppo_nodes", "closure_pairs"
        )
        config = FlixConfig.naive().with_resilience(
            **FAST_RESILIENCE, **config_overrides
        )
        return Flix.build(
            collection,
            config,
            backend_factory=FaultyFactory(MemoryBackend, plan),
        )

    def test_every_strategy_failing_leaves_meta_unindexed(
        self, figure1_collection
    ):
        flix = self.build_unindexed(figure1_collection)
        assert all(meta.index is None for meta in flix.meta_documents)
        report = flix.report
        assert report.unindexed_count == len(flix.meta_documents)
        assert all(m.error for m in report.meta_documents)

    def test_unindexed_metas_answer_queries_degraded(self, figure1_collection):
        healthy = Flix.build(figure1_collection, FlixConfig.naive())
        flix = self.build_unindexed(figure1_collection)
        for name in sorted(figure1_collection.documents)[:4]:
            start = figure1_collection.document_root(name)
            stream = flix.pee.find_descendants(start)
            assert results_of(stream) == results_of(
                healthy.pee.find_descendants(start)
            )
            assert stream.completeness == "degraded"

    def test_disabled_fallback_strategy_skips_ladder_rung(
        self, figure1_collection
    ):
        flix = self.build_unindexed(
            figure1_collection, build_fallback_strategy=None
        )
        assert all(meta.index is None for meta in flix.meta_documents)


class TestBuildRetries:
    def test_transient_build_failure_retried_in_place(self, figure1_collection):
        # fail_first=1 per site: the first ppo write of each fresh backend
        # dies once; the storage-level retry absorbs it invisibly, so the
        # builder sees a clean first attempt
        plan = FaultPlan(fail_first=1).restricted_to("ppo_nodes")
        config = FlixConfig.naive().with_resilience(**FAST_RESILIENCE)
        flix = Flix.build(
            figure1_collection,
            config,
            backend_factory=FaultyFactory(MemoryBackend, plan),
        )
        assert all(meta.strategy == "ppo" for meta in flix.meta_documents)
        assert flix.report.fallback_count == 0

    def test_fingerprint_identical_to_fault_free(self, figure1_collection):
        plan = FaultPlan(fail_first=1).restricted_to("ppo_nodes")
        config = FlixConfig.naive().with_resilience(**FAST_RESILIENCE)
        shaken = Flix.build(
            figure1_collection,
            config,
            backend_factory=FaultyFactory(MemoryBackend, plan),
        )
        clean = Flix.build(figure1_collection, FlixConfig.naive())
        assert shaken.index_fingerprint() == clean.index_fingerprint()


class TestParallelExecutors:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_fallback_identical_across_executors(
        self, figure1_collection, jobs
    ):
        config = FlixConfig.naive().with_resilience(**FAST_RESILIENCE)
        flix = Flix.build(
            figure1_collection,
            config,
            backend_factory=FaultyFactory(MemoryBackend, PPO_KILLER),
            jobs=jobs,
        )
        assert all(
            meta.strategy == "transitive_closure"
            for meta in flix.meta_documents
        )
        assert flix.report.fallback_count == len(flix.meta_documents)
