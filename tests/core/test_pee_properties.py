"""Property tests: FliX answers equal the oracle on random collections.

For every configuration, over randomly generated linked collections, the
streamed result *set* must equal the transitive closure's answer, reported
distances must never undershoot the true distance, and streams must be
duplicate-free.  This is the whole-framework analogue of the per-index
equivalence suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.synthetic import SyntheticSpec, generate_synthetic_collection
from repro.graph.closure import transitive_closure

collection_params = st.tuples(
    st.integers(min_value=0, max_value=1000),  # seed
    st.integers(min_value=2, max_value=8),  # documents
    st.integers(min_value=2, max_value=12),  # mean document size
    st.sampled_from([0.0, 0.5, 1.5]),  # links per document
    st.sampled_from([0.0, 0.5]),  # intra links per document
)


def make_collection(params):
    seed, docs, size, links, intra = params
    return generate_synthetic_collection(
        SyntheticSpec(
            documents=docs,
            mean_document_size=size,
            links_per_document=links,
            intra_links_per_document=intra,
            deep_link_fraction=0.5,
            seed=seed,
        )
    )


CONFIGS = [
    FlixConfig.naive(),
    FlixConfig.maximal_ppo(),
    FlixConfig.maximal_ppo(single_tree=True),
    FlixConfig.unconnected_hopi(10),
    FlixConfig.hybrid(10),
]


@given(collection_params)
@settings(max_examples=20, deadline=None)
def test_descendant_sets_match_oracle_for_all_configs(params):
    collection = make_collection(params)
    oracle = transitive_closure(collection.graph)
    node_ids = list(collection.node_ids())
    probes = node_ids[:: max(1, len(node_ids) // 10)]
    for config in CONFIGS:
        flix = Flix.build(collection, config)
        for start in probes:
            results = list(flix.find_descendants(start))
            got = {r.node for r in results}
            expected = set(oracle.descendants(start)) - {start}
            assert got == expected, (config.name, start)
            assert len(results) == len(got), (config.name, "duplicates")
            for r in results:
                assert r.distance >= oracle.distance(start, r.node)


@given(collection_params)
@settings(max_examples=12, deadline=None)
def test_ancestor_sets_match_oracle(params):
    collection = make_collection(params)
    oracle = transitive_closure(collection.graph)
    node_ids = list(collection.node_ids())
    probes = node_ids[:: max(1, len(node_ids) // 6)]
    for config in (FlixConfig.naive(), FlixConfig.hybrid(10)):
        flix = Flix.build(collection, config)
        for start in probes:
            got = {r.node for r in flix.find_ancestors(start)}
            expected = {
                u for u in node_ids if oracle.reachable(u, start) and u != start
            }
            assert got == expected, (config.name, start)


@given(collection_params)
@settings(max_examples=12, deadline=None)
def test_connection_test_agrees_with_oracle(params):
    collection = make_collection(params)
    oracle = transitive_closure(collection.graph)
    node_ids = list(collection.node_ids())
    flix = Flix.build(collection, FlixConfig.unconnected_hopi(10))
    for u in node_ids[::5]:
        for v in node_ids[::7]:
            got = flix.connection_test(u, v)
            expected = oracle.distance(u, v)
            assert (got is None) == (expected is None)
            if got is not None:
                assert got >= expected


@given(collection_params)
@settings(max_examples=10, deadline=None)
def test_auto_configuration_builds_and_answers(params):
    """Flix.build with no config picks a recommendation that works."""
    collection = make_collection(params)
    oracle = transitive_closure(collection.graph)
    flix = Flix.build(collection)  # automatic configuration
    start = next(iter(collection.node_ids()))
    got = {r.node for r in flix.find_descendants(start)}
    assert got == set(oracle.descendants(start)) - {start}
