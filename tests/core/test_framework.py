"""Unit tests for the Flix facade."""

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.graph.closure import transitive_closure


class TestBuild:
    def test_build_report_exposed(self, figure1_collection, object_layout):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        assert flix.report.config_name == "naive"
        assert flix.size_bytes() == flix.report.total_index_bytes
        assert flix.size_bytes() > 0

    def test_meta_document_of(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        root = figure1_collection.document_root("d01.xml")
        meta = flix.meta_document_of(root)
        assert root in meta

    def test_describe_mentions_config(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.hybrid(60))
        text = flix.describe()
        assert "hybrid" in text
        assert "meta" in text

    def test_monolithic_build(self, figure1_collection):
        flix = Flix.build_monolithic(figure1_collection, "hopi")
        assert len(flix.meta_documents) == 1
        assert flix.meta_documents[0].strategy == "hopi"
        assert flix.report.residual_link_count == 0
        oracle = transitive_closure(figure1_collection.graph)
        start = figure1_collection.document_root("d05.xml")
        got = {r.node for r in flix.find_descendants(start)}
        assert got == set(oracle.descendants(start)) - {start}

    def test_monolithic_results_exactly_ordered(self, figure1_collection):
        """One meta document means no cross-block approximation at all."""
        flix = Flix.build_monolithic(figure1_collection, "hopi")
        oracle = transitive_closure(figure1_collection.graph)
        start = figure1_collection.document_root("d05.xml")
        results = list(flix.find_descendants(start))
        for result in results:
            assert result.distance == oracle.distance(start, result.node)
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_rebuild_with_other_config(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        rebuilt = flix.rebuild(FlixConfig.unconnected_hopi(60))
        assert rebuilt.config.mdb_strategy == "unconnected_hopi"
        assert rebuilt.collection is figure1_collection


class TestStreamedDelivery:
    def test_streamed_results_match_synchronous(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.hybrid(60))
        start = figure1_collection.document_root("d01.xml")
        stream = flix.find_descendants_streamed(start)
        streamed = [r.node for r in stream]
        synchronous = [r.node for r in flix.find_descendants(start)]
        assert streamed == synchronous

    def test_streamed_limit(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        start = figure1_collection.document_root("d01.xml")
        stream = flix.find_descendants_streamed(start, limit=3)
        assert len(list(stream)) == 3
        assert stream.closed

    def test_streamed_cancel(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        start = figure1_collection.document_root("d01.xml")
        stream = flix.find_descendants_streamed(start)
        stream.get(0, timeout=5)
        stream.cancel()
        # the producer notices and closes; iteration terminates
        list(stream)


class TestMonitorIntegration:
    def test_queries_feed_the_monitor(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        start = figure1_collection.document_root("d05.xml")
        assert flix.monitor.query_count == 0
        list(flix.find_descendants(start))
        assert flix.monitor.query_count == 1
        flix.connection_test(start, figure1_collection.document_root("d06.xml"))
        assert flix.monitor.query_count == 2

    def test_tuning_advice_needs_data(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        advice = flix.tuning_advice()
        assert not advice.should_rebuild
        assert "queries" in advice.reason
