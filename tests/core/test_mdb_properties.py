"""Property tests: Meta Document Builder invariants on random collections.

For every configuration and any generated collection:

* specs form a disjoint cover of the element set;
* internal edges stay within their meta document and are real edges;
* Maximal PPO specs are forests;
* every collection edge is either internal to exactly one spec or residual.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FlixConfig
from repro.core.mdb import MetaDocumentBuilder
from repro.datasets.synthetic import SyntheticSpec, generate_synthetic_collection
from repro.graph.treecheck import is_forest

collection_params = st.tuples(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=10),
    st.sampled_from([0.0, 1.0, 3.0]),
    st.sampled_from([0.0, 0.5]),
)

CONFIGS = [
    FlixConfig.naive(),
    FlixConfig.maximal_ppo(),
    FlixConfig.maximal_ppo(single_tree=True),
    FlixConfig.unconnected_hopi(15),
    FlixConfig.hybrid(15),
]


def make_collection(params):
    seed, docs, links, intra = params
    return generate_synthetic_collection(
        SyntheticSpec(
            documents=docs,
            mean_document_size=8,
            links_per_document=links,
            intra_links_per_document=intra,
            deep_link_fraction=0.5,
            seed=seed,
        )
    )


@given(collection_params)
@settings(max_examples=25, deadline=None)
def test_disjoint_cover_for_all_configs(params):
    collection = make_collection(params)
    for config in CONFIGS:
        specs = MetaDocumentBuilder(collection, config).build_specs()
        seen = set()
        for spec in specs:
            assert not (spec.nodes & seen), config.name
            seen |= spec.nodes
        assert seen == set(collection.node_ids()), config.name
        assert [s.meta_id for s in specs] == list(range(len(specs)))


@given(collection_params)
@settings(max_examples=25, deadline=None)
def test_internal_edges_are_real_and_inside(params):
    collection = make_collection(params)
    for config in CONFIGS:
        specs = MetaDocumentBuilder(collection, config).build_specs()
        for spec in specs:
            for u, v in spec.internal_edges:
                assert u in spec.nodes
                assert v in spec.nodes
                assert collection.graph.has_edge(u, v)


@given(collection_params)
@settings(max_examples=25, deadline=None)
def test_maximal_ppo_specs_are_forests(params):
    collection = make_collection(params)
    for config in (FlixConfig.maximal_ppo(), FlixConfig.maximal_ppo(True)):
        specs = MetaDocumentBuilder(collection, config).build_specs()
        for spec in specs:
            assert is_forest(spec.build_graph())


@given(collection_params)
@settings(max_examples=20, deadline=None)
def test_every_edge_internal_at_most_once(params):
    collection = make_collection(params)
    for config in CONFIGS:
        specs = MetaDocumentBuilder(collection, config).build_specs()
        seen_edges = set()
        for spec in specs:
            for edge in spec.internal_edges:
                assert edge not in seen_edges or True  # duplicates within a
                # spec list are tolerated by the builder's graph (idempotent
                # add_edge), but must never appear in two different specs:
            spec_edges = set(spec.internal_edges)
            assert not (spec_edges & seen_edges), config.name
            seen_edges |= spec_edges


@given(collection_params)
@settings(max_examples=15, deadline=None)
def test_subset_scoped_specs_cover_only_the_subset(params):
    collection = make_collection(params)
    documents = sorted(collection.documents)
    half = set(documents[: max(1, len(documents) // 2)])
    for config in CONFIGS:
        specs = MetaDocumentBuilder(collection, config).build_specs(documents=half)
        expected_nodes = set()
        for name in half:
            expected_nodes.update(collection.document_nodes(name))
        covered = set()
        for spec in specs:
            covered |= spec.nodes
        assert covered == expected_nodes, config.name
