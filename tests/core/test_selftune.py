"""Unit tests for the self-tuning monitor."""

import pytest

from repro.core.config import FlixConfig
from repro.core.pee import QueryStats
from repro.core.selftune import QueryLoadMonitor


def stats(links=0, visits=1, results=1):
    return QueryStats(
        meta_document_visits=visits,
        link_traversals=links,
        results_returned=results,
    )


class TestMonitor:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            QueryLoadMonitor(window=0)

    def test_means(self):
        monitor = QueryLoadMonitor()
        monitor.record(stats(links=2, visits=3, results=5))
        monitor.record(stats(links=4, visits=1, results=1))
        assert monitor.query_count == 2
        assert monitor.mean_link_traversals == 3.0
        assert monitor.mean_meta_document_visits == 2.0
        assert monitor.mean_results == 3.0

    def test_empty_means_are_zero(self):
        monitor = QueryLoadMonitor()
        assert monitor.mean_link_traversals == 0.0
        assert monitor.mean_meta_document_visits == 0.0

    def test_window_slides(self):
        monitor = QueryLoadMonitor(window=3)
        for links in (100, 0, 0, 0):
            monitor.record(stats(links=links))
        assert monitor.query_count == 3
        assert monitor.mean_link_traversals == 0.0


class TestAdvice:
    def test_not_enough_data(self):
        monitor = QueryLoadMonitor()
        advice = monitor.advice(FlixConfig.naive(), min_queries=5)
        assert not advice.should_rebuild
        assert advice.recommended_config is None

    def test_healthy_load_no_rebuild(self):
        monitor = QueryLoadMonitor()
        for _ in range(30):
            monitor.record(stats(links=1))
        advice = monitor.advice(FlixConfig.naive(), link_traversal_threshold=8.0)
        assert not advice.should_rebuild
        assert "within the threshold" in advice.reason

    def test_link_heavy_load_triggers_rebuild(self):
        monitor = QueryLoadMonitor()
        for _ in range(30):
            monitor.record(stats(links=50))
        config = FlixConfig.unconnected_hopi(1000)
        advice = monitor.advice(config, link_traversal_threshold=8.0)
        assert advice.should_rebuild
        assert advice.recommended_config is not None
        assert advice.recommended_config.partition_size > config.partition_size

    def test_threshold_is_configurable(self):
        monitor = QueryLoadMonitor()
        for _ in range(30):
            monitor.record(stats(links=5))
        strict = monitor.advice(FlixConfig.naive(), link_traversal_threshold=2.0)
        lax = monitor.advice(FlixConfig.naive(), link_traversal_threshold=10.0)
        assert strict.should_rebuild
        assert not lax.should_rebuild


def truncated_zero_stats():
    """The all-zero truncated row a queue-expired admission produces
    (``FlixService._expired_response``): refused before evaluation."""
    s = QueryStats()
    s._mark("truncated")
    return s


class TestRecordGuard:
    def test_zeroed_truncated_rows_skipped(self):
        monitor = QueryLoadMonitor()
        monitor.record(truncated_zero_stats())
        assert monitor.query_count == 0

    def test_truncated_rows_with_work_recorded(self):
        # a budget that ran out mid-search carries real counters and
        # must keep contributing to the workload statistics
        monitor = QueryLoadMonitor()
        s = QueryStats(meta_document_visits=3, link_traversals=2)
        s._mark("truncated")
        monitor.record(s)
        assert monitor.query_count == 1

    def test_zeroed_rows_do_not_dilute_means(self):
        diluted = QueryLoadMonitor()
        clean = QueryLoadMonitor()
        for _ in range(10):
            row = stats(links=10)
            diluted.record(row)
            clean.record(row)
            diluted.record(truncated_zero_stats())
        assert diluted.mean_link_traversals == clean.mean_link_traversals


class TestWorkloadProfile:
    def make_monitor(self, links=10, pops=30, dropped=10, count=30):
        monitor = QueryLoadMonitor()
        for _ in range(count):
            monitor.record(
                QueryStats(
                    meta_document_visits=2,
                    link_traversals=links,
                    queue_pops=pops,
                    entries_dropped=dropped,
                    results_returned=1,
                )
            )
        return monitor

    def test_profile_condenses_window(self):
        profile = self.make_monitor().profile()
        assert profile.query_count == 30
        assert profile.mean_queue_pops == 30.0
        assert profile.mean_link_traversals == 10.0
        assert profile.duplicate_ratio == pytest.approx(10 / 30)
        assert profile.descendants_heavy

    def test_light_load_not_descendants_heavy(self):
        profile = self.make_monitor(links=1, pops=2, dropped=0).profile()
        assert not profile.descendants_heavy

    def test_bias_flips_long_paths_and_widens_budget(self):
        profile = self.make_monitor().profile()
        config = FlixConfig.unconnected_hopi(1000)
        biased = profile.bias(config)
        assert biased.expect_long_paths
        assert (
            biased.hopi_pairs_per_node_budget
            == config.hopi_pairs_per_node_budget * 2
        )

    def test_bias_inert_on_cold_or_light_profiles(self):
        from repro.core.selftune import WorkloadProfile

        config = FlixConfig.naive()
        assert WorkloadProfile().bias(config) is config
        light = WorkloadProfile(query_count=5, descendants_heavy=False)
        assert light.bias(config) is config

    def test_selector_biases_only_with_explicit_workload(self):
        from repro.core.iss import IndexingStrategySelector

        profile = self.make_monitor().profile()
        config = FlixConfig.unconnected_hopi(1000)
        plain = IndexingStrategySelector(config)
        biased = IndexingStrategySelector(config, workload=profile)
        assert (
            plain._config.hopi_pairs_per_node_budget
            == config.hopi_pairs_per_node_budget
        )
        assert (
            biased._config.hopi_pairs_per_node_budget
            == config.hopi_pairs_per_node_budget * 2
        )


class TestReplanAdvice:
    def make_monitor(self, dropped, pops=20):
        monitor = QueryLoadMonitor()
        for _ in range(30):
            monitor.record(
                QueryStats(
                    meta_document_visits=1,
                    queue_pops=pops,
                    entries_dropped=dropped,
                    results_returned=1,
                )
            )
        return monitor

    def test_duplicate_heavy_load_recommends_planner(self):
        monitor = self.make_monitor(dropped=10)
        advice = monitor.advice(FlixConfig.naive())
        assert advice.should_replan
        assert "with_planner" in advice.replan_reason
        assert advice.recommended_config is not None
        assert advice.recommended_config.planner is not None

    def test_no_replan_when_planner_already_on(self):
        monitor = self.make_monitor(dropped=10)
        advice = monitor.advice(FlixConfig.naive().with_planner())
        assert not advice.should_replan

    def test_no_replan_below_threshold(self):
        monitor = self.make_monitor(dropped=2)
        advice = monitor.advice(FlixConfig.naive())
        assert not advice.should_replan
        assert advice.replan_reason == ""

    def test_replan_composes_with_rebuild_advice(self):
        monitor = QueryLoadMonitor()
        for _ in range(30):
            monitor.record(
                QueryStats(
                    meta_document_visits=1,
                    link_traversals=50,
                    queue_pops=20,
                    entries_dropped=10,
                    results_returned=1,
                )
            )
        advice = monitor.advice(FlixConfig.unconnected_hopi(1000))
        assert advice.should_rebuild and advice.should_replan
        # the replanned recommendation layers onto the rebuild one
        assert advice.recommended_config.planner is not None
        assert advice.recommended_config.partition_size >= 4000
