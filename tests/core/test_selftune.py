"""Unit tests for the self-tuning monitor."""

import pytest

from repro.core.config import FlixConfig
from repro.core.pee import QueryStats
from repro.core.selftune import QueryLoadMonitor


def stats(links=0, visits=1, results=1):
    return QueryStats(
        meta_document_visits=visits,
        link_traversals=links,
        results_returned=results,
    )


class TestMonitor:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            QueryLoadMonitor(window=0)

    def test_means(self):
        monitor = QueryLoadMonitor()
        monitor.record(stats(links=2, visits=3, results=5))
        monitor.record(stats(links=4, visits=1, results=1))
        assert monitor.query_count == 2
        assert monitor.mean_link_traversals == 3.0
        assert monitor.mean_meta_document_visits == 2.0
        assert monitor.mean_results == 3.0

    def test_empty_means_are_zero(self):
        monitor = QueryLoadMonitor()
        assert monitor.mean_link_traversals == 0.0
        assert monitor.mean_meta_document_visits == 0.0

    def test_window_slides(self):
        monitor = QueryLoadMonitor(window=3)
        for links in (100, 0, 0, 0):
            monitor.record(stats(links=links))
        assert monitor.query_count == 3
        assert monitor.mean_link_traversals == 0.0


class TestAdvice:
    def test_not_enough_data(self):
        monitor = QueryLoadMonitor()
        advice = monitor.advice(FlixConfig.naive(), min_queries=5)
        assert not advice.should_rebuild
        assert advice.recommended_config is None

    def test_healthy_load_no_rebuild(self):
        monitor = QueryLoadMonitor()
        for _ in range(30):
            monitor.record(stats(links=1))
        advice = monitor.advice(FlixConfig.naive(), link_traversal_threshold=8.0)
        assert not advice.should_rebuild
        assert "within the threshold" in advice.reason

    def test_link_heavy_load_triggers_rebuild(self):
        monitor = QueryLoadMonitor()
        for _ in range(30):
            monitor.record(stats(links=50))
        config = FlixConfig.unconnected_hopi(1000)
        advice = monitor.advice(config, link_traversal_threshold=8.0)
        assert advice.should_rebuild
        assert advice.recommended_config is not None
        assert advice.recommended_config.partition_size > config.partition_size

    def test_threshold_is_configurable(self):
        monitor = QueryLoadMonitor()
        for _ in range(30):
            monitor.record(stats(links=5))
        strict = monitor.advice(FlixConfig.naive(), link_traversal_threshold=2.0)
        lax = monitor.advice(FlixConfig.naive(), link_traversal_threshold=10.0)
        assert strict.should_rebuild
        assert not lax.should_rebuild
