"""Tests for multi-step path evaluation (Flix.find_path)."""

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.graph.traversal import bfs_distances


@pytest.fixture(scope="module")
def flix(dblp_collection):
    return Flix.build(dblp_collection, FlixConfig.maximal_ppo())


class TestFindPath:
    def test_single_step_equals_find_descendants(self, flix, dblp_collection):
        from repro.datasets.dblp import find_aries

        aries = find_aries(dblp_collection)
        via_path = flix.find_path(aries, ["article"])
        direct = {
            r.node: r.distance
            for r in flix.find_descendants(aries, tag="article")
        }
        assert dict(via_path) == direct

    def test_two_step_path(self, flix, dblp_collection):
        from repro.datasets.dblp import find_aries

        aries = find_aries(dblp_collection)
        # aries//article//author: authors of transitively cited articles
        results = flix.find_path(aries, ["article", "author"])
        assert results
        for node, _distance in results:
            assert dblp_collection.tag(node) == "author"
        # set equality against BFS ground truth
        reachable = bfs_distances(dblp_collection.graph, aries)
        articles = [
            n for n in reachable
            if dblp_collection.tag(n) == "article" and n != aries
        ]
        expected = set()
        for article in articles:
            for n in bfs_distances(dblp_collection.graph, article):
                if dblp_collection.tag(n) == "author":
                    expected.add(n)
        assert {node for node, _ in results} == expected

    def test_results_sorted_by_distance(self, flix, dblp_collection):
        from repro.datasets.dblp import find_aries

        aries = find_aries(dblp_collection)
        results = flix.find_path(aries, ["inproceedings", "cite"])
        distances = [d for _n, d in results]
        assert distances == sorted(distances)

    def test_dead_end_returns_empty(self, flix, dblp_collection):
        from repro.datasets.dblp import find_aries

        aries = find_aries(dblp_collection)
        assert flix.find_path(aries, ["article", "nosuchtag"]) == []
        assert flix.find_path(aries, ["nosuchtag", "article"]) == []

    def test_empty_tags_rejected(self, flix, dblp_collection):
        from repro.datasets.dblp import find_aries

        with pytest.raises(ValueError):
            flix.find_path(find_aries(dblp_collection), [])

    def test_distances_accumulate(self, flix, dblp_collection):
        from repro.datasets.dblp import find_aries

        aries = find_aries(dblp_collection)
        one_step = dict(flix.find_path(aries, ["article"]))
        two_step = dict(flix.find_path(aries, ["article", "title"]))
        for node, distance in two_step.items():
            # every final title is at least one hop beyond some article
            assert distance >= min(one_step.values()) + 1
