"""Incremental maintenance v2: atomic layout snapshots, remove/update/
batch growth, and online compaction (docs/MAINTENANCE.md)."""

import pytest

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument
from repro.core.api import QueryRequest
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.graph.closure import transitive_closure


def doc(name, text):
    return XmlDocument.from_text(name, text)


def base_documents():
    return [
        doc("a.xml", '<doc><l xlink:href="b.xml"/><p>alpha</p></doc>'),
        doc("b.xml", "<doc><p>beta</p></doc>"),
        doc("c.xml", '<doc><l xlink:href="b.xml"/><p>gamma</p></doc>'),
    ]


@pytest.fixture()
def flix():
    return Flix.build(build_collection(base_documents()), FlixConfig.naive())


def descendant_nodes(flix, start):
    return {r.node for r in flix.find_descendants(start)}


def oracle_descendants(collection, start):
    oracle = transitive_closure(collection.graph)
    return set(oracle.descendants(start)) - {start}


class TestLayoutSnapshots:
    def test_generation_bumps_per_verb(self, flix):
        assert flix.layout_generation == 0
        flix.add_document(doc("d.xml", "<doc><p>delta</p></doc>"))
        assert flix.layout_generation == 1
        flix.remove_document("d.xml")
        assert flix.layout_generation == 2
        flix.add_documents(
            [doc("e.xml", "<doc/>"), doc("f.xml", "<doc/>")]
        )
        assert flix.layout_generation == 3  # one swap for the whole batch

    def test_layout_snapshot_is_immutable_view(self, flix):
        pinned = flix.layout
        flix.add_document(doc("d.xml", "<doc><p>delta</p></doc>"))
        assert flix.layout is not pinned
        assert pinned.generation == 0
        assert len(pinned.slots) == len(flix.layout.slots) - 1

    def test_response_carries_layout_generation(self, flix):
        start = flix.collection.document_root("a.xml")
        assert flix.query(QueryRequest.descendants(start)).layout_generation == 0
        flix.add_document(doc("d.xml", "<doc/>"))
        assert flix.query(QueryRequest.descendants(start)).layout_generation == 1

    def test_swap_metrics(self, flix):
        flix.add_document(doc("d.xml", "<doc/>"))
        flix.remove_document("d.xml")
        rendered = flix.export_metrics("prom")
        assert 'flix_layout_swaps_total{verb="add"} 1' in rendered
        assert 'flix_layout_swaps_total{verb="remove"} 1' in rendered
        assert "flix_layout_generation 2" in rendered


class TestRemoveDocument:
    def test_queries_stop_seeing_removed_document(self, flix):
        collection = flix.collection
        start = collection.document_root("a.xml")
        removed = flix.remove_document("b.xml")
        assert len(removed) == 2
        got = descendant_nodes(flix, start)
        assert got == oracle_descendants(collection, start)
        assert not (got & removed)

    def test_removed_node_query_raises(self, flix):
        target = flix.collection.document_root("b.xml")
        flix.remove_document("b.xml")
        with pytest.raises(KeyError):
            list(flix.find_descendants(target))

    def test_links_into_removed_document_redangle(self, flix):
        collection = flix.collection
        flix.remove_document("b.xml")
        # a.xml and c.xml both linked to b.xml; both links dangle again
        assert len(collection.unresolved_links) == 2
        # a replacement re-resolves them
        flix.add_document(doc("b.xml", "<doc><p>beta2</p></doc>"))
        assert collection.unresolved_links == []
        start = collection.document_root("a.xml")
        texts = {
            collection.text(r.node)
            for r in flix.find_descendants(start, tag="p")
        }
        assert texts == {"alpha", "beta2"}

    def test_singleton_meta_is_tombstoned(self, flix):
        meta = flix.add_document(doc("d.xml", "<doc><p>delta</p></doc>"))
        flix.remove_document("d.xml")
        assert meta.meta_id in flix.layout.tombstones
        assert flix.layout.slots[meta.meta_id] is None
        with pytest.raises(KeyError):
            flix.layout.meta(meta.meta_id)

    def test_partial_meta_is_reindexed(self):
        # a large partition budget puts the whole collection into one
        # meta document, so removal exercises the partial re-index path
        collection = build_collection(base_documents())
        flix = Flix.build(
            collection, FlixConfig.unconnected_hopi(partition_size=100)
        )
        assert len(flix.meta_documents) == 1
        flix.remove_document("c.xml")
        assert len(flix.meta_documents) == 1
        assert flix.layout.tombstones == frozenset()
        flix.self_check()

    def test_unknown_document_raises(self, flix):
        with pytest.raises(KeyError):
            flix.remove_document("missing.xml")

    def test_residual_links_pruned(self, flix):
        flix.add_document(
            doc("d.xml", '<doc><l xlink:href="b.xml"/><p>delta</p></doc>')
        )
        before = flix.report.residual_link_count
        assert before >= 1
        flix.remove_document("d.xml")
        assert flix.report.residual_link_count < before
        for meta in flix.meta_documents:
            for source, targets in meta.outgoing_links.items():
                assert source in meta.nodes
                for target in targets:
                    assert flix.collection.info(target) is not None


class TestUpdateDocument:
    def test_replacement_visible_links_rewired(self, flix):
        collection = flix.collection
        flix.update_document(
            doc("b.xml", '<doc><l xlink:href="c.xml"/><p>beta2</p></doc>')
        )
        start = collection.document_root("a.xml")
        texts = {
            collection.text(r.node)
            for r in flix.find_descendants(start, tag="p")
        }
        # a -> b (re-resolved) -> c (the new outgoing link)
        assert texts == {"alpha", "beta2", "gamma"}
        flix.self_check()

    def test_two_publishes(self, flix):
        flix.update_document(doc("b.xml", "<doc><p>beta2</p></doc>"))
        assert flix.layout_generation == 2  # remove + add


class TestAddDocumentsBatch:
    def test_batch_members_link_to_each_other(self, flix):
        collection = flix.collection
        metas = flix.add_documents(
            [
                doc("d.xml", '<doc><l xlink:href="e.xml"/><p>dd</p></doc>'),
                doc("e.xml", '<doc><l xlink:href="d.xml"/><p>ee</p></doc>'),
            ]
        )
        assert [m.meta_id for m in metas] == [3, 4]
        start = collection.document_root("d.xml")
        texts = {
            collection.text(r.node)
            for r in flix.find_descendants(start, tag="p")
        }
        assert texts == {"dd", "ee"}
        flix.self_check()

    def test_batch_equivalent_to_sequential(self):
        batch = Flix.build(
            build_collection(base_documents()), FlixConfig.naive()
        )
        sequential = Flix.build(
            build_collection(base_documents()), FlixConfig.naive()
        )
        new_docs = [
            doc("d.xml", '<doc><l xlink:href="a.xml"/><p>dd</p></doc>'),
            doc("e.xml", '<doc><l xlink:href="d.xml"/><p>ee</p></doc>'),
        ]
        batch.add_documents(new_docs)
        for document in [
            doc("d.xml", '<doc><l xlink:href="a.xml"/><p>dd</p></doc>'),
            doc("e.xml", '<doc><l xlink:href="d.xml"/><p>ee</p></doc>'),
        ]:
            sequential.add_document(document)
        for name in batch.collection.documents:
            start = batch.collection.document_root(name)
            assert descendant_nodes(batch, start) == descendant_nodes(
                sequential, start
            )

    def test_empty_batch_is_a_noop(self, flix):
        assert flix.add_documents([]) == []
        assert flix.layout_generation == 0

    def test_batch_failure_rolls_back_every_member(self, flix):
        collection = flix.collection
        docs_before = set(collection.documents)
        nodes_before = collection.node_count
        unresolved_before = list(collection.unresolved_links)
        with pytest.raises(ValueError):
            flix.add_documents(
                [
                    doc("d.xml", "<doc><p>dd</p></doc>"),
                    doc("a.xml", "<doc/>"),  # duplicate name -> fails
                ]
            )
        assert set(collection.documents) == docs_before
        assert collection.node_count == nodes_before
        assert collection.unresolved_links == unresolved_before
        assert flix.layout_generation == 0
        flix.self_check()


class TestCompact:
    def grow(self, flix, n=4):
        for i in range(n):
            flix.add_document(
                doc(
                    f"inc{i}.xml",
                    '<doc><l xlink:href="b.xml"/><p>inc%d</p></doc>' % i,
                )
            )

    def test_candidates_merge_into_one_meta(self, flix):
        self.grow(flix)
        collection = flix.collection
        starts = {
            name: collection.document_root(name)
            for name in collection.documents
        }
        before = {
            name: descendant_nodes(flix, start)
            for name, start in starts.items()
        }
        candidates = flix.layout.compaction_candidates()
        assert len(candidates) == 4
        merged = flix.compact()
        assert merged is not None
        assert set(candidates) <= flix.layout.tombstones
        assert flix.layout.compaction_candidates() == []
        for name, start in starts.items():
            assert descendant_nodes(flix, start) == before[name]
        flix.self_check()

    def test_absorbs_inter_candidate_links(self, flix):
        flix.add_document(doc("d.xml", "<doc><p>dd</p></doc>"))
        flix.add_document(
            doc("e.xml", '<doc><l xlink:href="d.xml"/><p>ee</p></doc>')
        )
        residual_before = flix.report.residual_link_count
        merged = flix.compact()
        # the e->d link was residual between two singleton metas and is
        # now internal to the merged index (naive() allows graph indexes)
        assert flix.report.residual_link_count < residual_before
        assert merged.residual_out_degree < residual_before
        flix.self_check()

    def test_too_few_candidates_is_a_noop(self, flix):
        assert flix.compact() is None
        flix.add_document(doc("d.xml", "<doc/>"))
        assert flix.compact() is None
        assert flix.layout_generation == 1

    def test_explicit_ids_validated(self, flix):
        self.grow(flix, 2)
        with pytest.raises(KeyError):
            flix.compact([1, 99])

    def test_compaction_metric_and_trace(self, flix):
        self.grow(flix, 2)
        flix.compact()
        assert "flix_compactions_total" in flix.export_metrics("prom")
        trace = flix.obs.tracer.last_trace("mdb.compact")
        assert trace is not None
        span_names = {span.name for span in trace.spans}
        assert {"select", "index"} <= span_names

    def test_tuning_advice_flags_compaction(self, flix):
        self.grow(flix, 4)
        advice = flix.tuning_advice(compaction_threshold=4)
        assert advice.should_compact
        assert len(advice.compaction_candidates) == 4
        below = flix.tuning_advice(compaction_threshold=5)
        assert not below.should_compact

    def test_compacted_meta_not_a_future_candidate(self, flix):
        self.grow(flix, 3)
        merged = flix.compact()
        assert merged.meta_id not in flix.layout.incremental_meta_ids
        advice = flix.tuning_advice(compaction_threshold=2)
        assert not advice.should_compact


class TestFingerprintDeterminism:
    def mutate(self, flix):
        flix.add_document(doc("d.xml", '<doc><l xlink:href="b.xml"/></doc>'))
        flix.add_documents(
            [doc("e.xml", "<doc/>"), doc("f.xml", "<doc><p>ff</p></doc>")]
        )
        flix.compact()
        flix.remove_document("c.xml")

    def test_same_sequence_same_fingerprint(self):
        one = Flix.build(
            build_collection(base_documents()), FlixConfig.naive()
        )
        two = Flix.build(
            build_collection(base_documents()), FlixConfig.naive()
        )
        self.mutate(one)
        self.mutate(two)
        assert one.index_fingerprint() == two.index_fingerprint()
        one.self_check()

    def test_mutation_changes_fingerprint(self, flix):
        before = flix.index_fingerprint()
        flix.remove_document("c.xml")
        assert flix.index_fingerprint() != before


class TestMaintenancePersistence:
    def test_mutated_layout_round_trips(self, tmp_path):
        collection = build_collection(base_documents())
        flix = Flix.build(collection, FlixConfig.naive())
        flix.add_document(doc("d.xml", '<doc><l xlink:href="b.xml"/></doc>'))
        flix.add_documents([doc("e.xml", "<doc/>"), doc("f.xml", "<doc/>")])
        flix.compact()
        flix.remove_document("c.xml")
        flix.save(tmp_path)
        loaded = Flix.load(collection, tmp_path)
        assert loaded.layout_generation == flix.layout_generation
        assert loaded.layout.tombstones == flix.layout.tombstones
        assert (
            loaded.layout.incremental_meta_ids
            == flix.layout.incremental_meta_ids
        )
        assert loaded.index_fingerprint() == flix.index_fingerprint()
        loaded.self_check()

    def test_loaded_index_keeps_mutating(self, tmp_path):
        collection = build_collection(base_documents())
        flix = Flix.build(collection, FlixConfig.naive())
        flix.add_document(doc("d.xml", "<doc><p>dd</p></doc>"))
        flix.save(tmp_path)
        loaded = Flix.load(collection, tmp_path)
        loaded.add_document(doc("e.xml", "<doc><p>ee</p></doc>"))
        loaded.remove_document("d.xml")
        loaded.self_check()

    def test_resave_drops_orphaned_meta_files(self, tmp_path):
        collection = build_collection(base_documents())
        flix = Flix.build(collection, FlixConfig.naive())
        flix.add_document(doc("d.xml", "<doc/>"))
        flix.add_document(doc("e.xml", "<doc/>"))
        flix.save(tmp_path)
        flix.compact()
        flix.save(tmp_path)
        names = {p.name for p in tmp_path.glob("meta_*.sqlite")}
        assert names == {
            f"meta_{meta.meta_id:04d}.sqlite"
            for meta in flix.meta_documents
        }
        loaded = Flix.load(collection, tmp_path)
        assert loaded.index_fingerprint() == flix.index_fingerprint()
