"""Tests for incremental document addition (Flix.add_document)."""

import pytest

from repro.collection.builder import build_collection, register_document
from repro.collection.document import XmlDocument
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.graph.closure import transitive_closure


def doc(name, text):
    return XmlDocument.from_text(name, text)


@pytest.fixture()
def base_collection():
    return build_collection(
        [
            doc("a.xml", '<doc><l xlink:href="b.xml"/><p>alpha</p></doc>'),
            doc("b.xml", "<doc><p>beta</p></doc>"),
            doc(
                "c.xml",
                '<doc><l xlink:href="future.xml"/><p>gamma</p></doc>',
            ),
        ]
    )


class TestRegisterDocument:
    def test_new_nodes_appended(self, base_collection):
        before = base_collection.node_count
        register_document(base_collection, doc("d.xml", "<doc><p>delta</p></doc>"))
        assert base_collection.node_count == before + 2
        assert "d.xml" in base_collection.documents

    def test_new_document_links_resolved(self, base_collection):
        edges = register_document(
            base_collection,
            doc("d.xml", '<doc><l xlink:href="a.xml"/></doc>'),
        )
        assert len(edges) == 1
        (u, v) = edges[0]
        assert v == base_collection.document_root("a.xml")

    def test_previously_dangling_link_resolves(self, base_collection):
        assert len(base_collection.unresolved_links) == 1  # c -> future.xml
        edges = register_document(
            base_collection, doc("future.xml", "<doc><p>future</p></doc>")
        )
        assert base_collection.unresolved_links == []
        targets = {v for _u, v in edges}
        assert base_collection.document_root("future.xml") in targets

    def test_duplicate_name_rejected(self, base_collection):
        with pytest.raises(ValueError):
            register_document(base_collection, doc("a.xml", "<doc/>"))


class TestFlixAddDocument:
    def test_query_sees_new_document(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.naive())
        flix.add_document(
            doc("d.xml", '<doc><l xlink:href="a.xml"/><p>delta</p></doc>')
        )
        start = base_collection.document_root("d.xml")
        texts = {
            base_collection.text(r.node)
            for r in flix.find_descendants(start, tag="p")
        }
        assert texts == {"alpha", "beta", "delta"}

    def test_incremental_matches_full_rebuild(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.naive())
        new_doc = doc(
            "future.xml",
            '<doc><l xlink:href="b.xml"/><p>future</p></doc>',
        )
        flix.add_document(new_doc)
        oracle = transitive_closure(base_collection.graph)
        for name in base_collection.documents:
            start = base_collection.document_root(name)
            got = {r.node for r in flix.find_descendants(start)}
            assert got == set(oracle.descendants(start)) - {start}

    def test_old_documents_can_reach_new_one(self, base_collection):
        """c.xml's dangling link resolves on addition; queries follow it."""
        flix = Flix.build(base_collection, FlixConfig.naive())
        flix.add_document(doc("future.xml", "<doc><p>future</p></doc>"))
        start = base_collection.document_root("c.xml")
        texts = {
            base_collection.text(r.node)
            for r in flix.find_descendants(start, tag="p")
        }
        assert "future" in texts

    def test_report_extended(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.naive())
        metas_before = len(flix.report.meta_documents)
        residual_before = flix.report.residual_link_count
        flix.add_document(doc("d.xml", '<doc><l xlink:href="a.xml"/></doc>'))
        assert len(flix.report.meta_documents) == metas_before + 1
        assert flix.report.residual_link_count == residual_before + 1
        assert "incrementally" in flix.report.meta_documents[-1].rationale

    def test_ppo_only_config_leaves_intra_links_residual(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.maximal_ppo())
        meta = flix.add_document(
            doc("d.xml", '<doc><s id="x"><p>in</p></s><r idref="x"/></doc>')
        )
        assert meta.strategy == "ppo"
        start = base_collection.document_root("d.xml")
        got = {r.node for r in flix.find_descendants(start, tag="p")}
        assert len(got) == 1  # intra link followed at run time

    def test_cache_invalidated(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.naive())
        flix.enable_cache()
        start = base_collection.document_root("a.xml")
        before = {r.node for r in flix.find_descendants(start, tag="p")}
        flix.add_document(
            doc("d.xml", "<doc><p>delta</p></doc>")
        )
        # b.xml gained no links, a.xml unchanged -> same answer, but the
        # cache must have been dropped rather than serving stale objects
        after = {r.node for r in flix.find_descendants(start, tag="p")}
        assert after == before
        assert flix.cache_hits == 0

    def test_monolithic_rejects_add(self, base_collection):
        flix = Flix.build_monolithic(base_collection, "hopi")
        with pytest.raises(RuntimeError):
            flix.add_document(doc("d.xml", "<doc/>"))

    def test_many_additions_stay_consistent(self):
        collection = build_collection([doc("d000.xml", "<doc><p>p0</p></doc>")])
        flix = Flix.build(collection, FlixConfig.naive())
        for i in range(1, 12):
            flix.add_document(
                doc(
                    f"d{i:03d}.xml",
                    f'<doc><l xlink:href="d{i - 1:03d}.xml"/><p>p{i}</p></doc>',
                )
            )
        oracle = transitive_closure(collection.graph)
        start = collection.document_root("d011.xml")
        got = {r.node for r in flix.find_descendants(start, tag="p")}
        expected = {
            v
            for v in oracle.descendants(start)
            if collection.tag(v) == "p"
        }
        assert got == expected
        assert len(got) == 12
