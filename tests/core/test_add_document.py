"""Tests for incremental document addition (Flix.add_document)."""

import pytest

from repro.collection.builder import build_collection, register_document
from repro.collection.document import XmlDocument
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.graph.closure import transitive_closure


def doc(name, text):
    return XmlDocument.from_text(name, text)


@pytest.fixture()
def base_collection():
    return build_collection(
        [
            doc("a.xml", '<doc><l xlink:href="b.xml"/><p>alpha</p></doc>'),
            doc("b.xml", "<doc><p>beta</p></doc>"),
            doc(
                "c.xml",
                '<doc><l xlink:href="future.xml"/><p>gamma</p></doc>',
            ),
        ]
    )


class TestRegisterDocument:
    def test_new_nodes_appended(self, base_collection):
        before = base_collection.node_count
        register_document(base_collection, doc("d.xml", "<doc><p>delta</p></doc>"))
        assert base_collection.node_count == before + 2
        assert "d.xml" in base_collection.documents

    def test_new_document_links_resolved(self, base_collection):
        edges = register_document(
            base_collection,
            doc("d.xml", '<doc><l xlink:href="a.xml"/></doc>'),
        )
        assert len(edges) == 1
        (u, v) = edges[0]
        assert v == base_collection.document_root("a.xml")

    def test_previously_dangling_link_resolves(self, base_collection):
        assert len(base_collection.unresolved_links) == 1  # c -> future.xml
        edges = register_document(
            base_collection, doc("future.xml", "<doc><p>future</p></doc>")
        )
        assert base_collection.unresolved_links == []
        targets = {v for _u, v in edges}
        assert base_collection.document_root("future.xml") in targets

    def test_duplicate_name_rejected(self, base_collection):
        with pytest.raises(ValueError):
            register_document(base_collection, doc("a.xml", "<doc/>"))


class TestRegisterDocumentRetryLoop:
    def test_own_failed_links_not_retried_in_same_call(
        self, base_collection, monkeypatch
    ):
        """A link that failed to resolve in this call must not be looked
        up again by the same call's dangling-link retry loop."""
        import repro.collection.builder as builder_module

        original = builder_module._resolve
        attempts = []

        def counting_resolve(collection, document, link):
            attempts.append(link)
            return original(collection, document, link)

        monkeypatch.setattr(builder_module, "_resolve", counting_resolve)
        new = doc(
            "d.xml",
            '<doc><l xlink:href="gone1.xml"/><l xlink:href="gone2.xml"/>'
            '<l xlink:href="gone3.xml"/></doc>',
        )
        register_document(base_collection, new)
        own_failed = [
            link for link in attempts
            if link.target_document in {"gone1.xml", "gone2.xml", "gone3.xml"}
        ]
        # each dangling link of the new document: exactly one resolution
        assert len(own_failed) == 3
        assert len({id(link) for link in own_failed}) == 3
        # and they still queue up for future documents to satisfy
        assert len(base_collection.unresolved_links) == 4  # 1 old + 3 new

    def test_failed_links_resolve_on_later_addition(self, base_collection):
        register_document(
            base_collection, doc("d.xml", '<doc><l xlink:href="gone.xml"/></doc>')
        )
        edges = register_document(
            base_collection, doc("gone.xml", "<doc/>")
        )
        targets = {v for _u, v in edges}
        assert base_collection.document_root("gone.xml") in targets


class TestAddDocumentRollback:
    def test_failed_index_build_rolls_back_collection(self, base_collection):
        """``add_document`` must be atomic: an index-build failure leaves
        no trace in the collection graph or the dangling-link list."""
        from repro.faults import FaultPlan, FaultyFactory
        from repro.storage.memory import MemoryBackend

        flix = Flix.build(base_collection, FlixConfig.naive())
        docs_before = set(base_collection.documents)
        nodes_before = base_collection.node_count
        edges_before = base_collection.graph.edge_count
        unresolved_before = list(base_collection.unresolved_links)
        fingerprint_before = flix.index_fingerprint()

        flix._backend_factory = FaultyFactory(
            MemoryBackend, FaultPlan(write_error_rate=1.0)
        )
        with pytest.raises(Exception):
            flix.add_document(
                # future.xml also satisfies c.xml's dangling link, so the
                # rollback must re-dangle it too
                doc("future.xml", '<doc><l xlink:href="a.xml"/></doc>')
            )
        assert set(base_collection.documents) == docs_before
        assert base_collection.node_count == nodes_before
        assert base_collection.graph.edge_count == edges_before
        assert base_collection.unresolved_links == unresolved_before
        assert flix.index_fingerprint() == fingerprint_before
        assert flix.layout_generation == 0

        # the instance stays fully usable once the fault clears
        flix._backend_factory = MemoryBackend
        flix.add_document(doc("future.xml", "<doc><p>future</p></doc>"))
        assert base_collection.unresolved_links == []
        flix.self_check()


class TestRebuildBackendFactory:
    def test_rebuild_defaults_to_original_factory(
        self, base_collection, tmp_path, object_layout
    ):
        """A sqlite-backed index must not silently migrate to memory
        backends on ``rebuild()``."""
        from repro.storage.sqlite_backend import SqliteBackend

        flix = Flix.build(base_collection, FlixConfig.naive())
        flix.save(tmp_path)
        loaded = Flix.load(base_collection, tmp_path)
        rebuilt = loaded.rebuild()
        backends = {
            type(meta.index.backend).__name__
            for meta in rebuilt.meta_documents
        }
        assert backends == {"SqliteBackend"}
        assert rebuilt._raw_backend_factory is SqliteBackend

    def test_explicit_factory_still_wins(self, base_collection, object_layout):
        from repro.storage.memory import MemoryBackend

        flix = Flix.build(base_collection, FlixConfig.naive())
        rebuilt = flix.rebuild(backend_factory=MemoryBackend)
        backends = {
            type(meta.index.backend).__name__
            for meta in rebuilt.meta_documents
        }
        assert backends == {"MemoryBackend"}


class TestFlixAddDocument:
    def test_query_sees_new_document(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.naive())
        flix.add_document(
            doc("d.xml", '<doc><l xlink:href="a.xml"/><p>delta</p></doc>')
        )
        start = base_collection.document_root("d.xml")
        texts = {
            base_collection.text(r.node)
            for r in flix.find_descendants(start, tag="p")
        }
        assert texts == {"alpha", "beta", "delta"}

    def test_incremental_matches_full_rebuild(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.naive())
        new_doc = doc(
            "future.xml",
            '<doc><l xlink:href="b.xml"/><p>future</p></doc>',
        )
        flix.add_document(new_doc)
        oracle = transitive_closure(base_collection.graph)
        for name in base_collection.documents:
            start = base_collection.document_root(name)
            got = {r.node for r in flix.find_descendants(start)}
            assert got == set(oracle.descendants(start)) - {start}

    def test_old_documents_can_reach_new_one(self, base_collection):
        """c.xml's dangling link resolves on addition; queries follow it."""
        flix = Flix.build(base_collection, FlixConfig.naive())
        flix.add_document(doc("future.xml", "<doc><p>future</p></doc>"))
        start = base_collection.document_root("c.xml")
        texts = {
            base_collection.text(r.node)
            for r in flix.find_descendants(start, tag="p")
        }
        assert "future" in texts

    def test_report_extended(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.naive())
        metas_before = len(flix.report.meta_documents)
        residual_before = flix.report.residual_link_count
        flix.add_document(doc("d.xml", '<doc><l xlink:href="a.xml"/></doc>'))
        assert len(flix.report.meta_documents) == metas_before + 1
        assert flix.report.residual_link_count == residual_before + 1
        assert "incrementally" in flix.report.meta_documents[-1].rationale

    def test_ppo_only_config_leaves_intra_links_residual(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.maximal_ppo())
        meta = flix.add_document(
            doc("d.xml", '<doc><s id="x"><p>in</p></s><r idref="x"/></doc>')
        )
        assert meta.strategy == "ppo"
        start = base_collection.document_root("d.xml")
        got = {r.node for r in flix.find_descendants(start, tag="p")}
        assert len(got) == 1  # intra link followed at run time

    def test_cache_invalidated(self, base_collection):
        flix = Flix.build(base_collection, FlixConfig.naive())
        flix.enable_cache()
        start = base_collection.document_root("a.xml")
        before = {r.node for r in flix.find_descendants(start, tag="p")}
        flix.add_document(
            doc("d.xml", "<doc><p>delta</p></doc>")
        )
        # b.xml gained no links, a.xml unchanged -> same answer, but the
        # cache must have been dropped rather than serving stale objects
        after = {r.node for r in flix.find_descendants(start, tag="p")}
        assert after == before
        assert flix.cache_hits == 0

    def test_monolithic_rejects_add(self, base_collection):
        flix = Flix.build_monolithic(base_collection, "hopi")
        with pytest.raises(RuntimeError):
            flix.add_document(doc("d.xml", "<doc/>"))

    def test_many_additions_stay_consistent(self):
        collection = build_collection([doc("d000.xml", "<doc><p>p0</p></doc>")])
        flix = Flix.build(collection, FlixConfig.naive())
        for i in range(1, 12):
            flix.add_document(
                doc(
                    f"d{i:03d}.xml",
                    f'<doc><l xlink:href="d{i - 1:03d}.xml"/><p>p{i}</p></doc>',
                )
            )
        oracle = transitive_closure(collection.graph)
        start = collection.document_root("d011.xml")
        got = {r.node for r in flix.find_descendants(start, tag="p")}
        expected = {
            v
            for v in oracle.descendants(start)
            if collection.tag(v) == "p"
        }
        assert got == expected
        assert len(got) == 12
