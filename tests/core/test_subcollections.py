"""Tests for automatic subcollection detection and per-part configuration."""

import pytest

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument
from repro.core.subcollections import (
    build_auto_partitioned,
    identify_subcollections,
)
from repro.graph.closure import transitive_closure


def mixed_collection():
    """Two obviously different families: flat records vs deep linked docs."""
    documents = []
    for i in range(6):
        documents.append(
            XmlDocument.from_text(
                f"rec{i}.xml",
                f"<record><field>a{i}</field><field>b{i}</field></record>",
            )
        )
    for i in range(4):
        target = f"page{(i + 1) % 4}.xml"
        documents.append(
            XmlDocument.from_text(
                f"page{i}.xml",
                f'<page><section><para id="p{i}">text</para>'
                f'<ref idref="p{i}"/></section>'
                f'<nav><link xlink:href="{target}"/></nav></page>',
            )
        )
    return build_collection(documents)


class TestIdentify:
    def test_families_separated(self):
        collection = mixed_collection()
        subcollections = identify_subcollections(collection)
        groups = {frozenset(s.documents) for s in subcollections}
        record_docs = frozenset(f"rec{i}.xml" for i in range(6))
        page_docs = frozenset(f"page{i}.xml" for i in range(4))
        assert record_docs in groups
        assert page_docs in groups

    def test_disjoint_cover(self):
        collection = mixed_collection()
        subcollections = identify_subcollections(collection)
        seen = []
        for subcollection in subcollections:
            seen.extend(subcollection.documents)
        assert sorted(seen) == sorted(collection.documents)

    def test_configs_match_shape(self):
        collection = mixed_collection()
        by_doc = {
            frozenset(s.documents): s for s in identify_subcollections(collection)
        }
        records = by_doc[frozenset(f"rec{i}.xml" for i in range(6))]
        pages = by_doc[frozenset(f"page{i}.xml" for i in range(4))]
        # link-free flat records -> a PPO-friendly configuration
        assert records.config.mdb_strategy == "maximal_ppo"
        # linked pages -> a configuration that can index links
        assert pages.config.mdb_strategy in ("unconnected_hopi", "hybrid", "naive")
        assert any(s != "ppo" for s in pages.config.allowed_strategies)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            identify_subcollections(mixed_collection(), similarity_threshold=0.0)

    def test_threshold_one_gives_near_singletons(self):
        collection = mixed_collection()
        strict = identify_subcollections(collection, similarity_threshold=1.0)
        loose = identify_subcollections(collection, similarity_threshold=0.3)
        assert len(strict) >= len(loose)

    def test_stats_and_summary(self):
        for subcollection in identify_subcollections(mixed_collection()):
            assert subcollection.stats.element_count > 0
            assert "documents" in subcollection.summary()

    def test_homogeneous_dblp_collapses(self, dblp_collection):
        subcollections = identify_subcollections(dblp_collection)
        # two record kinds (article / inproceedings) -> very few clusters
        assert len(subcollections) <= 4


class TestBuildAutoPartitioned:
    def test_answers_match_oracle(self):
        collection = mixed_collection()
        flix, subcollections = build_auto_partitioned(collection)
        assert len(subcollections) >= 2
        oracle = transitive_closure(collection.graph)
        for name in collection.documents:
            start = collection.document_root(name)
            got = {r.node for r in flix.find_descendants(start)}
            assert got == set(oracle.descendants(start)) - {start}

    def test_mixed_strategies_in_one_index(self):
        collection = mixed_collection()
        flix, _subcollections = build_auto_partitioned(collection)
        strategies = {m.strategy for m in flix.meta_documents}
        assert "ppo" in strategies  # the record family
        assert len(strategies) >= 1

    def test_incremental_growth_still_works(self):
        collection = mixed_collection()
        flix, _ = build_auto_partitioned(collection)
        flix.add_document(
            XmlDocument.from_text(
                "extra.xml", '<page><nav><link xlink:href="page0.xml"/></nav></page>'
            )
        )
        start = collection.document_root("extra.xml")
        results = {r.node for r in flix.find_descendants(start)}
        assert collection.document_root("page0.xml") in results

    def test_on_figure1(self, figure1_collection):
        flix, subcollections = build_auto_partitioned(figure1_collection)
        oracle = transitive_closure(figure1_collection.graph)
        start = figure1_collection.document_root("d05.xml")
        got = {r.node for r in flix.find_descendants(start)}
        assert got == set(oracle.descendants(start)) - {start}
