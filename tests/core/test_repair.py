"""Self-healing persistence: checksums, integrity verification, repair."""

import json

import pytest

from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.persistence import (
    IntegrityError,
    PersistenceError,
    load_flix,
    repair_flix,
    save_flix,
    verify_flix,
)


@pytest.fixture()
def saved(figure1_collection, tmp_path):
    config = FlixConfig.hybrid(40).with_resilience(max_link_hops=5000)
    flix = Flix.build(figure1_collection, config)
    directory = tmp_path / "idx"
    save_flix(flix, directory)
    return figure1_collection, directory, flix.index_fingerprint()


class TestIntegritySection:
    def test_manifest_records_per_file_checksums(self, saved):
        _, directory, _ = saved
        manifest = json.loads((directory / "manifest.json").read_text())
        files = manifest["integrity"]["files"]
        on_disk = {
            p.name
            for p in directory.iterdir()
            if p.suffix in (".sqlite", ".pack")
        }
        assert set(files) == on_disk
        assert all(len(v) == 64 for v in files.values())  # sha256 hex

    def test_intact_save_verifies_clean(self, saved):
        collection, directory, _ = saved
        assert verify_flix(collection, directory) == []

    def test_resilience_config_round_trips(self, saved):
        collection, directory, _ = saved
        loaded = load_flix(collection, directory)
        assert loaded.config.resilience is not None
        assert loaded.config.resilience.max_link_hops == 5000

    def test_save_refuses_unindexed_meta(self, figure1_collection, tmp_path):
        flix = Flix.build(figure1_collection, FlixConfig.naive())
        flix.meta_documents[0].index = None
        with pytest.raises(PersistenceError, match="no index"):
            save_flix(flix, tmp_path / "broken")


class TestVerificationOnLoad:
    def test_corrupted_file_rejected_by_name(self, saved):
        collection, directory, _ = saved
        victim = sorted(directory.glob("meta_*.sqlite"))[1]
        victim.write_bytes(b"\x00garbage\x00" * 64)
        with pytest.raises(IntegrityError) as excinfo:
            load_flix(collection, directory)
        assert excinfo.value.damaged == [victim.name]

    def test_missing_file_rejected(self, saved):
        collection, directory, _ = saved
        (directory / "framework.sqlite").unlink()
        assert verify_flix(collection, directory) == ["framework.sqlite"]

    def test_silent_row_tamper_detected(self, saved):
        import sqlite3

        collection, directory, _ = saved
        victim = sorted(directory.glob("meta_*.sqlite"))[0]
        conn = sqlite3.connect(victim)
        table = conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' LIMIT 1"
        ).fetchone()[0]
        conn.execute(f"DELETE FROM {table} WHERE rowid = 1")
        conn.commit()
        conn.close()
        assert verify_flix(collection, directory) == [victim.name]

    def test_verification_can_be_skipped(self, saved):
        collection, directory, fingerprint = saved
        manifest_path = directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        name = sorted(manifest["integrity"]["files"])[0]
        manifest["integrity"]["files"][name] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IntegrityError):
            load_flix(collection, directory)
        loaded = load_flix(collection, directory, verify=False)
        assert loaded.index_fingerprint() == fingerprint

    def test_pre_integrity_saves_still_load(self, saved):
        collection, directory, fingerprint = saved
        manifest_path = directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["integrity"]  # simulate an older save
        manifest_path.write_text(json.dumps(manifest))
        loaded = load_flix(collection, directory)
        assert loaded.index_fingerprint() == fingerprint


class TestRepair:
    def test_repair_of_intact_save_is_a_noop(self, saved):
        collection, directory, _ = saved
        before = {
            p.name: p.read_bytes() for p in directory.glob("*.sqlite")
        }
        assert repair_flix(collection, directory) == []
        after = {p.name: p.read_bytes() for p in directory.glob("*.sqlite")}
        assert before == after

    def test_repair_restores_fingerprint_identical_index(self, saved):
        collection, directory, fingerprint = saved
        victims = sorted(directory.glob("meta_*.sqlite"))[:2]
        victims[0].write_bytes(b"ruined")
        victims[1].unlink()
        (directory / "framework.sqlite").write_bytes(b"also ruined")

        repaired = repair_flix(collection, directory)
        assert repaired == [
            "framework.sqlite",
            victims[0].name,
            victims[1].name,
        ]
        assert verify_flix(collection, directory) == []
        loaded = load_flix(collection, directory)
        assert loaded.index_fingerprint() == fingerprint

    def test_repair_leaves_intact_files_untouched(self, saved):
        collection, directory, _ = saved
        intact = sorted(directory.glob("meta_*.sqlite"))[1:]
        before = {p.name: p.read_bytes() for p in intact}
        sorted(directory.glob("meta_*.sqlite"))[0].write_bytes(b"zap")
        repair_flix(collection, directory)
        assert {p.name: p.read_bytes() for p in intact} == before

    def test_repaired_save_answers_like_original(self, saved):
        collection, directory, _ = saved
        original = load_flix(collection, directory)
        starts = [
            collection.document_root(name)
            for name in sorted(collection.documents)[:3]
        ]
        expected = {
            s: [(r.node, r.distance) for r in original.find_descendants(s)]
            for s in starts
        }
        sorted(directory.glob("meta_*.sqlite"))[0].write_bytes(b"zap")
        repair_flix(collection, directory)
        repaired = load_flix(collection, directory)
        for s in starts:
            assert [
                (r.node, r.distance) for r in repaired.find_descendants(s)
            ] == expected[s]

    def test_flix_repair_classmethod(self, saved):
        collection, directory, _ = saved
        (directory / "framework.sqlite").unlink()
        assert Flix.repair(collection, directory) == ["framework.sqlite"]

    def test_repair_rejects_wrong_collection(self, saved):
        from repro.datasets.dblp import DblpSpec, generate_dblp

        _, directory, _ = saved
        other = generate_dblp(DblpSpec(documents=10))
        with pytest.raises(PersistenceError, match="fingerprint mismatch"):
            repair_flix(other, directory)
