"""Exporter tests: Prometheus text format (escaping!) and JSON."""

import json

import pytest

from repro.obs.export import (
    render,
    render_json,
    render_prometheus,
    registry_to_dict,
)
from repro.obs.registry import MetricsRegistry


def test_empty_registry_renders_empty_prom():
    assert render_prometheus(MetricsRegistry()) == ""
    assert render_prometheus(MetricsRegistry(enabled=False)) == ""


def test_counter_and_gauge_lines():
    reg = MetricsRegistry()
    reg.counter("hits_total", "Total hits.").inc(3, axis="descendants")
    reg.gauge("depth", "Current depth.").set(7)
    text = render_prometheus(reg)
    assert "# HELP hits_total Total hits." in text
    assert "# TYPE hits_total counter" in text
    assert 'hits_total{axis="descendants"} 3' in text
    assert "# TYPE depth gauge" in text
    assert "depth 7" in text
    assert text.endswith("\n")


def test_histogram_cumulative_buckets_and_inf():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)  # overflow
    text = render_prometheus(reg)
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_count 3" in text
    assert "lat_seconds_sum 5.55" in text


def test_label_value_escaping():
    reg = MetricsRegistry()
    reg.counter("c_total").inc(table='we"ird\\name\nline')
    text = render_prometheus(reg)
    # backslash, double quote and newline must all be escaped
    assert 'table="we\\"ird\\\\name\\nline"' in text
    assert "\nline" not in text.replace("\\nline", "")


def test_help_text_escaping():
    reg = MetricsRegistry()
    reg.counter("c_total", "line one\nline two \\ backslash").inc()
    text = render_prometheus(reg)
    assert "# HELP c_total line one\\nline two \\\\ backslash" in text


def test_multiple_labels_sorted_and_quoted():
    reg = MetricsRegistry()
    reg.counter("c_total").inc(backend="memory", table="elements")
    text = render_prometheus(reg)
    assert 'c_total{backend="memory",table="elements"} 1' in text


def test_integral_values_render_without_decimal_point():
    reg = MetricsRegistry()
    reg.gauge("g").set(4.0)
    assert "g 4\n" in render_prometheus(reg)


def test_json_roundtrip_and_quantiles():
    reg = MetricsRegistry()
    reg.counter("hits_total", "Hits.").inc(2, axis="type")
    h = reg.histogram("lat_seconds", buckets=(1.0, 2.0))
    h.observe(0.5)
    payload = json.loads(render_json(reg))
    by_name = {m["name"]: m for m in payload["metrics"]}
    assert by_name["hits_total"]["samples"] == [
        {"labels": {"axis": "type"}, "value": 2}
    ]
    hist = by_name["lat_seconds"]
    assert hist["buckets"] == [1.0, 2.0]
    series = hist["series"][0]
    assert series["count"] == 1
    assert series["quantiles"]["p50"] == pytest.approx(0.5)


def test_registry_to_dict_empty():
    assert registry_to_dict(MetricsRegistry()) == {"metrics": []}


def test_render_dispatch():
    reg = MetricsRegistry()
    reg.counter("c_total").inc()
    assert render(reg, "prom") == render_prometheus(reg)
    assert render(reg, "prometheus") == render_prometheus(reg)
    assert render(reg, "json") == render_json(reg)
    with pytest.raises(ValueError):
        render(reg, "xml")


def test_prometheus_output_parses_line_shape():
    """Every non-comment line must be ``name{labels} value`` parseable."""
    reg = MetricsRegistry()
    reg.counter("a_total", "A.").inc(axis="x")
    reg.gauge("b").set(1.5)
    reg.histogram("c_seconds", buckets=(1.0,)).observe(0.5)
    for line in render_prometheus(reg).strip().splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
            continue
        name_part, value_part = line.rsplit(" ", 1)
        float(value_part)  # must parse
        metric_name = name_part.split("{", 1)[0]
        assert metric_name.replace("_", "").isalnum()
