"""Unit tests for spans, traces, and the tracer ring buffer."""

from repro.obs.tracing import NULL_TRACE, NULL_TRACER, Trace, Tracer

import pytest


class TestTrace:
    def test_nesting_and_parents(self):
        tracer = Tracer()
        trace = tracer.trace("pee.query", axis="descendants")
        with trace.span("pee.probe", meta_id=0):
            with trace.span("pee.link_hop"):
                pass
        with trace.span("pee.probe", meta_id=1):
            pass
        trace.finish()

        names = [s.name for s in trace.spans]
        assert names == ["pee.query", "pee.probe", "pee.link_hop", "pee.probe"]
        root, probe0, hop, probe1 = trace.spans
        assert root.parent_id is None and root.depth == 0
        assert probe0.parent_id == root.span_id and probe0.depth == 1
        assert hop.parent_id == probe0.span_id and hop.depth == 2
        assert probe1.parent_id == root.span_id and probe1.depth == 1

    def test_durations_monotonic_and_closed(self):
        tracer = Tracer()
        trace = tracer.trace("op")
        with trace.span("child"):
            pass
        trace.finish()
        assert trace.duration_seconds >= 0.0
        for span in trace.spans:
            assert span.ended is not None
            assert span.duration_seconds >= 0.0
        # the root covers its children
        assert trace.duration_seconds >= trace.spans[1].duration_seconds

    def test_find_and_render(self):
        tracer = Tracer()
        trace = tracer.trace("pee.query")
        with trace.span("pee.probe", meta_id=3):
            pass
        trace.finish()
        assert len(trace.find("pee.probe")) == 1
        text = trace.render()
        assert "pee.query" in text
        assert "  pee.probe" in text  # indented one level
        assert "meta_id=3" in text

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        trace = tracer.trace("op")
        trace.finish()
        trace.finish()
        assert len(tracer.traces()) == 1

    def test_interleaved_traces_do_not_adopt_spans(self):
        # Two traces driven alternately on one thread: each span must nest
        # under its own trace's root (the QueryStream interleaving pattern).
        tracer = Tracer()
        t1 = tracer.trace("q1")
        t2 = tracer.trace("q2")
        cm1 = t1.span("probe")
        s1 = cm1.__enter__()
        cm2 = t2.span("probe")
        s2 = cm2.__enter__()
        cm1.__exit__(None, None, None)
        cm2.__exit__(None, None, None)
        assert s1.parent_id == t1.root.span_id
        assert s2.parent_id == t2.root.span_id
        assert s1 in t1.spans and s1 not in t2.spans
        assert s2 in t2.spans and s2 not in t1.spans

    def test_to_dict_shape(self):
        tracer = Tracer()
        trace = tracer.trace("op", k="v")
        trace.finish()
        payload = trace.to_dict()
        assert payload["name"] == "op"
        assert payload["spans"][0]["meta"] == {"k": "v"}


class TestTracer:
    def test_ring_buffer_keeps_newest(self):
        tracer = Tracer(keep=2)
        for i in range(4):
            tracer.trace(f"op{i}").finish()
        assert [t.name for t in tracer.traces()] == ["op2", "op3"]

    def test_last_trace_by_name(self):
        tracer = Tracer()
        tracer.trace("a").finish()
        tracer.trace("b").finish()
        assert tracer.last_trace().name == "b"
        assert tracer.last_trace("a").name == "a"
        assert tracer.last_trace("missing") is None

    def test_empty_tracer_has_no_last_trace(self):
        assert Tracer().last_trace() is None

    def test_keep_validation(self):
        with pytest.raises(ValueError):
            Tracer(keep=0)

    def test_clear(self):
        tracer = Tracer()
        tracer.trace("op").finish()
        tracer.clear()
        assert tracer.traces() == []

    def test_disabled_tracer_hands_out_null_trace(self):
        trace = NULL_TRACER.trace("op")
        assert trace is NULL_TRACE
        with trace.span("child"):
            pass
        trace.finish()
        assert NULL_TRACER.traces() == []
        # the shared null trace never accumulates spans
        assert len(NULL_TRACE.spans) == 1
