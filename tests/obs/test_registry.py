"""Unit tests for the metrics registry, with a focus on percentile math."""

import threading

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("hits_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_are_independent_series(self):
        c = Counter("hits_total")
        c.inc(axis="descendants")
        c.inc(3, axis="ancestors")
        assert c.value(axis="descendants") == 1
        assert c.value(axis="ancestors") == 3
        assert c.value(axis="type") == 0.0
        assert c.total() == 4

    def test_label_order_does_not_matter(self):
        c = Counter("hits_total")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(b="2", a="1") == 2

    def test_negative_increment_rejected(self):
        c = Counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("not a metric name")
        with pytest.raises(ValueError):
            Counter("")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12

    def test_gauge_may_go_negative(self):
        g = Gauge("delta")
        g.dec(4)
        assert g.value() == -4


class TestHistogramPercentiles:
    def test_empty_series_is_zero(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        assert h.percentile(0.5) == 0.0
        assert h.quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_observation_interpolates_within_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)  # lands in (1, 2]
        # rank 1 of 1: the full bucket is consumed -> its upper bound
        assert h.percentile(1.0) == pytest.approx(2.0)
        # p50 -> halfway through the containing bucket
        assert h.percentile(0.5) == pytest.approx(1.5)

    def test_uniform_fill_matches_exact_quantiles(self):
        # 100 observations evenly spread over (0, 10] in 10 unit buckets:
        # interpolation should recover the exact empirical quantiles.
        bounds = tuple(float(b) for b in range(1, 11))
        h = Histogram("lat", buckets=bounds)
        for i in range(100):
            h.observe(i / 10.0 + 0.05)
        assert h.percentile(0.50) == pytest.approx(5.0, abs=0.1)
        assert h.percentile(0.95) == pytest.approx(9.5, abs=0.1)
        assert h.percentile(0.99) == pytest.approx(9.9, abs=0.1)

    def test_first_bucket_lower_bound_is_zero(self):
        h = Histogram("lat", buckets=(10.0,))
        h.observe(3.0)
        h.observe(7.0)
        # two observations in [0, 10]: p50 interpolates at rank 1 of 2
        assert h.percentile(0.5) == pytest.approx(5.0)

    def test_overflow_bucket_clamps_to_last_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(50.0)
        h.observe(60.0)
        assert h.percentile(0.99) == 2.0
        assert h.count() == 2
        assert h.sum() == pytest.approx(110.0)

    def test_percentile_validates_p(self):
        h = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_bounds_must_be_increasing_and_positive(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(0.0, 1.0))

    def test_per_label_series(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5, axis="descendants")
        h.observe(1.5, axis="ancestors")
        assert h.count(axis="descendants") == 1
        assert h.count(axis="ancestors") == 1
        assert h.count() == 0
        assert h.percentile(1.0, axis="descendants") == pytest.approx(1.0)

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert len(set(DEFAULT_LATENCY_BUCKETS)) == len(DEFAULT_LATENCY_BUCKETS)
        assert DEFAULT_LATENCY_BUCKETS[0] > 0

    def test_thread_safety_of_observe(self):
        h = Histogram("lat", buckets=(0.5, 1.0))

        def hammer():
            for _ in range(1000):
                h.observe(0.25)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count() == 4000


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")
        reg.histogram("h")
        with pytest.raises(ValueError):
            reg.counter("h")

    def test_metrics_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.counter("a_total")
        assert [m.name for m in reg.metrics()] == ["a_total", "z_total"]
        assert reg.names() == ["a_total", "z_total"]
        assert len(reg) == 2

    def test_disabled_registry_stays_empty(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a_total").inc(5)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(1.0)
        assert reg.metrics() == []
        assert len(reg) == 0

    def test_null_registry_instruments_are_inert(self):
        c = NULL_REGISTRY.counter("a_total")
        c.inc(100)
        assert c.value() == 0.0
        h = NULL_REGISTRY.histogram("h")
        h.observe(5.0)
        assert h.count() == 0

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.reset()
        assert reg.metrics() == []
