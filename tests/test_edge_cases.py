"""Edge cases and failure injection across module boundaries."""

import pytest

from repro import Flix, FlixConfig, XmlDocument, build_collection
from repro.collection.stats import collect_statistics
from repro.storage.memory import MemoryBackend
from repro.storage.table import StorageBackend, TableSchema


class TestEmptyAndMinimalCollections:
    def test_empty_collection_builds(self):
        collection = build_collection([])
        flix = Flix.build(collection, FlixConfig.naive())
        assert flix.size_bytes() >= 0
        assert flix.meta_documents == []

    def test_empty_collection_query_rejected(self):
        collection = build_collection([])
        flix = Flix.build(collection, FlixConfig.naive())
        with pytest.raises(KeyError):
            list(flix.find_descendants(0))

    def test_single_element_document(self):
        collection = build_collection([XmlDocument.from_text("a.xml", "<a/>")])
        flix = Flix.build(collection, FlixConfig.naive())
        root = collection.document_root("a.xml")
        assert list(flix.find_descendants(root)) == []
        assert list(flix.find_descendants(root, include_self=True))[0].node == root
        assert flix.connection_test(root, root) == 0

    def test_empty_collection_statistics(self):
        stats = collect_statistics(build_collection([]))
        assert stats.element_count == 0
        assert stats.link_density == 0.0
        assert stats.intra_link_fraction is None

    def test_self_referencing_document(self):
        collection = build_collection(
            [XmlDocument.from_text("a.xml", '<a><l xlink:href="a.xml"/></a>')]
        )
        # the link targets the document's own root: a cycle root <-> link
        flix = Flix.build(collection, FlixConfig.naive())
        root = collection.document_root("a.xml")
        results = {r.node for r in flix.find_descendants(root)}
        assert len(results) == 1  # the <l> element


class TestIntraLinkFraction:
    def test_all_intra(self):
        collection = build_collection(
            [XmlDocument.from_text("a.xml", '<a><b id="x"/><c idref="x"/></a>')]
        )
        stats = collect_statistics(collection)
        assert stats.intra_link_fraction == 1.0

    def test_all_inter(self):
        collection = build_collection(
            [
                XmlDocument.from_text("a.xml", '<a><l xlink:href="b.xml"/></a>'),
                XmlDocument.from_text("b.xml", "<b/>"),
            ]
        )
        stats = collect_statistics(collection)
        assert stats.intra_link_fraction == 0.0

    def test_recommend_inex_profile(self):
        config = FlixConfig.recommend(
            link_density=0.06,
            intra_document_links=60,
            mean_document_size=140.0,
            intra_link_fraction=0.95,
        )
        assert config.mdb_strategy == "naive"

    def test_recommend_dense_inter_profile_unchanged(self):
        config = FlixConfig.recommend(
            link_density=0.06,
            intra_document_links=0,
            mean_document_size=140.0,
            intra_link_fraction=0.0,
        )
        assert config.mdb_strategy == "unconnected_hopi"


class _ExplodingBackend(StorageBackend):
    """Fails on table creation — simulates storage-layer faults."""

    def create_table(self, schema: TableSchema):
        raise IOError("disk on fire")

    def table(self, name):
        raise KeyError(name)

    def drop_table(self, name):
        raise KeyError(name)

    def table_names(self):
        return []


class TestStorageFaultPropagation:
    def test_index_build_fault_propagates_cleanly(self):
        collection = build_collection([XmlDocument.from_text("a.xml", "<a><b/></a>")])
        with pytest.raises(IOError):
            Flix.build(
                collection, FlixConfig.naive(), backend_factory=_ExplodingBackend
            )

    def test_memory_backend_rejects_bad_rows_atomically(self):
        from repro.storage.table import Column

        backend = MemoryBackend()
        table = backend.create_table(
            TableSchema("t", (Column("a", "int"),))
        )
        table.insert((1,))
        with pytest.raises(TypeError):
            table.insert(("bad",))
        # the failed insert left no partial state behind
        assert table.row_count() == 1
        assert list(table.scan()) == [(1,)]


class TestDeepDocuments:
    def test_thousand_level_nesting(self):
        depth = 1000
        text = "".join(f"<e{i}>" for i in range(depth)) + "".join(
            f"</e{i}>" for i in reversed(range(depth))
        )
        collection = build_collection([XmlDocument.from_text("deep.xml", text)])
        flix = Flix.build(collection, FlixConfig.naive())
        root = collection.document_root("deep.xml")
        results = list(flix.find_descendants(root))
        assert len(results) == depth - 1
        assert max(r.distance for r in results) == depth - 1

    def test_wide_document(self):
        text = "<root>" + "<leaf/>" * 2000 + "</root>"
        collection = build_collection([XmlDocument.from_text("wide.xml", text)])
        flix = Flix.build(collection, FlixConfig.naive())
        root = collection.document_root("wide.xml")
        assert len(list(flix.find_descendants(root, tag="leaf"))) == 2000
