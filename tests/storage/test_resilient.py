"""Tests for the retrying, circuit-breaking storage wrapper."""

import pytest

from repro.faults import FaultPlan, FaultyBackend
from repro.obs import Observability
from repro.storage.errors import (
    CircuitOpenError,
    PermanentStorageError,
    TransientStorageError,
)
from repro.storage.memory import MemoryBackend
from repro.storage.resilient import (
    CIRCUIT_CLOSED,
    CIRCUIT_OPEN,
    BreakerPolicy,
    ResilientBackend,
    ResilientFactory,
    RetryPolicy,
)
from repro.storage.table import Column, TableSchema

SCHEMA = TableSchema(name="t", columns=(Column("a", "int"), Column("b", "str")))

FAST = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0, jitter=0.0)


def resilient(plan: FaultPlan, **kwargs) -> ResilientBackend:
    kwargs.setdefault("retry_policy", FAST)
    kwargs.setdefault("sleep", lambda _: None)
    return ResilientBackend(FaultyBackend(MemoryBackend(), plan), **kwargs)


class TestRetries:
    def test_transient_failures_absorbed(self):
        backend = resilient(FaultPlan(fail_first=3))
        table = backend.create_table(SCHEMA)
        table.insert((1, "x"))  # 3 injected failures + 1 success
        assert table.row_count() == 1
        assert backend.total_retries == 3

    def test_retry_budget_exhaustion_raises(self):
        backend = resilient(FaultPlan(fail_first=10))
        table = backend.create_table(SCHEMA)
        with pytest.raises(TransientStorageError):
            table.insert((1, "x"))

    def test_permanent_errors_not_retried(self):
        backend = resilient(FaultPlan(break_after=0))
        table = backend.create_table(SCHEMA)
        with pytest.raises(PermanentStorageError):
            table.insert((1, "x"))
        assert backend.total_retries == 0

    def test_scan_failures_caught_inside_guard(self):
        # the inner table raises when the scan is *consumed*; materializing
        # inside the guard is what lets the retry loop see and absorb it
        plan = FaultPlan(fail_first=2).restricted_to("t")
        backend = ResilientBackend(
            FaultyBackend(MemoryBackend(), plan),
            retry_policy=FAST,
            sleep=lambda _: None,
        )
        table = backend.create_table(SCHEMA)
        assert list(table.scan()) == []
        assert backend.total_retries == 2

    def test_backoff_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.01, max_delay=0.04, jitter=0.0
        )
        import random

        rng = random.Random(0)
        delays = [policy.delay(k, rng) for k in range(4)]
        assert delays == [0.01, 0.02, 0.04, 0.04]

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(jitter=0.5, seed=3)
        import random

        a = [policy.delay(k, random.Random(3)) for k in range(3)]
        b = [policy.delay(k, random.Random(3)) for k in range(3)]
        assert a == b


class TestCircuitBreaker:
    def make_broken(self, clock):
        backend = resilient(
            FaultPlan(break_after=0),
            breaker_policy=BreakerPolicy(failure_threshold=2, reset_timeout=10.0),
            clock=clock,
        )
        return backend, backend.create_table(SCHEMA)

    def test_opens_after_threshold_and_fails_fast(self):
        now = [0.0]
        backend = resilient(
            FaultPlan(fail_first=10 ** 6),
            breaker_policy=BreakerPolicy(failure_threshold=2, reset_timeout=10.0),
            clock=lambda: now[0],
        )
        table = backend.create_table(SCHEMA)
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                table.row_count()
        assert backend.breaker_states()["t"] == CIRCUIT_OPEN
        with pytest.raises(CircuitOpenError):  # no call reaches the backend
            table.row_count()

    def test_half_open_probe_recovers(self):
        now = [0.0]
        plan = FaultPlan(fail_first=8)  # 2 calls x 4 attempts, then healthy
        backend = resilient(
            plan,
            breaker_policy=BreakerPolicy(failure_threshold=2, reset_timeout=5.0),
            clock=lambda: now[0],
        )
        table = backend.create_table(SCHEMA)
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                table.row_count()
        assert backend.breaker_states()["t"] == CIRCUIT_OPEN
        now[0] = 6.0  # past the reset timeout: one probe is admitted
        assert table.row_count() == 0
        assert backend.breaker_states()["t"] == CIRCUIT_CLOSED

    def test_breakers_are_per_table(self):
        now = [0.0]
        plan = FaultPlan(fail_first=10 ** 6).restricted_to("t")
        backend = ResilientBackend(
            FaultyBackend(MemoryBackend(), plan),
            retry_policy=FAST,
            breaker_policy=BreakerPolicy(failure_threshold=1, reset_timeout=99.0),
            sleep=lambda _: None,
            clock=lambda: now[0],
        )
        broken = backend.create_table(SCHEMA)
        healthy = backend.create_table(
            TableSchema(name="u", columns=(Column("a", "int"),))
        )
        with pytest.raises(TransientStorageError):
            broken.row_count()
        with pytest.raises(CircuitOpenError):
            broken.row_count()
        healthy.insert((1,))  # sibling table is unaffected
        assert healthy.row_count() == 1


class TestObservability:
    def test_retry_metric(self):
        obs = Observability(True)
        backend = resilient(FaultPlan(fail_first=2), obs=obs)
        table = backend.create_table(SCHEMA)
        table.insert((1, "x"))  # 2 transient failures then success
        retries = obs.registry.counter("flix_storage_retries_total")
        assert retries.value(table="t") == 2

    def test_giveup_metric_and_circuit_gauge(self):
        obs = Observability(True)
        backend = resilient(
            FaultPlan(fail_first=10 ** 6),
            obs=obs,
            breaker_policy=BreakerPolicy(failure_threshold=1, reset_timeout=9.0),
        )
        table = backend.create_table(SCHEMA)
        with pytest.raises(TransientStorageError):
            table.row_count()
        assert (
            obs.registry.counter("flix_storage_giveups_total").value(table="t")
            == 1
        )
        assert (
            obs.registry.gauge("flix_circuit_state").value(table="t")
            == CIRCUIT_OPEN
        )

    def test_disabled_observability_still_counts(self):
        backend = resilient(FaultPlan(fail_first=1), obs=Observability(False))
        table = backend.create_table(SCHEMA)
        table.insert((1, "x"))
        assert backend.total_retries == 1


class TestTransparency:
    def test_fingerprint_matches_inner_backend(self):
        from repro.graph.digraph import Digraph
        from repro.indexes.transitive import TransitiveClosureIndex

        graph = Digraph([(0, 1), (1, 2), (0, 3)])
        tags = {0: "a", 1: "b", 2: "c", 3: "d"}

        plain = MemoryBackend()
        TransitiveClosureIndex.build(graph, tags, plain)

        wrapped = resilient(FaultPlan(seed=4, write_error_rate=0.3))
        TransitiveClosureIndex.build(graph, tags, wrapped)

        assert wrapped.fingerprint() == plain.fingerprint()
        assert wrapped.total_bytes() == plain.total_bytes()

    def test_factory_is_picklable(self):
        import pickle

        factory = ResilientFactory(MemoryBackend, retry_policy=FAST)
        clone = pickle.loads(pickle.dumps(factory))
        backend = clone()
        assert isinstance(backend, ResilientBackend)
        assert backend.retry_policy == FAST
