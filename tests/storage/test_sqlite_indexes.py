"""Every index strategy must serialize through the SQLite backend."""

import pytest

from repro.graph.closure import transitive_closure
from repro.indexes.registry import available_strategies, build_index
from repro.storage.sqlite_backend import SqliteBackend
from tests.conftest import random_tags, random_tree


@pytest.mark.parametrize("strategy", sorted(available_strategies()))
def test_strategy_builds_and_answers_on_sqlite(strategy):
    graph = random_tree(11, 25)  # a tree satisfies every strategy
    tags = random_tags(11, 25)
    backend = SqliteBackend()
    index = build_index(strategy, graph, tags, backend)
    oracle = transitive_closure(graph)
    for u in list(graph)[:8]:
        assert dict(index.find_descendants_by_tag(u, None)) == oracle.descendants(u)
    assert index.size_bytes() > 0
    assert backend.table_names()


@pytest.mark.parametrize("strategy", ["hopi", "apex", "transitive_closure"])
def test_graph_strategies_on_sqlite_with_cycles(strategy):
    from tests.conftest import random_digraph

    graph = random_digraph(5, 18)
    tags = random_tags(5, 18)
    index = build_index(strategy, graph, tags, SqliteBackend())
    oracle = transitive_closure(graph)
    for u in graph:
        for v in graph:
            assert index.distance(u, v) == oracle.distance(u, v)


def test_sqlite_rows_scannable_after_build():
    graph = random_tree(3, 12)
    backend = SqliteBackend()
    build_index("hopi", graph, {n: "t" for n in graph}, backend)
    rows = list(backend.table("hopi_in_labels").scan())
    assert rows
    for node, hub, dist in rows:
        assert isinstance(node, int)
        assert isinstance(hub, int)
        assert dist >= 0
