"""Index persistence: build to SQLite on disk, reopen, load, query.

A production deployment must survive restarts without rebuilding every
index; these tests round-trip each loadable strategy through a database
file and verify the reloaded index answers exactly like the original.
"""

import pytest

from repro.graph.closure import transitive_closure
from repro.indexes.apex import ApexIndex
from repro.indexes.hopi import HopiIndex
from repro.indexes.ppo import PpoIndex
from repro.indexes.transitive import TransitiveClosureIndex
from repro.storage.sqlite_backend import SqliteBackend
from tests.conftest import random_digraph, random_tags, random_tree


class TestBackendAttach:
    def test_attach_recovers_tables_and_rows(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        backend = SqliteBackend(path)
        from repro.storage.table import Column, TableSchema

        table = backend.create_table(
            TableSchema("t", (Column("a", "int"), Column("b", "str")))
        )
        table.insert_many([(1, "x"), (2, "y")])
        backend.close()

        reopened = SqliteBackend.attach(path)
        assert reopened.table_names() == ["t"]
        recovered = reopened.table("t")
        assert list(recovered.scan()) == [(1, "x"), (2, "y")]
        assert recovered.schema.columns[0].kind == "int"
        assert recovered.schema.columns[1].kind == "str"

    def test_attach_allows_further_inserts(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        backend = SqliteBackend(path)
        from repro.storage.table import Column, TableSchema

        backend.create_table(TableSchema("t", (Column("a", "int"),))).insert((1,))
        backend.close()
        reopened = SqliteBackend.attach(path)
        reopened.table("t").insert((2,))
        assert reopened.table("t").row_count() == 2


class TestIndexRoundTrips:
    def test_ppo_round_trip(self, tmp_path):
        graph = random_tree(4, 30)
        tags = random_tags(4, 30)
        path = str(tmp_path / "ppo.sqlite")
        original = PpoIndex.build(graph, tags, SqliteBackend(path))
        loaded = PpoIndex.load(SqliteBackend.attach(path), tags)
        for u in graph:
            assert loaded.find_descendants_by_tag(u, None) == (
                original.find_descendants_by_tag(u, None)
            )
            assert loaded.find_ancestors_by_tag(u, "a") == (
                original.find_ancestors_by_tag(u, "a")
            )
            assert loaded.children(u) == original.children(u)
            assert loaded.following(u) == original.following(u)

    def test_hopi_round_trip(self, tmp_path):
        graph = random_digraph(9, 25)
        tags = random_tags(9, 25)
        path = str(tmp_path / "hopi.sqlite")
        HopiIndex.build(graph, tags, SqliteBackend(path))
        loaded = HopiIndex.load(SqliteBackend.attach(path), tags)
        oracle = transitive_closure(graph)
        for u in graph:
            assert dict(loaded.find_descendants_by_tag(u, None)) == (
                oracle.descendants(u)
            )

    def test_hopi_round_trip_after_incremental_growth(self, tmp_path):
        graph = random_digraph(2, 15, edge_factor=0.6)
        tags = random_tags(2, 15)
        path = str(tmp_path / "hopi.sqlite")
        index = HopiIndex.build(graph, tags, SqliteBackend(path))
        new_edges = [(0, 7), (7, 3), (3, 12)]
        for u, v in new_edges:
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                index.insert_edge(u, v)
        loaded = HopiIndex.load(SqliteBackend.attach(path), tags, graph)
        oracle = transitive_closure(graph)
        for u in graph:
            for v in graph:
                assert loaded.distance(u, v) == oracle.distance(u, v)

    def test_loaded_hopi_supports_further_insertions(self, tmp_path):
        graph = random_digraph(3, 12, edge_factor=0.5)
        tags = random_tags(3, 12)
        path = str(tmp_path / "hopi.sqlite")
        HopiIndex.build(graph, tags, SqliteBackend(path))
        loaded = HopiIndex.load(SqliteBackend.attach(path), tags, graph)
        if not graph.has_edge(0, 11):
            graph.add_edge(0, 11)
            loaded.insert_edge(0, 11)
        oracle = transitive_closure(graph)
        for u in graph:
            assert dict(loaded.find_descendants_by_tag(u, None)) == (
                oracle.descendants(u)
            )

    def test_transitive_closure_round_trip(self, tmp_path):
        graph = random_digraph(6, 20)
        tags = random_tags(6, 20)
        path = str(tmp_path / "tc.sqlite")
        TransitiveClosureIndex.build(graph, tags, SqliteBackend(path))
        loaded = TransitiveClosureIndex.load(SqliteBackend.attach(path), tags)
        oracle = transitive_closure(graph)
        for u in graph:
            assert dict(loaded.find_descendants_by_tag(u, None)) == (
                oracle.descendants(u)
            )
            assert dict(loaded.find_ancestors_by_tag(u, None)) == {
                v: oracle.distance(v, u) for v in graph if oracle.reachable(v, u)
            }

    def test_apex_round_trip(self, tmp_path):
        graph = random_digraph(8, 22)
        tags = random_tags(8, 22)
        path = str(tmp_path / "apex.sqlite")
        original = ApexIndex.build(graph, tags, SqliteBackend(path))
        loaded = ApexIndex.load(SqliteBackend.attach(path), "apex")
        assert loaded.class_count == original.class_count
        oracle = transitive_closure(graph)
        for u in graph:
            assert dict(loaded.find_descendants_by_tag(u, None)) == (
                oracle.descendants(u)
            )
            assert loaded.class_of(u) == original.class_of(u)
