"""Unit tests for schemas and both storage backends."""

import pytest

from repro.storage.memory import MemoryBackend
from repro.storage.sqlite_backend import SqliteBackend
from repro.storage.table import Column, TableSchema


def simple_schema(name="t"):
    return TableSchema(
        name=name,
        columns=(Column("k", "int"), Column("v", "str"), Column("w", "float")),
        indexed=("k",),
    )


class TestSchemaValidation:
    def test_bad_column_kind(self):
        with pytest.raises(ValueError):
            Column("x", "blob")

    def test_bad_column_name(self):
        with pytest.raises(ValueError):
            Column("1x", "int")

    def test_duplicate_columns(self):
        with pytest.raises(ValueError):
            TableSchema("t", (Column("a", "int"), Column("a", "int")))

    def test_indexed_must_exist(self):
        with pytest.raises(ValueError):
            TableSchema("t", (Column("a", "int"),), indexed=("b",))

    def test_no_columns(self):
        with pytest.raises(ValueError):
            TableSchema("t", ())

    def test_column_index(self):
        schema = simple_schema()
        assert schema.column_index("v") == 1
        with pytest.raises(KeyError):
            schema.column_index("zzz")

    def test_check_row_arity(self):
        schema = simple_schema()
        with pytest.raises(ValueError):
            schema.check_row((1, "x"))

    def test_check_row_types(self):
        schema = simple_schema()
        with pytest.raises(TypeError):
            schema.check_row(("no", "x", 1.0))
        with pytest.raises(TypeError):
            schema.check_row((1, 2, 1.0))
        schema.check_row((1, "x", 2))  # int acceptable for float column


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    if request.param == "memory":
        return MemoryBackend()
    return SqliteBackend()


class TestBackends:
    def test_insert_and_scan_order(self, backend):
        table = backend.create_table(simple_schema())
        table.insert((2, "b", 0.5))
        table.insert((1, "a", 1.5))
        assert list(table.scan()) == [(2, "b", 0.5), (1, "a", 1.5)]
        assert table.row_count() == 2

    def test_scan_eq_indexed_column(self, backend):
        table = backend.create_table(simple_schema())
        table.insert_many([(1, "a", 0.0), (2, "b", 0.0), (1, "c", 0.0)])
        rows = list(table.scan_eq("k", 1))
        assert [r[1] for r in rows] == ["a", "c"]

    def test_scan_eq_unindexed_column(self, backend):
        table = backend.create_table(simple_schema())
        table.insert_many([(1, "a", 0.0), (2, "a", 0.0), (3, "b", 0.0)])
        assert len(list(table.scan_eq("v", "a"))) == 2

    def test_scan_eq_no_match(self, backend):
        table = backend.create_table(simple_schema())
        table.insert((1, "a", 0.0))
        assert list(table.scan_eq("k", 99)) == []

    def test_duplicate_table_rejected(self, backend):
        backend.create_table(simple_schema())
        with pytest.raises(ValueError):
            backend.create_table(simple_schema())

    def test_drop_table(self, backend):
        backend.create_table(simple_schema())
        backend.drop_table("t")
        assert backend.table_names() == []
        with pytest.raises(KeyError):
            backend.table("t")

    def test_table_names_sorted(self, backend):
        backend.create_table(simple_schema("zz"))
        backend.create_table(simple_schema("aa"))
        assert backend.table_names() == ["aa", "zz"]

    def test_size_grows_with_rows(self, backend):
        table = backend.create_table(simple_schema())
        empty = table.size_bytes()
        table.insert_many([(i, "payload", 1.0) for i in range(200)])
        assert table.size_bytes() > empty

    def test_total_bytes_aggregates(self, backend):
        t1 = backend.create_table(simple_schema("one"))
        t2 = backend.create_table(simple_schema("two"))
        t1.insert((1, "x", 0.0))
        t2.insert((2, "y", 0.0))
        total = backend.total_bytes()
        assert total >= t1.size_bytes()
        assert total >= t2.size_bytes()

    def test_type_enforcement_on_insert(self, backend):
        table = backend.create_table(simple_schema())
        with pytest.raises(TypeError):
            table.insert(("bad", "x", 0.0))


class TestMemoryByteAccounting:
    def test_exact_row_accounting(self):
        backend = MemoryBackend()
        table = backend.create_table(simple_schema())
        table.insert((1, "abc", 2.0))
        # int 8 + str (4 + 3) + float 8 = 23
        assert table.size_bytes() == 23

    def test_unicode_strings_counted_in_utf8(self):
        backend = MemoryBackend()
        table = backend.create_table(
            TableSchema("t", (Column("s", "str"),))
        )
        table.insert(("é",))  # 2 bytes in UTF-8 + 4 prefix
        assert table.size_bytes() == 6
