"""Unit tests for byte-size helpers."""

import pytest

from repro.storage.sizing import format_bytes, row_bytes, value_bytes


class TestValueBytes:
    def test_int(self):
        assert value_bytes(42) == 8

    def test_bool_counts_as_int(self):
        assert value_bytes(True) == 8

    def test_float(self):
        assert value_bytes(1.5) == 8

    def test_ascii_string(self):
        assert value_bytes("abc") == 7  # 4-byte prefix + 3

    def test_empty_string(self):
        assert value_bytes("") == 4

    def test_multibyte_string(self):
        assert value_bytes("héllo") == 4 + 6

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            value_bytes(None)


class TestRowBytes:
    def test_sum_of_values(self):
        assert row_bytes((1, "ab", 0.5)) == 8 + 6 + 8

    def test_empty_row(self):
        assert row_bytes(()) == 0


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert format_bytes(2048) == "2.0 KB"

    def test_megabytes(self):
        assert format_bytes(27 * 1024 * 1024) == "27.0 MB"

    def test_boundary(self):
        assert format_bytes(1023) == "1023 B"
        assert format_bytes(1024) == "1.0 KB"
