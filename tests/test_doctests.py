"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.graph.digraph
import repro.xmlmodel.dom

MODULES_WITH_DOCTESTS = [
    repro.graph.digraph,
    repro.xmlmodel.dom,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
