"""Unit tests for workload generators."""

import pytest

from repro.bench.workloads import (
    connection_pairs,
    figure5_query,
    random_descendant_queries,
)
from repro.graph.traversal import bfs_distances


class TestFigure5Query:
    def test_starts_at_aries(self, dblp_collection):
        start, tag = figure5_query(dblp_collection)
        assert tag == "article"
        assert "ARIES" in dblp_collection.text(start)


class TestRandomQueries:
    def test_selectivity_guarantee(self, dblp_collection):
        queries = random_descendant_queries(
            dblp_collection, count=5, seed=1, min_results=3
        )
        assert len(queries) == 5
        for start, tag in queries:
            reachable = bfs_distances(dblp_collection.graph, start)
            matches = sum(
                1
                for node in reachable
                if node != start and dblp_collection.tag(node) == tag
            )
            assert matches >= 3

    def test_deterministic(self, dblp_collection):
        a = random_descendant_queries(dblp_collection, count=3, seed=9)
        b = random_descendant_queries(dblp_collection, count=3, seed=9)
        assert a == b

    def test_impossible_selectivity_raises(self, dblp_collection):
        with pytest.raises(RuntimeError):
            random_descendant_queries(
                dblp_collection, count=3, seed=1, min_results=10**6
            )


class TestConnectionPairs:
    def test_expected_flags_correct(self, dblp_collection):
        pairs = connection_pairs(dblp_collection, count=10, seed=2)
        assert len(pairs) == 10
        for source, target, expected in pairs:
            reachable = bfs_distances(dblp_collection.graph, source)
            assert (target in reachable) == expected

    def test_mix_of_positive_and_negative(self, dblp_collection):
        pairs = connection_pairs(dblp_collection, count=10, seed=3)
        flags = [c for _s, _t, c in pairs]
        assert any(flags)
        assert not all(flags)

    def test_deterministic(self, dblp_collection):
        a = connection_pairs(dblp_collection, count=6, seed=5)
        b = connection_pairs(dblp_collection, count=6, seed=5)
        assert a == b
