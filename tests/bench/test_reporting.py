"""Unit tests for the bench table/series renderers."""

import pytest

from repro.bench.reporting import BenchTable, format_series


class TestBenchTable:
    def test_render_contains_everything(self):
        table = BenchTable("Table 1: index sizes", ["index", "size [MB]"])
        table.add_row("HOPI", 339.2)
        table.add_row("APEX", 133)
        text = table.render()
        assert "Table 1" in text
        assert "HOPI" in text
        assert "339.200" in text
        assert "133" in text

    def test_column_arity_enforced(self):
        table = BenchTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_alignment_uniform(self):
        table = BenchTable("t", ["name", "value"])
        table.add_row("x", 1)
        table.add_row("longer-name", 100)
        lines = table.render().splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # header, rule, and rows share one width


class TestFormatSeries:
    def test_contains_all_systems_and_checkpoints(self):
        series = {
            "HOPI": {1: 0.6, 10: 0.6, 100: 0.6},
            "MaximalPPO": {1: 0.1, 10: 0.9, 100: 2.5},
        }
        text = format_series("Figure 5", [1, 10, 100], series)
        assert "Figure 5" in text
        assert "HOPI" in text
        assert "MaximalPPO" in text
        assert "k=100" in text
        assert "0.6000" in text

    def test_missing_checkpoint_rendered_as_nan(self):
        text = format_series("f", [1, 2], {"X": {1: 0.5}})
        assert "nan" in text

    def test_empty_series(self):
        text = format_series("f", [1], {})
        assert "f" in text
