"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    _longest_non_decreasing,
    build_all_systems,
    order_error_rate,
    paper_partition_sizes,
    time_to_k,
)
from repro.core.pee import QueryResult
from repro.graph.closure import TransitiveClosure


class TestTimeToK:
    def test_all_checkpoints_reached(self):
        timings = time_to_k(lambda: iter(range(100)), [1, 10, 50])
        assert set(timings) == {1, 10, 50}
        assert timings[1] <= timings[10] <= timings[50]

    def test_short_stream_reports_exhaustion_time(self):
        timings = time_to_k(lambda: iter(range(5)), [1, 100])
        assert timings[100] >= timings[1]

    def test_empty_stream(self):
        timings = time_to_k(lambda: iter(()), [1])
        assert 1 in timings

    def test_duplicated_checkpoints_collapse(self):
        timings = time_to_k(lambda: iter(range(10)), [3, 3, 3])
        assert list(timings) == [3]


class TestLongestNonDecreasing:
    @pytest.mark.parametrize(
        "sequence, expected",
        [
            ([], 0),
            ([1], 1),
            ([1, 2, 3], 3),
            ([3, 2, 1], 1),
            ([1, 1, 1], 3),
            ([1, 3, 2, 4], 3),
            ([5, 1, 2, 3], 3),
        ],
    )
    def test_cases(self, sequence, expected):
        assert _longest_non_decreasing(sequence) == expected


class TestOrderErrorRate:
    def make_oracle(self, distances):
        return TransitiveClosure({0: distances})

    def results(self, nodes):
        return [QueryResult(node, 0, 0) for node in nodes]

    def test_perfect_order(self):
        oracle = self.make_oracle({1: 1, 2: 2, 3: 3})
        assert order_error_rate(self.results([1, 2, 3]), oracle, 0) == 0.0

    def test_one_stray(self):
        oracle = self.make_oracle({1: 1, 2: 2, 3: 3, 4: 4})
        # 4 delivered first: exactly one result out of place
        assert order_error_rate(self.results([4, 1, 2, 3]), oracle, 0) == 0.25

    def test_fully_reversed(self):
        oracle = self.make_oracle({1: 1, 2: 2, 3: 3, 4: 4})
        rate = order_error_rate(self.results([4, 3, 2, 1]), oracle, 0)
        assert rate == 0.75  # only one element can stand

    def test_ties_do_not_count_as_errors(self):
        oracle = self.make_oracle({1: 2, 2: 2, 3: 2})
        assert order_error_rate(self.results([3, 1, 2]), oracle, 0) == 0.0

    def test_empty_results(self):
        oracle = self.make_oracle({})
        assert order_error_rate([], oracle, 0) == 0.0

    def test_foreign_result_rejected(self):
        oracle = self.make_oracle({1: 1})
        with pytest.raises(ValueError):
            order_error_rate(self.results([99]), oracle, 0)


class TestSystemLineup:
    def test_partition_sizes_preserve_paper_fractions(self, dblp_collection):
        small, large = paper_partition_sizes(dblp_collection)
        assert small < large
        assert large >= 4 * small

    def test_build_all_systems_names(self, figure1_collection):
        systems = build_all_systems(figure1_collection)
        names = [s.name for s in systems]
        assert names[0] == "HOPI"
        assert names[1] == "APEX"
        assert "PPO-naive" in names
        assert "MaximalPPO" in names
        assert len(names) == 6

    def test_transitive_closure_optional(self, figure1_collection):
        systems = build_all_systems(figure1_collection, include_transitive_closure=True)
        assert systems[0].name == "TransitiveClosure"
        assert len(systems) == 7

    def test_systems_expose_size_and_build_time(self, figure1_collection):
        for system in build_all_systems(figure1_collection):
            assert system.size_bytes > 0
            assert system.build_seconds >= 0
