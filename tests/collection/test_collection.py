"""Unit tests for the XmlCollection union graph."""

import pytest

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument
from repro.graph.treecheck import is_forest


class TestLookups:
    def test_counts(self, tiny_collection):
        assert tiny_collection.document_count == 3
        assert tiny_collection.node_count == 11  # 5 + 3 + 3 elements
        # a.xml: idref link; b.xml -> a.xml#s2; c.xml -> b.xml
        assert tiny_collection.link_edge_count == 3

    def test_tree_and_link_edges_partition_all_edges(self, tiny_collection):
        assert (
            tiny_collection.graph.edge_count
            == tiny_collection.tree_edge_count + tiny_collection.link_edge_count
        )

    def test_info_fields(self, tiny_collection):
        root = tiny_collection.document_root("a.xml")
        info = tiny_collection.info(root)
        assert info.document == "a.xml"
        assert info.tag == "doc"
        assert info.depth == 0

    def test_depths_follow_tree(self, tiny_collection):
        for name in tiny_collection.documents:
            for node in tiny_collection.document_nodes(name):
                info = tiny_collection.info(node)
                element = tiny_collection.element(node)
                assert info.depth == element.depth

    def test_nodes_with_tag(self, tiny_collection):
        secs = tiny_collection.nodes_with_tag("sec")
        assert len(secs) == 3
        assert all(tiny_collection.tag(n) == "sec" for n in secs)
        assert tiny_collection.nodes_with_tag("zzz") == []

    def test_tags_sorted(self, tiny_collection):
        tags = tiny_collection.tags()
        assert tags == sorted(tags)
        assert "doc" in tags

    def test_node_id_of_roundtrip(self, tiny_collection):
        for node in tiny_collection.node_ids():
            assert tiny_collection.node_id_of(tiny_collection.element(node)) == node

    def test_node_id_of_foreign_element_rejected(self, tiny_collection):
        foreign = XmlDocument.from_text("z.xml", "<z/>").root
        with pytest.raises(KeyError):
            tiny_collection.node_id_of(foreign)

    def test_text_access(self, tiny_collection):
        hits = tiny_collection.find_by_text("p", "alpha")
        assert len(hits) == 1
        assert tiny_collection.text(hits[0]) == "alpha"

    def test_tree_graph_is_forest(self, tiny_collection):
        tree = tiny_collection.tree_graph()
        assert is_forest(tree)
        assert tree.edge_count == tiny_collection.tree_edge_count

    def test_document_root_is_first_node(self, tiny_collection):
        for name in tiny_collection.documents:
            root = tiny_collection.document_root(name)
            assert root == tiny_collection.document_nodes(name)[0]
            assert tiny_collection.info(root).depth == 0


class TestDblpCollectionShape:
    def test_every_link_is_inter_document(self, dblp_collection):
        for u, v in dblp_collection.link_edges:
            assert (
                dblp_collection.info(u).document != dblp_collection.info(v).document
            )

    def test_link_targets_are_roots(self, dblp_collection):
        roots = {
            dblp_collection.document_root(name)
            for name in dblp_collection.documents
        }
        for _u, v in dblp_collection.link_edges:
            assert v in roots

    def test_cite_elements_carry_links(self, dblp_collection):
        sources = {u for u, _v in dblp_collection.link_edges}
        for source in sources:
            assert dblp_collection.tag(source) == "cite"
