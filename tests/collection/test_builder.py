"""Unit tests for collection building and link resolution."""

import pytest

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument


def make(name, text):
    return XmlDocument.from_text(name, text)


class TestLinkResolution:
    def test_inter_document_root_link(self):
        coll = build_collection(
            [
                make("a.xml", '<a><l xlink:href="b.xml"/></a>'),
                make("b.xml", "<b/>"),
            ]
        )
        source = coll.node_id_of(coll.documents["a.xml"].root.children[0])
        target = coll.document_root("b.xml")
        assert coll.graph.has_edge(source, target)
        assert coll.is_link_edge(source, target)
        assert coll.link_edge_count == 1

    def test_inter_document_fragment_link(self):
        coll = build_collection(
            [
                make("a.xml", '<a><l xlink:href="b.xml#deep"/></a>'),
                make("b.xml", '<b><c id="deep"/></b>'),
            ]
        )
        target_element = coll.documents["b.xml"].anchors["deep"]
        target = coll.node_id_of(target_element)
        assert any(v == target for _u, v in coll.link_edges)

    def test_intra_document_idref(self):
        coll = build_collection(
            [make("a.xml", '<a><b id="x"/><c idref="x"/></a>')]
        )
        assert coll.link_edge_count == 1
        ((u, v),) = coll.link_edges
        assert coll.tag(u) == "c"
        assert coll.tag(v) == "b"

    def test_dangling_document_link_recorded(self):
        coll = build_collection([make("a.xml", '<a><l xlink:href="ghost.xml"/></a>')])
        assert coll.link_edge_count == 0
        assert len(coll.unresolved_links) == 1

    def test_dangling_fragment_link_recorded(self):
        coll = build_collection(
            [
                make("a.xml", '<a><l xlink:href="b.xml#nope"/></a>'),
                make("b.xml", "<b/>"),
            ]
        )
        assert coll.link_edge_count == 0
        assert len(coll.unresolved_links) == 1

    def test_self_link_ignored(self):
        coll = build_collection(
            [make("a.xml", '<a id="r"><l idref="r"/></a>')]
        )
        # link resolved to an ancestor is fine; link to *itself* is dropped
        ((u, v),) = coll.link_edges
        assert u != v

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            build_collection([make("a.xml", "<a/>"), make("a.xml", "<b/>")])

    def test_link_edge_never_duplicates_tree_edge_count(self):
        # A link duplicating an existing parent-child edge must not inflate
        # edge counts.
        coll = build_collection(
            [make("a.xml", '<a id="r"><b idref="c"/><c id="c"/></a>')]
        )
        assert coll.graph.edge_count == coll.tree_edge_count + coll.link_edge_count


class TestDeterminism:
    def test_node_ids_stable_across_input_order(self):
        docs1 = [make("b.xml", "<b/>"), make("a.xml", "<a/>")]
        docs2 = [make("a.xml", "<a/>"), make("b.xml", "<b/>")]
        coll1 = build_collection(docs1)
        coll2 = build_collection(docs2)
        assert coll1.document_root("a.xml") == coll2.document_root("a.xml")
        assert coll1.document_root("b.xml") == coll2.document_root("b.xml")

    def test_document_order_node_ids(self):
        coll = build_collection([make("a.xml", "<a><b><c/></b><d/></a>")])
        tags = [coll.tag(n) for n in coll.document_nodes("a.xml")]
        assert tags == ["a", "b", "c", "d"]
