"""Unit tests for XmlDocument."""

import pytest

from repro.collection.document import XmlDocument


class TestXmlDocument:
    def test_from_text(self):
        doc = XmlDocument.from_text("d.xml", "<a><b/></a>")
        assert doc.name == "d.xml"
        assert doc.root.name == "a"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            XmlDocument.from_text("", "<a/>")

    def test_elements_in_document_order(self):
        doc = XmlDocument.from_text("d.xml", "<a><b><c/></b><d/></a>")
        assert [e.name for e in doc.elements] == ["a", "b", "c", "d"]
        assert doc.element_count == 4

    def test_elements_cached(self):
        doc = XmlDocument.from_text("d.xml", "<a/>")
        assert doc.elements is doc.elements

    def test_anchors(self):
        doc = XmlDocument.from_text("d.xml", '<a id="r"><b id="x"/></a>')
        assert set(doc.anchors) == {"r", "x"}

    def test_links(self):
        doc = XmlDocument.from_text(
            "d.xml", '<a><b idref="x"/><c xlink:href="e.xml"/></a>'
        )
        assert len(doc.links) == 2

    def test_max_depth(self):
        doc = XmlDocument.from_text("d.xml", "<a><b><c/></b><d/></a>")
        assert doc.max_depth == 2
        flat = XmlDocument.from_text("f.xml", "<a/>")
        assert flat.max_depth == 0

    def test_invalidate_caches(self):
        doc = XmlDocument.from_text("d.xml", "<a/>")
        _ = doc.elements
        doc.root.make_child("new")
        doc.invalidate_caches()
        assert doc.element_count == 2
