"""Unit tests for collection statistics."""

import pytest

from repro.collection.stats import collect_statistics, subset_is_tree_shaped


class TestWholeCollectionStats:
    def test_tiny_collection(self, tiny_collection):
        stats = collect_statistics(tiny_collection)
        assert stats.document_count == 3
        assert stats.element_count == tiny_collection.node_count
        assert stats.link_edge_count == 3
        assert stats.intra_document_links == 1
        assert stats.inter_document_links == 2
        assert stats.tree_edge_count == tiny_collection.tree_edge_count

    def test_tag_histogram_sums_to_elements(self, tiny_collection):
        stats = collect_statistics(tiny_collection)
        assert sum(stats.tag_histogram.values()) == stats.element_count
        assert stats.distinct_tags == len(stats.tag_histogram)

    def test_derived_ratios(self, tiny_collection):
        stats = collect_statistics(tiny_collection)
        assert stats.link_density == pytest.approx(3 / stats.element_count)
        assert stats.links_per_document == pytest.approx(1.0)
        assert stats.mean_document_size == pytest.approx(stats.element_count / 3)

    def test_max_depth(self, tiny_collection):
        stats = collect_statistics(tiny_collection)
        assert stats.max_depth == 2

    def test_summary_mentions_key_numbers(self, tiny_collection):
        summary = collect_statistics(tiny_collection).summary()
        assert "3 documents" in summary
        assert "links" in summary

    def test_dblp_ratios_match_paper_shape(self, dblp_collection):
        stats = collect_statistics(dblp_collection)
        # the paper's corpus has ~4.1 links and ~27 elements per document;
        # the generator preserves the link ratio (elements are fewer because
        # our schema is leaner)
        assert 2.5 < stats.links_per_document < 6.0
        assert stats.intra_document_links == 0
        assert stats.mean_document_size > 8


class TestSubsetStats:
    def test_subset_counts_internal_edges_only(self, tiny_collection):
        nodes = tiny_collection.document_nodes("a.xml")
        stats = collect_statistics(tiny_collection, nodes)
        assert stats.document_count == 1
        assert stats.element_count == len(nodes)
        assert stats.intra_document_links == 1  # the idref inside a.xml
        assert stats.inter_document_links == 0  # b->a crosses the subset

    def test_empty_subset(self, tiny_collection):
        stats = collect_statistics(tiny_collection, [])
        assert stats.element_count == 0
        assert stats.link_density == 0.0
        assert stats.mean_document_size == 0.0


class TestTreeShapePredicate:
    def test_single_document_with_idref_not_tree(self, tiny_collection):
        nodes = tiny_collection.document_nodes("a.xml")
        assert not subset_is_tree_shaped(tiny_collection, nodes)

    def test_document_without_links_is_tree(self, tiny_collection):
        nodes = tiny_collection.document_nodes("c.xml")
        assert subset_is_tree_shaped(tiny_collection, nodes)

    def test_two_documents_joined_by_root_link(self, tiny_collection):
        nodes = list(tiny_collection.document_nodes("c.xml")) + list(
            tiny_collection.document_nodes("b.xml")
        )
        # c.xml links to b.xml's root: still a tree
        assert subset_is_tree_shaped(tiny_collection, nodes)
