"""Tests for filesystem collection loading and saving."""

import pytest

from repro.collection.io import (
    CollectionLoadError,
    load_collection,
    save_collection,
)
from repro.datasets.movies import generate_movie_collection


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_structure(self, tmp_path):
        original = generate_movie_collection()
        written = save_collection(original, tmp_path / "movies")
        assert written == original.document_count
        loaded = load_collection(tmp_path / "movies")
        assert loaded.document_count == original.document_count
        assert loaded.node_count == original.node_count
        assert loaded.link_edge_count == original.link_edge_count
        assert sorted(loaded.documents) == sorted(original.documents)

    def test_round_trip_preserves_queries(self, tmp_path):
        from repro.core.config import FlixConfig
        from repro.core.framework import Flix

        original = generate_movie_collection()
        save_collection(original, tmp_path / "m")
        loaded = load_collection(tmp_path / "m")
        flix = Flix.build(loaded, FlixConfig.naive())
        (title,) = loaded.find_by_text("title", "Matrix: Revolutions")
        root = loaded.node_id_of(loaded.element(title).parent)
        results = list(flix.find_descendants(root, tag="actor"))
        assert results

    def test_files_have_declarations(self, tmp_path):
        save_collection(generate_movie_collection(), tmp_path / "m")
        sample = next((tmp_path / "m").glob("*.xml"))
        assert sample.read_text(encoding="utf-8").startswith("<?xml")


class TestLoadBehaviour:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_collection(tmp_path / "nope")

    def test_subdirectories_included(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.xml").write_text("<a/>", encoding="utf-8")
        (tmp_path / "sub" / "b.xml").write_text("<b/>", encoding="utf-8")
        collection = load_collection(tmp_path)
        assert set(collection.documents) == {"a.xml", "sub/b.xml"}

    def test_relative_links_across_files(self, tmp_path):
        (tmp_path / "a.xml").write_text(
            '<a><l xlink:href="b.xml"/></a>', encoding="utf-8"
        )
        (tmp_path / "b.xml").write_text("<b/>", encoding="utf-8")
        collection = load_collection(tmp_path)
        assert collection.link_edge_count == 1

    def test_strict_mode_raises_on_broken_xml(self, tmp_path):
        (tmp_path / "ok.xml").write_text("<a/>", encoding="utf-8")
        (tmp_path / "bad.xml").write_text("<a><b></a>", encoding="utf-8")
        with pytest.raises(CollectionLoadError) as excinfo:
            load_collection(tmp_path)
        assert "bad.xml" in str(excinfo.value)

    def test_lenient_mode_skips_broken_xml(self, tmp_path):
        (tmp_path / "ok.xml").write_text("<a/>", encoding="utf-8")
        (tmp_path / "bad.xml").write_text("<a><b></a>", encoding="utf-8")
        collection = load_collection(tmp_path, strict=False)
        assert set(collection.documents) == {"ok.xml"}

    def test_pattern_filter(self, tmp_path):
        (tmp_path / "a.xml").write_text("<a/>", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("not xml", encoding="utf-8")
        collection = load_collection(tmp_path)
        assert set(collection.documents) == {"a.xml"}


class TestSaveSafety:
    def test_escaping_names_rejected(self, tmp_path):
        from repro.collection.builder import build_collection
        from repro.collection.document import XmlDocument

        collection = build_collection(
            [XmlDocument.from_text("../evil.xml", "<a/>")]
        )
        with pytest.raises(ValueError):
            save_collection(collection, tmp_path / "out")

    def test_nested_names_create_directories(self, tmp_path):
        from repro.collection.builder import build_collection
        from repro.collection.document import XmlDocument

        collection = build_collection(
            [XmlDocument.from_text("deep/nested/d.xml", "<a/>")]
        )
        save_collection(collection, tmp_path / "out")
        assert (tmp_path / "out" / "deep" / "nested" / "d.xml").exists()


class TestLayoutSidecar:
    """``collection_layout.json`` pins node ids across reloads."""

    def _grown_collection(self):
        from repro.collection.builder import (
            build_collection,
            register_document,
            unregister_document,
        )
        from repro.collection.document import XmlDocument

        collection = build_collection(
            [
                XmlDocument.from_text("m.xml", "<m><p>one</p></m>"),
                XmlDocument.from_text("z.xml", "<z/>"),
            ]
        )
        # grow out of sorted order, then shrink: 'a.xml' registers after
        # 'z.xml', and removing 'b.xml' leaves a tombstoned id hole
        register_document(
            collection, XmlDocument.from_text("b.xml", "<b><q/></b>")
        )
        register_document(
            collection, XmlDocument.from_text("a.xml", "<a><r/><s/></a>")
        )
        unregister_document(collection, "b.xml")
        return collection

    def _id_map(self, collection):
        return {
            name: list(ids)
            for name, ids in collection._nodes_by_document.items()
        }

    def test_mutated_collection_round_trips_ids(self, tmp_path):
        original = self._grown_collection()
        save_collection(original, tmp_path, prune=True)
        assert (tmp_path / "collection_layout.json").is_file()
        reloaded = load_collection(tmp_path)
        assert self._id_map(reloaded) == self._id_map(original)
        assert reloaded.node_count == original.node_count
        for name, ids in self._id_map(original).items():
            for node_id in ids:
                assert reloaded.info(node_id).tag == original.info(node_id).tag

    def test_directory_without_sidecar_loads_classically(self, tmp_path):
        from repro.collection.builder import build_collection
        from repro.collection.document import XmlDocument

        docs = [
            XmlDocument.from_text("a.xml", "<a/>"),
            XmlDocument.from_text("b.xml", "<b/>"),
        ]
        for doc in docs:
            (tmp_path / doc.name).write_text("<%s/>" % doc.name[0])
        reloaded = load_collection(tmp_path)
        assert self._id_map(reloaded) == self._id_map(build_collection(docs))

    def test_never_mutated_collection_is_unchanged_by_sidecar(self, tmp_path):
        from repro.collection.builder import build_collection
        from repro.collection.document import XmlDocument

        docs = [
            XmlDocument.from_text("a.xml", "<a><p/></a>"),
            XmlDocument.from_text("b.xml", "<b/>"),
        ]
        collection = build_collection(docs)
        save_collection(collection, tmp_path)
        reloaded = load_collection(tmp_path)
        assert self._id_map(reloaded) == self._id_map(collection)

    def test_prune_deletes_removed_documents(self, tmp_path):
        from repro.collection.builder import unregister_document

        collection = self._grown_collection()
        save_collection(collection, tmp_path, prune=True)
        unregister_document(collection, "z.xml")
        save_collection(collection, tmp_path, prune=True)
        assert not (tmp_path / "z.xml").exists()
        reloaded = load_collection(tmp_path)
        assert set(reloaded.documents) == set(collection.documents)
        assert self._id_map(reloaded) == self._id_map(collection)

    def test_corrupt_sidecar_falls_back_to_sorted_order(self, tmp_path):
        collection = self._grown_collection()
        save_collection(collection, tmp_path, prune=True)
        (tmp_path / "collection_layout.json").write_text("{torn", "utf-8")
        reloaded = load_collection(tmp_path)  # classic order, no crash
        assert set(reloaded.documents) == set(collection.documents)

    def test_non_integer_starts_fall_back_to_sorted_order(self, tmp_path):
        import json

        collection = self._grown_collection()
        save_collection(collection, tmp_path, prune=True)
        sidecar = tmp_path / "collection_layout.json"
        layout = json.loads(sidecar.read_text("utf-8"))
        layout["starts"] = {name: "not-an-int" for name in layout["starts"]}
        sidecar.write_text(json.dumps(layout), "utf-8")
        reloaded = load_collection(tmp_path)  # degrades, never raises
        assert set(reloaded.documents) == set(collection.documents)

    def test_non_object_sidecar_falls_back_to_sorted_order(self, tmp_path):
        collection = self._grown_collection()
        save_collection(collection, tmp_path, prune=True)
        (tmp_path / "collection_layout.json").write_text("[1, 2]", "utf-8")
        reloaded = load_collection(tmp_path)
        assert set(reloaded.documents) == set(collection.documents)

    def test_hand_added_file_registers_after_layout(self, tmp_path):
        collection = self._grown_collection()
        save_collection(collection, tmp_path, prune=True)
        (tmp_path / "extra.xml").write_text("<extra/>", encoding="utf-8")
        reloaded = load_collection(tmp_path)
        id_map = self._id_map(reloaded)
        known = self._id_map(collection)
        assert {k: v for k, v in id_map.items() if k != "extra.xml"} == known
        assert min(id_map["extra.xml"]) > max(
            node_id for ids in known.values() for node_id in ids
        )
