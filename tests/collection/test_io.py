"""Tests for filesystem collection loading and saving."""

import pytest

from repro.collection.io import (
    CollectionLoadError,
    load_collection,
    save_collection,
)
from repro.datasets.movies import generate_movie_collection


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_structure(self, tmp_path):
        original = generate_movie_collection()
        written = save_collection(original, tmp_path / "movies")
        assert written == original.document_count
        loaded = load_collection(tmp_path / "movies")
        assert loaded.document_count == original.document_count
        assert loaded.node_count == original.node_count
        assert loaded.link_edge_count == original.link_edge_count
        assert sorted(loaded.documents) == sorted(original.documents)

    def test_round_trip_preserves_queries(self, tmp_path):
        from repro.core.config import FlixConfig
        from repro.core.framework import Flix

        original = generate_movie_collection()
        save_collection(original, tmp_path / "m")
        loaded = load_collection(tmp_path / "m")
        flix = Flix.build(loaded, FlixConfig.naive())
        (title,) = loaded.find_by_text("title", "Matrix: Revolutions")
        root = loaded.node_id_of(loaded.element(title).parent)
        results = list(flix.find_descendants(root, tag="actor"))
        assert results

    def test_files_have_declarations(self, tmp_path):
        save_collection(generate_movie_collection(), tmp_path / "m")
        sample = next((tmp_path / "m").glob("*.xml"))
        assert sample.read_text(encoding="utf-8").startswith("<?xml")


class TestLoadBehaviour:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_collection(tmp_path / "nope")

    def test_subdirectories_included(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.xml").write_text("<a/>", encoding="utf-8")
        (tmp_path / "sub" / "b.xml").write_text("<b/>", encoding="utf-8")
        collection = load_collection(tmp_path)
        assert set(collection.documents) == {"a.xml", "sub/b.xml"}

    def test_relative_links_across_files(self, tmp_path):
        (tmp_path / "a.xml").write_text(
            '<a><l xlink:href="b.xml"/></a>', encoding="utf-8"
        )
        (tmp_path / "b.xml").write_text("<b/>", encoding="utf-8")
        collection = load_collection(tmp_path)
        assert collection.link_edge_count == 1

    def test_strict_mode_raises_on_broken_xml(self, tmp_path):
        (tmp_path / "ok.xml").write_text("<a/>", encoding="utf-8")
        (tmp_path / "bad.xml").write_text("<a><b></a>", encoding="utf-8")
        with pytest.raises(CollectionLoadError) as excinfo:
            load_collection(tmp_path)
        assert "bad.xml" in str(excinfo.value)

    def test_lenient_mode_skips_broken_xml(self, tmp_path):
        (tmp_path / "ok.xml").write_text("<a/>", encoding="utf-8")
        (tmp_path / "bad.xml").write_text("<a><b></a>", encoding="utf-8")
        collection = load_collection(tmp_path, strict=False)
        assert set(collection.documents) == {"ok.xml"}

    def test_pattern_filter(self, tmp_path):
        (tmp_path / "a.xml").write_text("<a/>", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("not xml", encoding="utf-8")
        collection = load_collection(tmp_path)
        assert set(collection.documents) == {"a.xml"}


class TestSaveSafety:
    def test_escaping_names_rejected(self, tmp_path):
        from repro.collection.builder import build_collection
        from repro.collection.document import XmlDocument

        collection = build_collection(
            [XmlDocument.from_text("../evil.xml", "<a/>")]
        )
        with pytest.raises(ValueError):
            save_collection(collection, tmp_path / "out")

    def test_nested_names_create_directories(self, tmp_path):
        from repro.collection.builder import build_collection
        from repro.collection.document import XmlDocument

        collection = build_collection(
            [XmlDocument.from_text("deep/nested/d.xml", "<a/>")]
        )
        save_collection(collection, tmp_path / "out")
        assert (tmp_path / "out" / "deep" / "nested" / "d.xml").exists()
