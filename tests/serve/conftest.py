"""Fixtures for the serving-layer suite.

``cached_flix`` builds a small two-document collection with the shared
sharded cache configured through ``FlixConfig.cache`` — the new,
non-deprecated way — so every test exercises the production path.
"""

from __future__ import annotations

import pytest

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument
from repro.core.config import CacheConfig, FlixConfig
from repro.core.framework import Flix


@pytest.fixture()
def linked_collection():
    return build_collection(
        [
            XmlDocument.from_text(
                "a.xml",
                '<doc><l xlink:href="b.xml"/><p>alpha</p><q>one</q></doc>',
            ),
            XmlDocument.from_text("b.xml", "<doc><p>beta</p><q>two</q></doc>"),
        ]
    )


@pytest.fixture()
def cached_flix(linked_collection):
    config = FlixConfig.naive().with_cache(CacheConfig(maxsize=64, shards=4))
    return Flix.build(linked_collection, config)


@pytest.fixture()
def figure1_flix(figure1_collection):
    config = FlixConfig.hybrid(60).with_cache(
        CacheConfig(maxsize=256, shards=4)
    )
    return Flix.build(figure1_collection, config)
