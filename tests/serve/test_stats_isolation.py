"""Regression: per-query stats are owned by the stream, never shared.

The historical hazard: ``PathExpressionEvaluator.last_stats`` was the
*evaluator's* mutable counters, so two interleaved streams (or two
threads) would blend their numbers.  The contract now: every
``QueryStream`` carries its own private :class:`QueryStats`;
``last_stats`` only ever holds a frozen snapshot of a *finished* query.
"""

from __future__ import annotations

import threading

from repro.core.api import QueryRequest


class TestInterleavedStreams:
    def test_two_interleaved_streams_keep_private_stats(
        self, figure1_flix, figure1_collection
    ):
        names = sorted(figure1_collection.documents)
        start_a = figure1_collection.document_root(names[0])
        start_b = figure1_collection.document_root(names[1])
        pee = figure1_flix.pee

        stream_a = pee.find_descendants(start_a)
        stream_b = pee.find_descendants(start_b)
        # interleave: one result from each, alternating, until both dry
        drained_a = drained_b = False
        count_a = count_b = 0
        while not (drained_a and drained_b):
            if not drained_a:
                try:
                    next(iter(stream_a))
                    count_a += 1
                except StopIteration:
                    drained_a = True
            if not drained_b:
                try:
                    next(iter(stream_b))
                    count_b += 1
                except StopIteration:
                    drained_b = True
            # mid-flight: each stream's stats count only its own results
            assert stream_a.stats.results_returned == count_a
            assert stream_b.stats.results_returned == count_b

        assert stream_a.stats.results_returned == count_a
        assert stream_b.stats.results_returned == count_b
        # the streams found different amounts of work; had they shared a
        # stats object both would report the blended total
        assert stream_a.stats is not stream_b.stats

    def test_abandoned_stream_does_not_pollute_later_queries(
        self, figure1_flix, figure1_collection
    ):
        start = figure1_collection.document_root(
            sorted(figure1_collection.documents)[0]
        )
        pee = figure1_flix.pee
        abandoned = pee.find_descendants(start)
        next(iter(abandoned))  # consume one result, then walk away
        fresh = pee.find_descendants(start)
        results = list(fresh)
        assert fresh.stats.results_returned == len(results)

    def test_hammer_two_threads_interleaving_streams(
        self, figure1_flix, figure1_collection
    ):
        """Two threads each run many streams; every stream's stats must
        equal its own result count, never the neighbour's."""
        names = sorted(figure1_collection.documents)
        starts = [figure1_collection.document_root(n) for n in names[:4]]
        pee = figure1_flix.pee
        errors = []
        barrier = threading.Barrier(2)

        def hammer(start_nodes) -> None:
            try:
                barrier.wait()
                for _ in range(25):
                    for start in start_nodes:
                        stream = pee.find_descendants(start)
                        count = sum(1 for _ in stream)
                        if stream.stats.results_returned != count:
                            errors.append(
                                (start, count, stream.stats.results_returned)
                            )
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        thread_a = threading.Thread(target=hammer, args=(starts[:2],))
        thread_b = threading.Thread(target=hammer, args=(starts[2:],))
        thread_a.start()
        thread_b.start()
        thread_a.join()
        thread_b.join()
        assert not errors

    def test_response_stats_are_snapshots(self, cached_flix,
                                          linked_collection):
        """QueryResponse.stats must not alias the evaluator's last_stats
        (mutating one may never move the other)."""
        start = linked_collection.document_root("a.xml")
        response = cached_flix.query(QueryRequest.descendants(start, tag="p"))
        evaluator_stats = cached_flix.pee.last_stats
        response.stats.results_returned += 1000
        assert cached_flix.pee.last_stats.results_returned < 1000 or (
            cached_flix.pee.last_stats is not response.stats
        )
        assert evaluator_stats.results_returned != 1000
