"""Serving correctness under concurrent incremental maintenance.

A :class:`FlixService` keeps answering while ``add_document`` /
``remove_document`` run on another thread.  Every response must be
consistent with exactly one published layout generation — never a mix of
two layouts (docs/MAINTENANCE.md).  Runs under CI's serve-stress job
(``PYTHONDEVMODE=1``).
"""

import threading

import pytest

from repro.collection.builder import build_collection
from repro.collection.document import XmlDocument
from repro.core.api import QueryRequest
from repro.core.config import CacheConfig, FlixConfig
from repro.core.framework import Flix

DOCS = 8
QUERY_THREADS = 3


def doc(name, text):
    return XmlDocument.from_text(name, text)


def added_doc(i):
    return doc(f"d{i}.xml", f"<doc><p>p{i}</p></doc>")


@pytest.fixture()
def stable_collection():
    links = "".join(f'<l xlink:href="d{i}.xml"/>' for i in range(DOCS))
    return build_collection(
        [doc("stable.xml", f"<doc>{links}<p>home</p></doc>")]
    )


class TestMutationUnderLoad:
    def oracles(self, collection):
        """Expected descendant set of stable.xml's root per generation.

        Node ids are deterministic: the mutator adds d0..d7 (generations
        1..8, two nodes each, ids assigned sequentially) and then removes
        them in the same order (generations 9..16).
        """
        base_nodes = len(collection.document_nodes("stable.xml"))
        root = collection.document_root("stable.xml")
        base = set(range(base_nodes)) - {root}

        def doc_nodes(i):
            return {base_nodes + 2 * i, base_nodes + 2 * i + 1}

        oracles = {}
        for g in range(DOCS + 1):  # g adds done
            oracles[g] = base | {n for j in range(g) for n in doc_nodes(j)}
        for r in range(1, DOCS + 1):  # r removes done
            oracles[DOCS + r] = base | {
                n for j in range(r, DOCS) for n in doc_nodes(j)
            }
        return oracles

    def test_every_response_matches_one_generation(self, stable_collection):
        config = FlixConfig.naive().with_cache(
            CacheConfig(maxsize=256, shards=4)
        )
        flix = Flix.build(stable_collection, config)
        oracles = self.oracles(stable_collection)
        root = stable_collection.document_root("stable.xml")
        request = QueryRequest.descendants(root)

        stop = threading.Event()
        mutator_errors = []
        query_errors = []
        observations = []  # (generation, frozenset_of_nodes)
        observations_lock = threading.Lock()

        def mutate():
            try:
                for i in range(DOCS):
                    flix.add_document(added_doc(i))
                for i in range(DOCS):
                    flix.remove_document(f"d{i}.xml")
            except BaseException as error:  # pragma: no cover - test fails
                mutator_errors.append(error)
            finally:
                stop.set()

        with flix.serve(workers=3) as service:

            def hammer():
                try:
                    while not stop.is_set():
                        response = service.query(request)
                        with observations_lock:
                            observations.append(
                                (
                                    response.layout_generation,
                                    frozenset(r.node for r in response),
                                )
                            )
                except BaseException as error:  # pragma: no cover
                    query_errors.append(error)

            threads = [
                threading.Thread(target=hammer, name=f"load-{i}")
                for i in range(QUERY_THREADS)
            ]
            mutator = threading.Thread(target=mutate, name="mutator")
            for thread in threads:
                thread.start()
            mutator.start()
            mutator.join(timeout=120)
            for thread in threads:
                thread.join(timeout=120)

        assert not mutator_errors, mutator_errors
        assert not query_errors, query_errors
        assert flix.layout_generation == 2 * DOCS
        assert observations, "the load threads never completed a query"
        for generation, nodes in observations:
            assert generation in oracles, (
                f"response claims unpublished generation {generation}"
            )
            assert nodes == oracles[generation], (
                f"response at generation {generation} mixed layouts: "
                f"unexpected {sorted(nodes ^ oracles[generation])}"
            )

    def test_batch_add_under_load(self, stable_collection):
        """One ``add_documents`` swap: a racing query sees all of the
        batch or none of it, never a strict subset."""
        flix = Flix.build(stable_collection, FlixConfig.naive())
        oracles = self.oracles(stable_collection)
        root = stable_collection.document_root("stable.xml")
        request = QueryRequest.descendants(root)

        stop = threading.Event()
        observations = []
        query_errors = []

        def hammer():
            try:
                while not stop.is_set():
                    response = flix.query(request)
                    observations.append(
                        (
                            response.layout_generation,
                            frozenset(r.node for r in response),
                        )
                    )
            except BaseException as error:  # pragma: no cover
                query_errors.append(error)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            flix.add_documents([added_doc(i) for i in range(DOCS)])
        finally:
            stop.set()
            thread.join(timeout=60)

        assert not query_errors, query_errors
        assert flix.layout_generation == 1
        allowed = {0: oracles[0], 1: oracles[DOCS]}
        for generation, nodes in observations:
            assert nodes == allowed[generation]

    def test_pinned_stream_survives_removal(self, stable_collection):
        """A stream opened before a removal keeps its snapshot: it can
        still answer from the pinned layout even though the published
        layout no longer contains the removed document."""
        flix = Flix.build(stable_collection, FlixConfig.naive())
        flix.add_document(added_doc(0))
        root = stable_collection.document_root("stable.xml")
        stream = flix.query_stream(QueryRequest.descendants(root))
        first = next(stream)
        flix.remove_document("d0.xml")
        rest = list(stream)
        seen = {first.node} | {r.node for r in rest}
        assert seen == self.oracles(stable_collection)[1]
