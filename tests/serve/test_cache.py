"""Correctness of the shared sharded LRU cache, unit and integration."""

from __future__ import annotations

import threading

import pytest

from repro.collection.document import XmlDocument
from repro.core.api import QueryRequest
from repro.serve.cache import ShardedLRUCache


class TestShardedLRUCacheUnit:
    def test_boxed_get_distinguishes_cached_none(self):
        cache = ShardedLRUCache(maxsize=8, shards=2)
        assert cache.get("missing") is None
        cache.put("negative", None)
        assert cache.get("negative") == (None,)
        assert cache.lookup("negative", default="sentinel") is None
        assert cache.lookup("missing", default="sentinel") == "sentinel"

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedLRUCache(maxsize=0)
        with pytest.raises(ValueError):
            ShardedLRUCache(maxsize=8, shards=0)

    def test_shards_clamped_to_maxsize(self):
        cache = ShardedLRUCache(maxsize=2, shards=16)
        assert cache.shards == 2
        assert cache.maxsize == 2

    def test_bounded_under_churn(self):
        cache = ShardedLRUCache(maxsize=32, shards=4)
        for i in range(10_000):
            cache.put(("key", i), i)
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats.evictions >= 10_000 - 32
        assert stats.entries == len(cache)

    def test_lru_order_within_shard(self):
        cache = ShardedLRUCache(maxsize=2, shards=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (1,)  # refresh a
        cache.put("c", 3)  # evicts b, the least recent
        assert cache.get("b") is None
        assert cache.get("a") == (1,)
        assert cache.get("c") == (3,)

    def test_generation_invalidation_is_lazy_and_total(self):
        cache = ShardedLRUCache(maxsize=16, shards=4)
        for i in range(8):
            cache.put(i, i * 10)
        generation = cache.invalidate_all()
        assert generation == cache.generation
        for i in range(8):
            assert cache.get(i) is None  # stale entries dropped on lookup
        stats = cache.stats()
        assert stats.invalidations == 8
        # a fresh store after the bump is servable again
        cache.put("new", 99)
        assert cache.get("new") == (99,)

    def test_put_with_stale_generation_is_unservable(self):
        """The stale-store race: a worker that captured the generation
        before an invalidation must never have its store served."""
        cache = ShardedLRUCache(maxsize=8, shards=2)
        captured = cache.generation
        cache.invalidate_all()  # the index mutated while the worker evaluated
        cache.put("key", "pre-mutation answer", generation=captured)
        assert cache.get("key") is None
        # a store stamped with the live generation is served normally
        cache.put("key", "fresh", generation=cache.generation)
        assert cache.get("key") == ("fresh",)

    def test_concurrent_readers_and_writers(self):
        cache = ShardedLRUCache(maxsize=128, shards=8)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(300):
                    key = (worker_id % 4, i % 40)
                    cache.put(key, key)
                    boxed = cache.get(key)
                    if boxed is not None and boxed[0] != key:
                        errors.append((key, boxed))
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 128


class TestFlixCacheIntegration:
    def test_warm_equals_cold(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        request = QueryRequest.descendants(start, tag="p")
        cold = cached_flix.query(request)
        warm = cached_flix.query(request)
        assert not cold.from_cache and warm.from_cache
        assert [r.node for r in warm.results] == [
            r.node for r in cold.results
        ]
        assert warm.stats.results_returned == cold.stats.results_returned

    def test_scalar_hot_pair_caching(self, cached_flix, linked_collection):
        a = linked_collection.document_root("a.xml")
        b = linked_collection.document_root("b.xml")
        first = cached_flix.query(QueryRequest.test(a, b))
        again = cached_flix.query(QueryRequest.test(a, b))
        assert again.from_cache
        assert again.value == first.value
        # negative probes cache too (the 1-tuple boxing at work)
        none1 = cached_flix.query(QueryRequest.test(b, a))
        none2 = cached_flix.query(QueryRequest.test(b, a))
        assert none1.value is None and none2.value is None
        assert none2.from_cache

    def test_add_document_invalidates(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        request = QueryRequest.descendants(start, tag="p")
        before = cached_flix.query(request)
        assert cached_flix.query(request).from_cache
        cached_flix.add_document(
            XmlDocument.from_text("c.xml", "<doc><p>gamma</p></doc>")
        )
        after = cached_flix.query(request)
        assert not after.from_cache  # generation bumped, entry unservable
        assert {r.node for r in after.results} == {
            r.node for r in before.results
        }

    def test_rebuild_starts_cold(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        request = QueryRequest.descendants(start, tag="p")
        cached_flix.query(request)
        assert cached_flix.query(request).from_cache
        rebuilt = cached_flix.rebuild()
        assert rebuilt.cache is not None  # config.cache carries over
        assert rebuilt.cache_hits == 0 and rebuilt.cache_misses == 0
        assert not rebuilt.query(request).from_cache

    def test_repair_roundtrip_serves_fresh_cache(
        self, cached_flix, linked_collection, tmp_path
    ):
        """A repaired/reloaded index starts with an empty cache: entries
        never survive persistence."""
        from repro.core.framework import Flix

        start = linked_collection.document_root("a.xml")
        request = QueryRequest.descendants(start, tag="p")
        expected = cached_flix.query(request)
        cached_flix.save(tmp_path / "idx")
        assert Flix.repair(linked_collection, tmp_path / "idx") == []
        loaded = Flix.load(linked_collection, tmp_path / "idx")
        response = loaded.query(request)
        assert not response.from_cache
        assert [r.node for r in response.results] == [
            r.node for r in expected.results
        ]

    def test_limited_query_served_by_slicing(self, figure1_flix,
                                             figure1_collection):
        start = figure1_collection.document_root("d05.xml")
        full = figure1_flix.query(QueryRequest.descendants(start))
        hits_before = figure1_flix.cache_hits
        limited = figure1_flix.query(
            QueryRequest.descendants(start).with_limit(3)
        )
        assert figure1_flix.cache_hits == hits_before + 1
        assert limited.from_cache
        assert [r.node for r in limited.results] == [
            r.node for r in full.results[:3]
        ]

    def test_concurrent_reads_are_deterministic(self, figure1_flix,
                                                figure1_collection):
        """N threads issuing the same query set must all see identical
        sorted results, hit or miss."""
        roots = [
            figure1_collection.document_root(name)
            for name in sorted(figure1_collection.documents)[:6]
        ]
        requests = [QueryRequest.descendants(root) for root in roots]
        expected = [
            sorted(r.node for r in figure1_flix.query(req).results)
            for req in requests
        ]
        figure1_flix.invalidate_caches()
        mismatches = []
        barrier = threading.Barrier(6)

        def worker() -> None:
            barrier.wait()
            for index, request in enumerate(requests):
                got = sorted(
                    r.node for r in figure1_flix.query(request).results
                )
                if got != expected[index]:
                    mismatches.append((index, got))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not mismatches

    def test_budget_bearing_requests_bypass_storage(
        self, cached_flix, linked_collection
    ):
        from repro.core.pee import QueryBudget

        start = linked_collection.document_root("a.xml")
        budgeted = QueryRequest.descendants(start, tag="p").with_budget(
            QueryBudget(max_queue_pops=1000)
        )
        cached_flix.query(budgeted)
        response = cached_flix.query(budgeted)
        assert not response.from_cache  # never stored, never replayed

    def test_mutation_during_evaluation_is_never_cached(
        self, cached_flix, linked_collection
    ):
        """``add_document`` racing a cache miss: the answer computed
        against the pre-mutation index must not be stored as fresh after
        the invalidation (the generation is captured at miss time)."""
        start = linked_collection.document_root("a.xml")
        request = QueryRequest.descendants(start, tag="p")
        original_evaluate = cached_flix._evaluate
        raced = []

        def racing_evaluate(req, budget, layout=None):
            # evaluate against the old index, then mutate it before the
            # caller gets to store the result — the reviewed race, made
            # deterministic
            payload, stats = original_evaluate(req, budget, layout)
            if not raced:
                raced.append(True)
                cached_flix.add_document(
                    XmlDocument.from_text(
                        "c.xml", "<doc><p>gamma</p></doc>"
                    )
                )
            return payload, stats

        cached_flix._evaluate = racing_evaluate
        try:
            cached_flix.query(request)
        finally:
            cached_flix._evaluate = original_evaluate
        after = cached_flix.query(request)
        assert not after.from_cache  # the racy store must read as stale

    def test_default_resilience_budget_answers_not_cached(
        self, linked_collection
    ):
        """A budget configured at the *evaluator* level (resilience
        defaults, no per-request budget) can truncate answers; those must
        never be stored either."""
        from repro.core.config import FlixConfig, CacheConfig
        from repro.core.framework import Flix

        config = (
            FlixConfig.naive()
            .with_cache(CacheConfig(maxsize=64, shards=4))
            .with_resilience(max_queue_pops=1)
        )
        flix = Flix.build(linked_collection, config)
        start = linked_collection.document_root("a.xml")
        request = QueryRequest.descendants(start)
        first = flix.query(request)
        assert first.completeness == "truncated"
        second = flix.query(request)
        assert not second.from_cache  # incomplete answers are never stored
        # the streaming path applies the same gate
        list(flix.query_stream(request))
        third = flix.query(request)
        assert not third.from_cache
