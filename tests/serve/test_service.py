"""FlixService: worker pool, backpressure, deadlines, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.api import QueryRequest
from repro.core.pee import QueryBudget
from repro.serve import (
    AdmissionQueue,
    FlixService,
    ServiceClosedError,
    ServiceOverloadedError,
)


class TestAdmissionQueue:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)

    def test_offer_rejects_when_full(self):
        queue = AdmissionQueue(2)
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(ServiceOverloadedError) as excinfo:
            queue.offer("c")
        assert excinfo.value.max_pending == 2
        assert queue.take() == "a"
        queue.offer("c")  # space again
        assert len(queue) == 2


class TestFlixService:
    def test_submit_and_result(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        with cached_flix.serve(workers=2) as service:
            pending = service.submit(QueryRequest.descendants(start, tag="p"))
            response = pending.result(timeout=10)
            assert pending.done
            assert len(response.results) == 2

    def test_submit_many_preserves_order(self, cached_flix,
                                         linked_collection):
        a = linked_collection.document_root("a.xml")
        b = linked_collection.document_root("b.xml")
        requests = [
            QueryRequest.descendants(a, tag="p"),
            QueryRequest.descendants(b, tag="p"),
            QueryRequest.test(a, b),
        ] * 4
        with cached_flix.serve(workers=3) as service:
            responses = service.submit_many(requests)
        assert [r.request for r in responses] == requests
        assert service.served == len(requests)

    def test_concurrent_results_match_serial(self, figure1_flix,
                                             figure1_collection):
        roots = [
            figure1_collection.document_root(name)
            for name in sorted(figure1_collection.documents)[:8]
        ]
        requests = [QueryRequest.descendants(root) for root in roots] * 3
        serial = [figure1_flix.query(request) for request in requests]
        figure1_flix.invalidate_caches()
        with figure1_flix.serve(workers=4) as service:
            concurrent = service.submit_many(requests)
        for expected, got in zip(serial, concurrent):
            assert [r.node for r in expected.results] == [
                r.node for r in got.results
            ]

    def test_closed_service_rejects(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        service = cached_flix.serve(workers=1)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.submit(QueryRequest.descendants(start))
        service.close()  # idempotent

    def test_backpressure_rejects_beyond_max_pending(
        self, cached_flix, linked_collection
    ):
        start = linked_collection.document_root("a.xml")
        release = threading.Event()
        # stall the single worker so submissions pile up in the queue
        slow = QueryRequest.descendants(start)
        original_query = cached_flix.query

        def stalled_query(request, budget=None):
            release.wait(timeout=10)
            return original_query(request, budget=budget)

        cached_flix.query = stalled_query
        try:
            service = FlixService(cached_flix, workers=1, max_pending=2)
            futures = [service.submit(slow)]
            time.sleep(0.05)  # let the worker pick up the first request
            futures.append(service.submit(slow))
            futures.append(service.submit(slow))
            with pytest.raises(ServiceOverloadedError):
                service.submit(slow)
        finally:
            release.set()
            cached_flix.query = original_query
        for future in futures:
            assert future.result(timeout=10) is not None
        service.close()

    def test_expired_in_queue_answers_truncated(
        self, cached_flix, linked_collection
    ):
        start = linked_collection.document_root("a.xml")
        release = threading.Event()
        original_query = cached_flix.query

        def stalled_query(request, budget=None):
            release.wait(timeout=10)
            return original_query(request, budget=budget)

        cached_flix.query = stalled_query
        try:
            service = FlixService(cached_flix, workers=1, max_pending=8)
            blocker = service.submit(QueryRequest.descendants(start))
            time.sleep(0.05)
            doomed = service.submit(
                QueryRequest.descendants(start).with_budget(
                    QueryBudget(deadline_seconds=0.01)
                )
            )
            time.sleep(0.1)  # let the deadline elapse while queued
        finally:
            release.set()
            cached_flix.query = original_query
        response = doomed.result(timeout=10)
        assert response.completeness == "truncated"
        assert response.results == []
        assert blocker.result(timeout=10).is_complete
        service.close()

    def test_submit_close_race_never_hangs(self, cached_flix,
                                           linked_collection):
        """A submit racing close() must either be served or rejected —
        never parked behind the worker-stop sentinels where result()
        would block forever."""
        start = linked_collection.document_root("a.xml")
        request = QueryRequest.descendants(start, tag="p")
        for _ in range(25):
            service = FlixService(cached_flix, workers=2, max_pending=64)
            accepted = []
            barrier = threading.Barrier(3)

            def submitter():
                barrier.wait()
                try:
                    accepted.append(service.submit(request))
                except ServiceClosedError:
                    pass  # rejection is the other legal outcome

            def closer():
                barrier.wait()
                service.close()

            threads = [threading.Thread(target=submitter) for _ in range(2)]
            threads.append(threading.Thread(target=closer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.close()
            for pending in accepted:
                # pre-fix this blocked forever; the timeout turns a
                # regression into a failure instead of a hung suite
                assert pending.result(timeout=10) is not None

    def test_close_timeout_is_an_overall_deadline(self, cached_flix,
                                                  linked_collection):
        """close(timeout) bounds the total wait, not timeout-per-worker,
        and reports whether every worker actually exited."""
        start = linked_collection.document_root("a.xml")
        release = threading.Event()
        original_query = cached_flix.query

        def stalled_query(request, budget=None):
            release.wait(timeout=10)
            return original_query(request, budget=budget)

        cached_flix.query = stalled_query
        try:
            service = FlixService(cached_flix, workers=4)
            futures = [
                service.submit(QueryRequest.descendants(start))
                for _ in range(4)
            ]
            time.sleep(0.05)  # let all four workers stall mid-query
            begun = time.monotonic()
            fully_closed = service.close(timeout=0.2)
            elapsed = time.monotonic() - begun
            assert not fully_closed  # workers still stalled at the deadline
            assert elapsed < 0.75  # one shared deadline, not workers x 0.2
        finally:
            release.set()
            cached_flix.query = original_query
        assert service.close() is True  # second close re-joins stragglers
        for future in futures:
            assert future.result(timeout=10) is not None

    def test_default_budget_applies(self, figure1_flix, figure1_collection):
        start = figure1_collection.document_root("d05.xml")
        with figure1_flix.serve(
            workers=1,
            default_budget=QueryBudget(max_queue_pops=1),
        ) as service:
            response = service.query(QueryRequest.descendants(start))
        assert response.completeness == "truncated"

    def test_worker_errors_reach_the_caller(self, cached_flix):
        bad = QueryRequest.descendants(10**9)  # nonexistent node
        with cached_flix.serve(workers=1) as service:
            pending = service.submit(bad)
            with pytest.raises(Exception):
                pending.result(timeout=10)

    def test_result_timeout(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        release = threading.Event()
        original_query = cached_flix.query

        def stalled_query(request, budget=None):
            release.wait(timeout=10)
            return original_query(request, budget=budget)

        cached_flix.query = stalled_query
        try:
            service = FlixService(cached_flix, workers=1)
            pending = service.submit(QueryRequest.descendants(start))
            with pytest.raises(TimeoutError):
                pending.result(timeout=0.05)
        finally:
            release.set()
            cached_flix.query = original_query
        assert pending.result(timeout=10) is not None
        service.close()

    def test_validation(self, cached_flix):
        with pytest.raises(ValueError):
            FlixService(cached_flix, workers=0)

    def test_service_metrics_and_traces(self, cached_flix,
                                        linked_collection):
        start = linked_collection.document_root("a.xml")
        request = QueryRequest.descendants(start, tag="p")
        with cached_flix.serve(workers=2) as service:
            service.submit_many([request] * 4)
        from repro.obs import render_json  # structured export

        exported = render_json(cached_flix.obs.registry)
        assert "flix_service_requests_total" in exported
        assert "flix_service_queue_depth" in exported
        assert "flix_cache_hits_total" in exported
        traces = [
            trace
            for trace in cached_flix.obs.tracer.traces()
            if trace.name == "svc.query"
        ]
        assert traces, "serving must emit svc.query traces"
        assert service.cache_stats().hits >= 1
