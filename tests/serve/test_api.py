"""The unified QueryRequest/QueryResponse API and its legacy shims."""

from __future__ import annotations

import pytest

from repro.core.api import QUERY_KINDS, QueryRequest
from repro.core.config import CacheConfig, FlixConfig
from repro.core.framework import Flix
from repro.core.pee import QueryBudget


class TestRequestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            QueryRequest(kind="siblings", source=0)

    def test_descendants_needs_exactly_one_seed(self):
        with pytest.raises(ValueError, match="exactly one of"):
            QueryRequest(kind="descendants")
        with pytest.raises(ValueError, match="exactly one of"):
            QueryRequest(kind="descendants", source=0, source_tag="movie")

    def test_scalar_kinds_need_target(self):
        for kind in ("cost", "test"):
            with pytest.raises(ValueError, match="target"):
                QueryRequest(kind=kind, source=0)

    def test_path_needs_steps(self):
        with pytest.raises(ValueError, match="step tag"):
            QueryRequest(kind="path", source=0)
        with pytest.raises(ValueError, match="path kind"):
            QueryRequest(kind="children", source=0, path=("a",))

    def test_bidirectional_only_for_test(self):
        with pytest.raises(ValueError, match="bidirectional"):
            QueryRequest(kind="descendants", source=0, bidirectional=True)

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError, match="limit"):
            QueryRequest.descendants(0, limit=0)
        with pytest.raises(ValueError, match="max_distance"):
            QueryRequest.descendants(0, max_distance=-1)

    def test_requests_are_hashable_and_frozen(self):
        request = QueryRequest.descendants(0, tag="p")
        assert hash(request) == hash(QueryRequest.descendants(0, tag="p"))
        with pytest.raises(Exception):
            request.kind = "ancestors"

    def test_cache_key_excludes_limit_and_rejects_budget(self):
        full = QueryRequest.descendants(0, tag="p")
        limited = full.with_limit(3)
        assert full.cache_key() == limited.cache_key()
        budgeted = full.with_budget(QueryBudget(max_queue_pops=5))
        assert budgeted.cache_key() is None

    def test_every_kind_is_constructible(self):
        built = {
            QueryRequest.descendants(0).kind,
            QueryRequest.ancestors(0).kind,
            QueryRequest.children(0).kind,
            QueryRequest.find_path(0, ["a"]).kind,
            QueryRequest.connections(0).kind,
            QueryRequest.cost(0, 1).kind,
            QueryRequest.test(0, 1).kind,
            QueryRequest.type_query("movie").kind,
        }
        assert built == set(QUERY_KINDS) - {"path"} | {"path"}


class TestShimParity:
    """The eight legacy methods must return exactly what query() does."""

    def test_descendants(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        unified = cached_flix.query(QueryRequest.descendants(start, tag="p"))
        cached_flix.invalidate_caches()
        legacy = list(cached_flix.find_descendants(start, tag="p"))
        assert [r.node for r in legacy] == [r.node for r in unified.results]
        assert len(unified.results) == 2  # alpha (local) + beta (via link)

    def test_ancestors(self, cached_flix, linked_collection):
        target = linked_collection.document_root("b.xml")
        unified = cached_flix.query(QueryRequest.ancestors(target))
        cached_flix.invalidate_caches()
        legacy = list(cached_flix.find_ancestors(target))
        assert [r.node for r in legacy] == [r.node for r in unified.results]

    def test_children(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        unified = cached_flix.query(QueryRequest.children(start))
        legacy = cached_flix.find_children(start)
        assert [r.node for r in legacy] == [r.node for r in unified.results]

    def test_type_query(self, cached_flix):
        unified = cached_flix.query(QueryRequest.type_query("doc", "p"))
        cached_flix.invalidate_caches()
        legacy = list(cached_flix.evaluate_type_query("doc", "p"))
        assert [r.node for r in legacy] == [r.node for r in unified.results]

    def test_path(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        unified = cached_flix.query(QueryRequest.find_path(start, ["p"]))
        legacy = cached_flix.find_path(start, ["p"])
        assert legacy == unified.results

    def test_connections(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        unified = cached_flix.query(QueryRequest.connections(start, tag="p"))
        cached_flix.invalidate_caches()
        legacy = list(cached_flix.find_connections(start, tag="p"))
        assert legacy == unified.results

    def test_scalars(self, cached_flix, linked_collection):
        a = linked_collection.document_root("a.xml")
        b = linked_collection.document_root("b.xml")
        assert cached_flix.query(QueryRequest.test(a, b)).value == (
            cached_flix.connection_test(a, b)
        )
        assert cached_flix.query(QueryRequest.cost(a, b)).value == (
            cached_flix.connection_cost(a, b)
        )

    def test_response_shape(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        response = cached_flix.query(QueryRequest.descendants(start, tag="p"))
        assert response.is_complete
        assert response.completeness == "complete"
        assert len(response) == len(response.results)
        assert list(response) == response.results
        assert response.elapsed_seconds >= 0.0
        assert response.stats.results_returned == len(response.results)

    def test_limited_response_is_prefix(self, cached_flix, linked_collection):
        start = linked_collection.document_root("a.xml")
        full = cached_flix.query(QueryRequest.descendants(start))
        limited = cached_flix.query(
            QueryRequest.descendants(start).with_limit(2)
        )
        assert [r.node for r in limited.results] == [
            r.node for r in full.results[:2]
        ]

    def test_query_stream_rejects_scalar_kinds(self, cached_flix):
        with pytest.raises(ValueError, match="no streaming form"):
            next(cached_flix.query_stream(QueryRequest.test(0, 1)))


class TestDeprecations:
    def test_enable_cache_warns_and_still_works(self, linked_collection):
        flix = Flix.build(linked_collection, FlixConfig.naive())
        with pytest.warns(DeprecationWarning, match="enable_cache"):
            flix.enable_cache(maxsize=8)
        start = linked_collection.document_root("a.xml")
        list(flix.find_descendants(start, tag="p"))
        list(flix.find_descendants(start, tag="p"))
        assert flix.cache_hits == 1 and flix.cache_misses == 1

    def test_disable_cache_warns(self, linked_collection):
        flix = Flix.build(linked_collection, FlixConfig.naive())
        with pytest.warns(DeprecationWarning):
            flix.enable_cache()
        with pytest.warns(DeprecationWarning, match="disable_cache"):
            flix.disable_cache()
        assert flix.cache is None

    def test_config_cache_replaces_enable_cache(self, cached_flix):
        # the new path warns nothing and feeds the same counters
        assert cached_flix.cache is not None
        assert cached_flix.cache_hits == 0


class TestCacheConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(maxsize=0)
        with pytest.raises(ValueError):
            CacheConfig(shards=0)

    def test_roundtrip(self):
        config = CacheConfig(maxsize=128, shards=2)
        assert CacheConfig.from_dict(config.to_dict()) == config

    def test_with_cache_and_without_cache(self):
        config = FlixConfig.naive().with_cache()
        assert config.cache is not None
        assert config.without_cache().cache is None

    def test_persistence_roundtrip(self, cached_flix, tmp_path):
        cached_flix.save(tmp_path / "index")
        loaded = Flix.load(cached_flix.collection, tmp_path / "index")
        assert loaded.config.cache == cached_flix.config.cache
        assert loaded.cache is not None
