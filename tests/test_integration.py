"""End-to-end integration scenarios crossing every module boundary."""

import pytest

from repro import (
    Flix,
    FlixConfig,
    XmlDocument,
    build_collection,
    collect_statistics,
)
from repro.collection.io import load_collection, save_collection
from repro.datasets.dblp import DblpSpec, find_aries, generate_dblp
from repro.graph.closure import transitive_closure
from repro.query.engine import QueryEngine
from repro.storage.sqlite_backend import SqliteBackend


class TestPaperPipeline:
    """The full section 6 pipeline: corpus -> build -> query -> verify."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_dblp(DblpSpec(documents=200))

    @pytest.fixture(scope="class")
    def oracle(self, corpus):
        return transitive_closure(corpus.graph)

    @pytest.mark.parametrize(
        "config_name",
        ["naive", "maximal_ppo", "unconnected_hopi", "hybrid", "auto"],
    )
    def test_figure5_query_correct_under_all_configs(
        self, corpus, oracle, config_name
    ):
        configs = {
            "naive": FlixConfig.naive(),
            "maximal_ppo": FlixConfig.maximal_ppo(),
            "unconnected_hopi": FlixConfig.unconnected_hopi(100),
            "hybrid": FlixConfig.hybrid(100),
            "auto": None,
        }
        flix = Flix.build(corpus, configs[config_name])
        aries = find_aries(corpus)
        got = {r.node for r in flix.find_descendants(aries, tag="article")}
        expected = {
            v
            for v in oracle.descendants(aries)
            if corpus.tag(v) == "article" and v != aries
        }
        assert got == expected

    def test_exact_order_mode_still_complete(self, corpus, oracle):
        flix = Flix.build(corpus, FlixConfig.unconnected_hopi(100))
        aries = find_aries(corpus)
        ordered = list(
            flix.find_descendants(aries, tag="article", exact_order=True)
        )
        distances = [r.distance for r in ordered]
        assert distances == sorted(distances)
        assert {r.node for r in ordered} == {
            v
            for v in oracle.descendants(aries)
            if corpus.tag(v) == "article" and v != aries
        }


class TestSqliteBackedBuild:
    """The paper's prototype is database-backed; ours can be too."""

    def test_full_build_and_query_on_sqlite(self, figure1_collection):
        flix = Flix.build(
            figure1_collection,
            FlixConfig.hybrid(100),
            backend_factory=SqliteBackend,
        )
        oracle = transitive_closure(figure1_collection.graph)
        start = figure1_collection.document_root("d05.xml")
        got = {r.node for r in flix.find_descendants(start)}
        assert got == set(oracle.descendants(start)) - {start}
        assert flix.size_bytes() > 0

    def test_sqlite_and_memory_sizes_same_order(self, figure1_collection):
        from repro.storage.memory import MemoryBackend

        memory = Flix.build(
            figure1_collection, FlixConfig.naive(), backend_factory=MemoryBackend
        )
        sqlite = Flix.build(
            figure1_collection, FlixConfig.naive(), backend_factory=SqliteBackend
        )
        # SQLite pages add overhead but stay within an order of magnitude
        assert sqlite.size_bytes() < 50 * memory.size_bytes()


class TestDiskRoundTripPipeline:
    def test_generate_save_load_index_query(self, tmp_path):
        corpus = generate_dblp(DblpSpec(documents=60))
        save_collection(corpus, tmp_path / "dblp")
        loaded = load_collection(tmp_path / "dblp")
        assert loaded.link_edge_count == corpus.link_edge_count
        flix = Flix.build(loaded, FlixConfig.maximal_ppo())
        aries = find_aries(loaded)
        fresh = Flix.build(corpus, FlixConfig.maximal_ppo())
        assert {r.node for r in flix.find_descendants(aries)} == {
            r.node for r in fresh.find_descendants(find_aries(corpus))
        }


class TestHeterogeneousScenario:
    """The paper's Figure 1 story, end to end."""

    def test_hybrid_uses_both_strategy_families(self, figure1_collection):
        flix = Flix.build(figure1_collection, FlixConfig.hybrid(120))
        strategies = {m.strategy for m in flix.meta_documents}
        assert "ppo" in strategies
        assert "hopi" in strategies

    def test_stats_drive_recommendation(self, figure1_collection):
        stats = collect_statistics(figure1_collection)
        config = FlixConfig.recommend(
            stats.link_density,
            stats.intra_document_links,
            stats.mean_document_size,
        )
        flix = Flix.build(figure1_collection, config)
        oracle = transitive_closure(figure1_collection.graph)
        start = figure1_collection.document_root("d01.xml")
        got = {r.node for r in flix.find_descendants(start)}
        assert got == set(oracle.descendants(start)) - {start}


class TestSelfTuningLoop:
    def test_monitor_rebuild_improves_link_traversals(self):
        """Run the §7 loop: bad config -> advice -> rebuild -> fewer hops."""
        corpus = generate_dblp(DblpSpec(documents=120))
        bad = Flix.build(corpus, FlixConfig.unconnected_hopi(30))
        aries = find_aries(corpus)
        for _ in range(25):
            list(bad.find_descendants(aries))
        advice = bad.tuning_advice(link_traversal_threshold=5.0)
        assert advice.should_rebuild
        better = bad.rebuild(advice.recommended_config)
        list(better.find_descendants(aries))
        assert (
            better.pee.last_stats.link_traversals
            < bad.pee.last_stats.link_traversals
        )


class TestRelaxedQueryOverDblp:
    def test_ontology_bridges_article_and_inproceedings(self):
        corpus = generate_dblp(DblpSpec(documents=80))
        flix = Flix.build(corpus, FlixConfig.maximal_ppo())
        engine = QueryEngine(flix)
        # ~paper expands to article + inproceedings via the ontology
        matches = engine.evaluate("//~paper", top_k=30)
        tags = {corpus.tag(m.node) for m in matches}
        assert tags == {"article", "inproceedings"}

    def test_predicate_on_year(self):
        corpus = generate_dblp(DblpSpec(documents=80))
        flix = Flix.build(corpus, FlixConfig.maximal_ppo())
        engine = QueryEngine(flix)
        matches = engine.evaluate('//inproceedings[booktitle = "VLDB"]', top_k=50)
        for match in matches:
            element = corpus.element(match.node)
            assert element.find("booktitle").text == "VLDB"


class TestUnresolvedLinkResilience:
    def test_broken_links_do_not_break_indexing(self):
        documents = [
            XmlDocument.from_text(
                "a.xml",
                '<doc><l xlink:href="missing.xml"/>'
                '<m idref="ghost"/><p>text</p></doc>',
            ),
            XmlDocument.from_text("b.xml", '<doc><l xlink:href="a.xml"/></doc>'),
        ]
        collection = build_collection(documents)
        assert len(collection.unresolved_links) == 2
        flix = Flix.build(collection, FlixConfig.naive())
        start = collection.document_root("b.xml")
        results = {r.node for r in flix.find_descendants(start, tag="p")}
        assert len(results) == 1
