"""Unit tests for the synthetic collection generators."""

import random

import pytest

from repro.collection.stats import collect_statistics
from repro.datasets.synthetic import (
    SyntheticSpec,
    generate_figure1_collection,
    generate_synthetic_collection,
    random_tree_document,
)


class TestRandomTreeDocument:
    def test_size_exact(self):
        doc = random_tree_document("d.xml", 17, random.Random(0))
        assert doc.element_count == 17

    def test_every_element_anchored(self):
        doc = random_tree_document("d.xml", 10, random.Random(0))
        assert len(doc.anchors) == 10

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_tree_document("d.xml", 0, random.Random(0))

    def test_max_children_respected(self):
        doc = random_tree_document("d.xml", 60, random.Random(1), max_children=2)
        for element in doc.elements:
            non_link = [c for c in element.children if c.name != "link"]
            assert len(non_link) <= 2


class TestSyntheticCollection:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(documents=0)
        with pytest.raises(ValueError):
            SyntheticSpec(deep_link_fraction=1.5)

    def test_document_count(self):
        coll = generate_synthetic_collection(SyntheticSpec(documents=12, seed=3))
        assert coll.document_count == 12

    def test_zero_link_density_gives_isolated_trees(self):
        spec = SyntheticSpec(documents=8, links_per_document=0.0, seed=1)
        coll = generate_synthetic_collection(spec)
        assert coll.link_edge_count == 0
        from repro.graph.treecheck import is_forest

        assert is_forest(coll.graph)

    def test_link_density_scales(self):
        sparse = generate_synthetic_collection(
            SyntheticSpec(documents=30, links_per_document=0.5, seed=5)
        )
        dense = generate_synthetic_collection(
            SyntheticSpec(documents=30, links_per_document=4.0, seed=5)
        )
        assert dense.link_edge_count > sparse.link_edge_count

    def test_intra_links_generated(self):
        spec = SyntheticSpec(
            documents=10,
            links_per_document=0.0,
            intra_links_per_document=2.0,
            seed=7,
        )
        coll = generate_synthetic_collection(spec)
        stats = collect_statistics(coll)
        assert stats.intra_document_links > 0
        assert stats.inter_document_links == 0

    def test_deterministic(self):
        spec = SyntheticSpec(documents=10, seed=42)
        a = generate_synthetic_collection(spec)
        b = generate_synthetic_collection(spec)
        assert a.node_count == b.node_count
        assert sorted(a.link_edges) == sorted(b.link_edges)


class TestFigure1:
    def test_ten_documents(self, figure1_collection):
        assert figure1_collection.document_count == 10

    def test_tree_part_is_tree_shaped(self, figure1_collection):
        """Documents 1-4 plus their root links must form a tree."""
        nodes = []
        for name in ("d01.xml", "d02.xml", "d03.xml", "d04.xml"):
            nodes.extend(figure1_collection.document_nodes(name))
        sub = figure1_collection.graph.subgraph(set(nodes))
        # remove the single bridge edge from d05 (not in subset anyway)
        from repro.graph.treecheck import is_forest

        assert is_forest(sub)

    def test_dense_part_has_cycle(self, figure1_collection):
        from repro.graph.scc import strongly_connected_components

        components = strongly_connected_components(figure1_collection.graph)
        assert any(len(c) > 1 for c in components)

    def test_dense_part_heavily_linked(self, figure1_collection):
        stats = collect_statistics(figure1_collection)
        assert stats.link_edge_count >= 10
