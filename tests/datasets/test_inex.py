"""Tests for the INEX-style collection generator."""

import pytest

from repro.collection.stats import collect_statistics
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.inex import InexSpec, generate_inex
from repro.graph.closure import transitive_closure


@pytest.fixture(scope="module")
def inex_collection():
    return generate_inex(InexSpec(articles=8, mean_article_size=150))


class TestShape:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            InexSpec(articles=0)
        with pytest.raises(ValueError):
            InexSpec(cross_citation_rate=1.5)

    def test_large_documents(self, inex_collection):
        stats = collect_statistics(inex_collection)
        assert stats.mean_document_size > 80

    def test_deep_structure(self, inex_collection):
        stats = collect_statistics(inex_collection)
        assert stats.max_depth >= 4

    def test_mostly_intra_document_links(self, inex_collection):
        stats = collect_statistics(inex_collection)
        assert stats.intra_document_links > stats.inter_document_links
        assert stats.intra_document_links >= 8

    def test_inex_schema_tags(self, inex_collection):
        tags = set(inex_collection.tags())
        assert {"article", "fm", "bdy", "bm", "sec", "p", "bib", "bb"} <= tags

    def test_citations_resolve(self, inex_collection):
        assert inex_collection.unresolved_links == []

    def test_deterministic(self):
        spec = InexSpec(articles=4)
        a = generate_inex(spec)
        b = generate_inex(spec)
        assert a.node_count == b.node_count
        assert sorted(a.link_edges) == sorted(b.link_edges)


class TestPaperRoleOfInex:
    def test_recommendation_prefers_naive(self, inex_collection):
        """Section 4.3: INEX 'would be a good candidate' for Naive."""
        stats = collect_statistics(inex_collection)
        config = FlixConfig.recommend(
            stats.link_density,
            stats.intra_document_links,
            stats.mean_document_size,
            intra_link_fraction=stats.intra_link_fraction,
        )
        assert config.mdb_strategy == "naive"

    def test_naive_config_answers_exactly(self, inex_collection):
        flix = Flix.build(inex_collection, FlixConfig.naive())
        oracle = transitive_closure(inex_collection.graph)
        for name in list(inex_collection.documents)[:3]:
            start = inex_collection.document_root(name)
            got = {r.node for r in flix.find_descendants(start, tag="p")}
            expected = {
                v
                for v in oracle.descendants(start)
                if inex_collection.tag(v) == "p"
            }
            assert got == expected

    def test_queries_rarely_cross_documents(self, inex_collection):
        """'queries usually do not cross document boundaries'."""
        flix = Flix.build(inex_collection, FlixConfig.naive())
        name = next(iter(inex_collection.documents))
        start = inex_collection.document_root(name)
        list(flix.find_descendants(start, tag="p"))
        stats = flix.pee.last_stats
        assert stats.meta_document_visits <= 3