"""Unit tests for the synthetic DBLP generator."""

import pytest

from repro.collection.stats import collect_statistics
from repro.datasets.dblp import (
    ARIES_AUTHOR,
    ARIES_TITLE,
    DblpSpec,
    find_aries,
    generate_dblp,
    generate_dblp_documents,
)


class TestSpec:
    def test_defaults_scaled_down(self):
        spec = DblpSpec()
        assert spec.documents == 600
        assert spec.mean_citations == pytest.approx(25368 / 6210, abs=0.01)

    def test_paper_scale(self):
        assert DblpSpec.paper_scale().documents == 6210

    def test_validation(self):
        with pytest.raises(ValueError):
            DblpSpec(documents=0)
        with pytest.raises(ValueError):
            DblpSpec(citation_skew=2.0)

    def test_aries_position(self):
        assert DblpSpec(documents=100).aries_position == 89


class TestDocuments:
    @pytest.fixture(scope="class")
    def documents(self):
        return generate_dblp_documents(DblpSpec(documents=120))

    def test_count(self, documents):
        assert len(documents) == 120

    def test_record_schema(self, documents):
        for doc in documents[:20]:
            root = doc.root
            assert root.name in ("article", "inproceedings")
            assert root.get("key")
            assert root.find("title") is not None
            assert root.find("year") is not None
            assert root.find("pages") is not None
            assert root.find_all("author")
            if root.name == "article":
                assert root.find("journal") is not None
                assert root.find("volume") is not None
            else:
                assert root.find("booktitle") is not None

    def test_citations_point_to_earlier_records(self, documents):
        names = [doc.name for doc in documents]
        position = {name: i for i, name in enumerate(names)}
        for i, doc in enumerate(documents):
            for cite in doc.root.find_all("cite"):
                target = cite.get("xlink:href")
                assert position[target] < i

    def test_no_duplicate_citations(self, documents):
        for doc in documents:
            cites = [c.get("xlink:href") for c in doc.root.find_all("cite")]
            assert len(cites) == len(set(cites))

    def test_aries_record_present(self, documents):
        spec = DblpSpec(documents=120)
        aries = documents[spec.aries_position]
        assert aries.root.find("title").text == ARIES_TITLE
        assert aries.root.find("author").text == ARIES_AUTHOR
        assert aries.root.find("year").text == "1999"
        assert aries.root.find("booktitle").text == "VLDB"
        assert len(aries.root.find_all("cite")) > 5

    def test_deterministic(self):
        a = generate_dblp_documents(DblpSpec(documents=50))
        b = generate_dblp_documents(DblpSpec(documents=50))
        from repro.xmlmodel.serializer import serialize

        assert [serialize(d.root) for d in a] == [serialize(d.root) for d in b]

    def test_seed_changes_output(self):
        a = generate_dblp_documents(DblpSpec(documents=50, seed=1))
        b = generate_dblp_documents(DblpSpec(documents=50, seed=2))
        from repro.xmlmodel.serializer import serialize

        assert [serialize(d.root) for d in a] != [serialize(d.root) for d in b]


class TestCollectionShape:
    def test_paper_ratios(self, dblp_collection):
        stats = collect_statistics(dblp_collection)
        # the paper's corpus: 4.08 links/doc; Poisson sampling keeps us close
        assert stats.links_per_document == pytest.approx(4.086, abs=1.2)
        assert stats.intra_document_links == 0

    def test_citation_graph_is_acyclic(self, dblp_collection):
        from repro.graph.scc import strongly_connected_components

        components = strongly_connected_components(dblp_collection.graph)
        assert all(len(c) == 1 for c in components)

    def test_in_degree_skew(self):
        """Preferential attachment: the top-cited paper well above the mean."""
        collection = generate_dblp(DblpSpec(documents=300))
        roots = [
            collection.document_root(name) for name in collection.documents
        ]
        in_degrees = sorted(
            (sum(1 for u in collection.graph.predecessors(r)
                 if collection.is_link_edge(u, r)) for r in roots),
            reverse=True,
        )
        mean = sum(in_degrees) / len(in_degrees)
        assert in_degrees[0] > 4 * mean

    def test_find_aries(self, dblp_collection):
        node = find_aries(dblp_collection)
        assert dblp_collection.tag(node) == "inproceedings"
        assert "ARIES" in dblp_collection.text(node)

    def test_find_aries_fails_on_other_collections(self, movie_collection):
        with pytest.raises(LookupError):
            find_aries(movie_collection)

    def test_aries_has_rich_descendant_set(self, dblp_collection):
        """The Figure 5 query needs a deep transitive citation tail."""
        from repro.graph.traversal import bfs_distances

        aries = find_aries(dblp_collection)
        reachable = bfs_distances(dblp_collection.graph, aries)
        articles = sum(
            1 for v in reachable if dblp_collection.tag(v) == "article"
        )
        assert articles >= 10
