"""Unit tests for the movie scenario collection."""

from repro.datasets.movies import generate_movie_collection, movie_back_links


class TestMovieCollection:
    def test_heterogeneous_schemas_present(self, movie_collection):
        tags = set(movie_collection.tags())
        assert {"movie", "science-fiction", "film"} <= tags
        assert {"actor", "performer"} <= tags
        assert {"cast", "credits"} <= tags

    def test_alternative_title_present(self, movie_collection):
        hits = movie_collection.find_by_text("alternative-title", "Matrix 3")
        assert len(hits) == 1

    def test_sequel_links(self, movie_collection):
        # matrix3 -> matrix2 -> matrix1 via <follows>
        follows = movie_collection.nodes_with_tag("follows")
        assert len(follows) == 2
        for node in follows:
            targets = movie_collection.graph.successors(node)
            linked = [
                t for t in targets if movie_collection.is_link_edge(node, t)
            ]
            assert len(linked) == 1

    def test_actor_filmography_documents(self, movie_collection):
        people = movie_collection.nodes_with_tag("person")
        assert len(people) == 8  # distinct actors across all movies
        for person in people:
            doc = movie_collection.info(person).document
            assert doc.startswith("actor-")

    def test_movie_actor_movie_path_exists(self, movie_collection):
        """The relaxed query's structural backbone: a path from Matrix:
        Revolutions through an actor document to another movie."""
        from repro.graph.traversal import bfs_distances

        (title,) = movie_collection.find_by_text("title", "Matrix: Revolutions")
        root = movie_collection.node_id_of(movie_collection.element(title).parent)
        reachable = bfs_distances(movie_collection.graph, root)
        other_movies = [
            v
            for v in reachable
            if movie_collection.tag(v) in ("movie", "film")
            and movie_collection.info(v).depth == 0
        ]
        assert other_movies  # at least one co-star movie is reachable

    def test_all_links_resolve(self, movie_collection):
        assert movie_collection.unresolved_links == []

    def test_back_links_helper(self):
        pairs = movie_back_links()
        assert ("matrix1.xml", "actor-keanu-reeves.xml") in pairs

    def test_deterministic(self):
        a = generate_movie_collection()
        b = generate_movie_collection()
        assert sorted(a.documents) == sorted(b.documents)
        assert a.node_count == b.node_count
        assert a.link_edge_count == b.link_edge_count
