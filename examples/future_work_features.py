"""Section 7's future-work list, implemented and demonstrated.

1. automatic homogeneous-subcollection detection with per-part
   configurations;
2. exactly sorted result streaming;
3. result caching for frequent queries;
4. incremental growth (adding documents without a rebuild);
5. generalized connection models (penalized links, reversed edges).

Run with::

    python examples/future_work_features.py
"""

import time

from repro import Flix, FlixConfig, XmlDocument, build_collection
from repro.core.connections import ConnectionEvaluator, ConnectionModel
from repro.core.subcollections import build_auto_partitioned
from repro.datasets.dblp import DblpSpec, generate_dblp_documents
from repro.datasets.movies import generate_movie_collection
from repro.datasets.synthetic import SyntheticSpec, generate_synthetic_documents


def heading(text: str) -> None:
    print()
    print(f"== {text} ==")


def main() -> None:
    # ------------------------------------------------------------------
    heading("1. automatic subcollections on a heterogeneous collection")
    documents = generate_dblp_documents(DblpSpec(documents=60, mean_citations=0.0))
    documents += generate_synthetic_documents(
        SyntheticSpec(documents=12, links_per_document=4.0,
                      intra_links_per_document=0.5, seed=5)
    )
    collection = build_collection(documents)
    flix, subcollections = build_auto_partitioned(collection, partition_size=300)
    for subcollection in subcollections:
        print(f"  {subcollection.summary()}")
    print(f"  -> {flix.report.summary()}")

    # ------------------------------------------------------------------
    heading("2. exactly sorted result streaming")
    start = collection.document_root(sorted(collection.documents)[-1])
    approx = [r.distance for r in flix.find_descendants(start)]
    exact = [r.distance for r in flix.find_descendants(start, exact_order=True)]
    print(f"  approximate stream distances: {approx[:12]} ...")
    print(f"  exact-order stream distances: {exact[:12]} ...")
    assert exact == sorted(exact)

    # ------------------------------------------------------------------
    heading("3. result caching")
    flix.enable_cache(maxsize=32)
    began = time.perf_counter()
    list(flix.find_descendants(start))
    cold = time.perf_counter() - began
    began = time.perf_counter()
    list(flix.find_descendants(start))
    warm = time.perf_counter() - began
    print(f"  cold query: {cold * 1000:.3f} ms, cached repeat: {warm * 1000:.3f} ms "
          f"(hits={flix.cache_hits})")

    # ------------------------------------------------------------------
    heading("4. incremental growth")
    new_doc = XmlDocument.from_text(
        "latest.xml",
        f'<article key="new/1"><title>Fresh Results</title>'
        f'<cite xlink:href="{sorted(collection.documents)[0]}"/></article>',
    )
    began = time.perf_counter()
    meta = flix.add_document(new_doc)
    elapsed = time.perf_counter() - began
    print(f"  added latest.xml as meta document {meta.meta_id} "
          f"({meta.strategy}) in {elapsed * 1000:.2f} ms — no rebuild")
    root = collection.document_root("latest.xml")
    print(f"  its descendants now include "
          f"{sum(1 for _ in flix.find_descendants(root))} elements")

    # ------------------------------------------------------------------
    heading("5. generalized connection models")
    movies = generate_movie_collection()
    evaluator = ConnectionEvaluator(movies)
    (title,) = movies.find_by_text("title", "Matrix: Revolutions")
    matrix3 = movies.node_id_of(movies.element(title).parent)
    for label, model in (
        ("descendants (uniform)", ConnectionModel.descendants()),
        ("link-penalized (x3)", ConnectionModel.link_penalized(3.0)),
        ("undirected (reverse x2)", ConnectionModel.undirected()),
    ):
        reachable = list(evaluator.find_connected(matrix3, model=model))
        movies_reached = [
            n for n, _c in reachable
            if movies.tag(n) in ("movie", "film", "science-fiction")
        ]
        print(f"  {label:24s}: {len(reachable):3d} elements, "
              f"{len(movies_reached)} movies reachable")


if __name__ == "__main__":
    main()
