"""The introduction's motivating scenario: relaxed search over movies.

The strict query ``/movie[title="Matrix: Revolutions"]/actor/movie`` finds
nothing in a heterogeneous collection — one source says ``science-fiction``
instead of ``movie``, one titles the film "Matrix 3", and actors are nested
under ``cast`` or ``credits``.  FliX + the XXL-style query layer relax the
query to ``//~movie[title ~= "Matrix: Revolutions"]//~actor//~movie`` and
rank results by decreasing relevance.

Run with::

    python examples/movie_ontology_search.py
"""

from repro import Flix, FlixConfig
from repro.datasets.movies import generate_movie_collection
from repro.query import QueryEngine, parse_query, relax


def describe(collection, node):
    element = collection.element(node)
    label_element = element.find("title") or element.find("name")
    label = label_element.text if label_element is not None else element.name
    return f"<{element.name}> {label!r} [{collection.info(node).document}]"


def main() -> None:
    collection = generate_movie_collection()
    print(f"collection: {collection}")
    print(f"element names in use: {', '.join(collection.tags())}")
    print()

    flix = Flix.build(collection, FlixConfig.naive())
    engine = QueryEngine(flix)

    strict = parse_query('/movie[title = "Matrix: Revolutions"]/actor/movie')
    print(f"strict query:  {strict}")
    matches = engine.evaluate(strict)
    print(f"  -> {len(matches)} results (the problem the paper opens with)")
    print()

    relaxed = relax(strict, add_similarity=True)
    print(f"relaxed query: {relaxed}")
    for match in engine.evaluate(relaxed, top_k=8):
        chain = " -> ".join(describe(collection, node) for node in match.bindings)
        print(f"  score {match.score:.3f}: {chain}")
    print()

    # the alternative-title case: the user only knows "Matrix 3"
    alt = '//~movie[title ~= "Matrix 3"]'
    print(f"alternative-title query: {alt}")
    for match in engine.evaluate(alt, top_k=3):
        print(f"  score {match.score:.3f}: {describe(collection, match.node)}")


if __name__ == "__main__":
    main()
