"""Figure 1's heterogeneous collection under the Hybrid configuration.

A collection whose first four documents form a document-level tree while
the other six are densely interlinked (the paper's Figure 1).  The Hybrid
Partitions configuration gives the tree-shaped part PPO meta documents and
the dense part HOPI partitions; this example shows the Meta Document
Builder's decisions, the Indexing Strategy Selector's rationales, and the
multithreaded streamed delivery with client-side cancellation.

Run with::

    python examples/heterogeneous_collection.py
"""

import time

from repro import Flix, FlixConfig, collect_statistics
from repro.datasets.synthetic import generate_figure1_collection


def main() -> None:
    collection = generate_figure1_collection(document_size=40)
    stats = collect_statistics(collection)
    print(f"collection: {stats.summary()}")
    print()

    for config in (
        FlixConfig.naive(),
        FlixConfig.maximal_ppo(),
        FlixConfig.unconnected_hopi(120),
        FlixConfig.hybrid(120),
    ):
        flix = Flix.build(collection, config)
        report = flix.report
        print(report.summary())
    print()

    # Hybrid in detail: which meta document got which strategy, and why?
    flix = Flix.build(collection, FlixConfig.hybrid(120))
    print("hybrid meta documents (strategy selector rationales):")
    for meta in flix.report.meta_documents:
        print(
            f"  meta {meta.meta_id:2d}: {meta.node_count:4d} nodes "
            f"-> {meta.strategy:5s} ({meta.rationale})"
        )
    print()

    # Streamed, multithreaded delivery (section 3.1): the client reads from
    # a list the framework fills, and may cancel at any time.
    start = collection.document_root("d05.xml")
    stream = flix.find_descendants_streamed(start)
    print("streaming descendants of d05's root (cancelling after 8):")
    consumed = 0
    for result in stream:
        print(f"  got node {result.node} at distance {result.distance}")
        consumed += 1
        if consumed >= 8:
            stream.cancel()
            break
    time.sleep(0.05)  # let the producer thread notice and wind down
    print(f"  delivered before cancellation: {len(stream)}")
    print()

    # The self-tuning loop (section 7): simulate a link-heavy query load on
    # a deliberately bad configuration and watch FliX ask for a rebuild.
    bad = Flix.build(collection, FlixConfig.unconnected_hopi(25))
    for name in sorted(collection.documents):
        root = collection.document_root(name)
        for _ in range(3):
            list(bad.find_descendants(root))
    advice = bad.tuning_advice(link_traversal_threshold=8.0)
    print(f"self-tuning on 25-node partitions: rebuild={advice.should_rebuild}")
    print(f"  reason: {advice.reason}")
    if advice.recommended_config is not None:
        better = bad.rebuild(advice.recommended_config)
        print(f"  rebuilt as: {better.report.summary()}")


if __name__ == "__main__":
    main()
