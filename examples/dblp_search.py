"""The paper's evaluation scenario on synthetic DBLP (section 6).

Builds the six-system lineup of the paper (monolithic HOPI and APEX, plus
four FliX configurations), runs the Figure 5 query — "all article
descendants of Mohan's VLDB 99 paper about ARIES" — and prints Table-1
style sizes, time-to-k series, and the self-tuning verdict.

Run with::

    python examples/dblp_search.py [documents]
"""

import sys

from repro.bench import (
    build_all_systems,
    figure5_query,
    format_series,
    time_to_k,
)
from repro.bench.reporting import BenchTable
from repro.datasets.dblp import DblpSpec, generate_dblp
from repro.storage.sizing import format_bytes


def main() -> None:
    documents = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    print(f"generating synthetic DBLP with {documents} records ...")
    collection = generate_dblp(DblpSpec(documents=documents))
    print(f"  {collection}")
    print()

    print("building the paper's system lineup ...")
    systems = build_all_systems(collection)

    table = BenchTable("index sizes", ["system", "size", "build [s]"])
    for system in systems:
        table.add_row(
            system.name, format_bytes(system.size_bytes), system.build_seconds
        )
    print()
    print(table.render())
    print()

    start, tag = figure5_query(collection)
    title_element = collection.element(start).find("title")
    title = title_element.text if title_element is not None else "?"
    print(f"Figure 5 query: descendants of {title!r} with tag {tag!r}")
    checkpoints = [1, 5, 10, 50, 100]
    series = {}
    for system in systems:
        series[system.name] = time_to_k(
            lambda: system.flix.find_descendants(start, tag=tag), checkpoints
        )
    print()
    print(format_series("seconds to k results", checkpoints, series))
    print()

    # stream the first 10 results from the best-to-first-result system
    flix = min(systems, key=lambda s: series[s.name][1]).flix
    print(f"first results from {min(series, key=lambda n: series[n][1])}:")
    for result in flix.find_descendants(start, tag=tag, limit=10):
        record = collection.element(result.node)
        record_title = record.find("title")
        print(
            f"  distance {result.distance}: "
            f"{record_title.text if record_title else '?'}"
        )
    print()

    # self-tuning: after a query burst, does FliX want a rebuild?
    for _ in range(25):
        list(flix.find_descendants(start, tag=tag, limit=20))
    advice = flix.tuning_advice()
    print(f"self-tuning: rebuild={advice.should_rebuild} — {advice.reason}")


if __name__ == "__main__":
    main()
