"""Quickstart: index a small linked collection and run descendant queries.

Run with::

    python examples/quickstart.py
"""

from repro import Flix, FlixConfig, XmlDocument, build_collection


def main() -> None:
    # Three documents: a tiny "site" whose pages link to each other via
    # XLink hrefs, plus one intra-document idref link.
    documents = [
        XmlDocument.from_text(
            "index.xml",
            """
            <site>
              <title>Example site</title>
              <toc>
                <entry xlink:href="articles.xml"/>
                <entry xlink:href="about.xml"/>
              </toc>
            </site>
            """,
        ),
        XmlDocument.from_text(
            "articles.xml",
            """
            <articles>
              <article id="a1">
                <title>On linked XML</title>
                <related idref="a2"/>
              </article>
              <article id="a2">
                <title>On path indexes</title>
                <see xlink:href="about.xml#team"/>
              </article>
            </articles>
            """,
        ),
        XmlDocument.from_text(
            "about.xml",
            """
            <about>
              <team id="team"><member>R. S.</member></team>
            </about>
            """,
        ),
    ]

    # 1. Assemble the element-level union graph (section 2.1 of the paper).
    collection = build_collection(documents)
    print(f"collection: {collection}")

    # 2. Build the FliX index.  Passing no config lets FliX recommend one
    #    from the collection's statistics; here we pick Naive explicitly.
    flix = Flix.build(collection, FlixConfig.naive())
    print(flix.describe())
    print()

    # 3. a//b: all title elements reachable from the site root, streamed in
    #    (approximately) ascending distance.
    start = collection.document_root("index.xml")
    print("titles reachable from the site root:")
    for result in flix.find_descendants(start, tag="title"):
        text = collection.text(result.node)
        print(f"  distance {result.distance}: {text!r}")
    print()

    # 4. Connection test: is the site root connected to the team element?
    (team,) = collection.nodes_with_tag("team")
    distance = flix.connection_test(start, team)
    print(f"site root -> team: connected at distance {distance}")

    # 5. Ancestors: which elements can reach the team?
    print("elements that reach the team element:")
    for result in flix.find_ancestors(team, tag="article"):
        print(f"  article at distance {result.distance}")


if __name__ == "__main__":
    main()
