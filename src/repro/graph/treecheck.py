"""Tree and forest detection on element graphs.

PPO "cannot be used with linked documents ... However, a closer analysis
shows that in some cases the resulting XML graph still forms a tree even in
the presence of links" (section 4.3, Maximal PPO).  The Meta Document Builder
and the Indexing Strategy Selector therefore need fast, exact predicates for
*is this element graph a tree / a forest of trees?*

A directed graph is a forest of rooted trees iff every node has in-degree at
most one and it contains no (undirected-)cycle — equivalently, with
``n`` nodes, ``e`` edges and ``r`` roots (in-degree 0): ``e == n - r`` and
every node is reachable from some root.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List

from repro.graph.digraph import Digraph

Node = Hashable


def forest_roots(graph: Digraph) -> List[Node]:
    """All nodes with in-degree 0, in deterministic order."""
    return sorted((n for n in graph if graph.in_degree(n) == 0), key=repr)


def is_forest(graph: Digraph) -> bool:
    """True iff ``graph`` is a disjoint union of rooted trees.

    Conditions checked: (1) every node has in-degree <= 1, (2) no directed
    cycle, verified by confirming that all nodes are reachable from the
    in-degree-0 roots (a cycle is unreachable from any root once in-degrees
    are capped at one).
    """
    roots = []
    for node in graph:
        indeg = graph.in_degree(node)
        if indeg > 1:
            return False
        if indeg == 0:
            roots.append(node)
    reached = 0
    seen = set()
    queue = deque(roots)
    seen.update(roots)
    while queue:
        node = queue.popleft()
        reached += 1
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return reached == graph.node_count


def is_tree(graph: Digraph) -> bool:
    """True iff ``graph`` is a single rooted tree (or empty)."""
    if graph.node_count == 0:
        return True
    return is_forest(graph) and len(forest_roots(graph)) == 1
