"""Directed-graph substrate used throughout the FliX reproduction.

The paper models a collection of linked XML documents as a directed graph
(section 2.1).  Every index structure, the meta-document builder, and the
query evaluator operate on instances of :class:`repro.graph.digraph.Digraph`.

This package is dependency-free on purpose: the graph is the hot data
structure of the whole system, and keeping it as plain dict-of-sets makes the
complexity of every algorithm obvious.
"""

from repro.graph.digraph import Digraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_reverse_distances,
    dfs_preorder,
    dijkstra,
    topological_sort,
)
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.closure import TransitiveClosure, transitive_closure
from repro.graph.estimation import estimate_closure_size
from repro.graph.partition import Partitioning, partition_graph
from repro.graph.treecheck import forest_roots, is_forest, is_tree

__all__ = [
    "Digraph",
    "bfs_distances",
    "bfs_reverse_distances",
    "dfs_preorder",
    "dijkstra",
    "topological_sort",
    "strongly_connected_components",
    "condensation",
    "TransitiveClosure",
    "transitive_closure",
    "estimate_closure_size",
    "Partitioning",
    "partition_graph",
    "is_tree",
    "is_forest",
    "forest_roots",
]
