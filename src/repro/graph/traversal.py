"""Traversal primitives: BFS distances, DFS preorder, Dijkstra, topsort.

All distances in the FliX reproduction are hop counts, so BFS is the exact
shortest-path oracle and every index is validated against it in the tests.
Dijkstra is only needed for the weighted *skeleton graph* used by HOPI's
divide-and-conquer join (see :mod:`repro.indexes.hopi`).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.graph.digraph import Digraph

Node = Hashable


def bfs_distances(
    graph: Digraph,
    source: Node,
    max_distance: Optional[int] = None,
) -> Dict[Node, int]:
    """Hop distances from ``source`` to every reachable node (incl. itself).

    ``max_distance`` truncates the search; nodes farther away are omitted.
    """
    if source not in graph:
        raise KeyError(source)
    dist: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        d = dist[node]
        if max_distance is not None and d >= max_distance:
            continue
        for succ in graph.successors(node):
            if succ not in dist:
                dist[succ] = d + 1
                queue.append(succ)
    return dist


def bfs_reverse_distances(
    graph: Digraph,
    target: Node,
    max_distance: Optional[int] = None,
) -> Dict[Node, int]:
    """Hop distances from every node that can reach ``target``, to it."""
    if target not in graph:
        raise KeyError(target)
    dist: Dict[Node, int] = {target: 0}
    queue = deque([target])
    while queue:
        node = queue.popleft()
        d = dist[node]
        if max_distance is not None and d >= max_distance:
            continue
        for pred in graph.predecessors(node):
            if pred not in dist:
                dist[pred] = d + 1
                queue.append(pred)
    return dist


def dfs_preorder(graph: Digraph, roots: Iterable[Node]) -> Iterator[Node]:
    """Iterative depth-first preorder over ``roots`` (each visited once).

    Successors are visited in sorted-by-repr order so that traversal is
    deterministic regardless of set iteration order; determinism matters for
    the PPO numbering and for reproducible benchmarks.
    """
    seen = set()
    for root in roots:
        if root in seen:
            continue
        stack: List[Node] = [root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            yield node
            children = [c for c in graph.successors(node) if c not in seen]
            children.sort(key=repr, reverse=True)
            stack.extend(children)


def dijkstra(
    node_count_hint: int,
    source: Node,
    neighbours: Callable[[Node], Iterable[Tuple[Node, int]]],
) -> Dict[Node, int]:
    """Generic Dijkstra over an implicit weighted graph.

    ``neighbours(node)`` yields ``(successor, weight)`` pairs with
    non-negative integer weights.  Used by the HOPI skeleton join, where
    edges carry precomputed intra-partition distances.
    """
    dist: Dict[Node, int] = {source: 0}
    heap: List[Tuple[int, int, Node]] = [(0, 0, source)]
    counter = 0
    settled = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for succ, weight in neighbours(node):
            if weight < 0:
                raise ValueError("dijkstra requires non-negative weights")
            nd = d + weight
            if succ not in dist or nd < dist[succ]:
                dist[succ] = nd
                counter += 1
                heapq.heappush(heap, (nd, counter, succ))
    return dist


def topological_sort(graph: Digraph) -> List[Node]:
    """Kahn topological order; raises ``ValueError`` on a cycle."""
    indeg = {node: graph.in_degree(node) for node in graph}
    queue = deque(sorted((n for n, d in indeg.items() if d == 0), key=repr))
    order: List[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for succ in sorted(graph.successors(node), key=repr):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                queue.append(succ)
    if len(order) != graph.node_count:
        raise ValueError("graph has at least one cycle")
    return order
