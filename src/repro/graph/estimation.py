"""Randomized transitive-closure size estimation (Cohen, JCSS 1997).

Section 2.2 of the paper notes that HOPI's size must be *estimated* from the
size of the transitive closure, and cites Edith Cohen's randomized
size-estimation framework as the intended tool ("for our current prototype we
have not yet applied such elaborated methods").  We apply it: the Indexing
Strategy Selector uses this estimator to decide when HOPI would grow too
large for a candidate meta document (see :mod:`repro.core.iss`), and the
ablation benchmark ``bench_estimator`` measures its accuracy against the
exact closure.

The estimator assigns independent Exp(1) ranks to all nodes and propagates,
for every node, the minimum rank over its reachable set.  The minimum of
``n`` Exp(1) variables is Exp(n)-distributed, so with ``k`` independent
rounds the reachable-set cardinality ``n`` has the unbiased maximum-
likelihood estimate ``(k - 1) / sum_of_minima`` — Cohen's least-element
estimator in its exact (exponential-rank) form.  Propagation runs over the
condensation DAG in reverse topological order, so cyclic link structures
are handled exactly.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List

from repro.graph.digraph import Digraph
from repro.graph.scc import condensation
from repro.graph.traversal import topological_sort

Node = Hashable


def estimate_descendant_counts(
    graph: Digraph,
    rounds: int = 25,
    seed: int = 0,
) -> Dict[Node, float]:
    """Estimated ``|descendants-or-self(v)|`` for every node ``v``.

    ``rounds`` trades accuracy for time; the relative standard error decays
    roughly as ``1 / sqrt(rounds)``.
    """
    if rounds < 2:
        raise ValueError("need at least 2 rounds for the least-element estimator")
    dag, component_of = condensation(graph)
    members: Dict[int, List[Node]] = {}
    for node, cid in component_of.items():
        members.setdefault(cid, []).append(node)
    order = topological_sort(dag)
    rng = random.Random(seed)

    # sum of per-round minimum ranks, per component
    min_sums: Dict[int, float] = {cid: 0.0 for cid in dag}
    for _ in range(rounds):
        ranks = {node: rng.expovariate(1.0) for node in graph}
        comp_min: Dict[int, float] = {}
        for cid in reversed(order):
            best = min(ranks[node] for node in members[cid])
            for succ in dag.successors(cid):
                if comp_min[succ] < best:
                    best = comp_min[succ]
            comp_min[cid] = best
        for cid, value in comp_min.items():
            min_sums[cid] += value

    estimates: Dict[Node, float] = {}
    for cid, total in min_sums.items():
        if total <= 0.0:  # pragma: no cover - probability zero
            size = float(graph.node_count)
        else:
            size = (rounds - 1) / total
        # A reachable set always contains the node itself and never exceeds
        # the graph, so clamp the raw estimate into the feasible range.
        size = max(1.0, min(size, float(graph.node_count)))
        for node in members[cid]:
            estimates[node] = size
    return estimates


def estimate_meta_reach(
    graph: Digraph,
    rounds: int = 8,
    seed: int = 0,
) -> Dict[Node, float]:
    """Estimated reachable-set sizes over a *meta-level* link graph.

    The probe planner (:mod:`repro.core.planner`) runs the same
    least-element estimator over the graph whose nodes are meta documents
    and whose edges are residual links between them: the estimate for a
    meta document is how many metas a probe of it can eventually pull
    into the queue.  Meta-level graphs are small, so few rounds suffice;
    ``rounds`` below the estimator's minimum of 2 is clamped up, and an
    empty graph returns ``{}``.
    """
    if graph.node_count == 0:
        return {}
    return estimate_descendant_counts(graph, rounds=max(2, rounds), seed=seed)


def estimate_closure_size(
    graph: Digraph,
    rounds: int = 25,
    seed: int = 0,
) -> float:
    """Estimated number of (ancestor, descendant) pairs, self-pairs included.

    This is the quantity HOPI's storage is proportional to in the worst case,
    and hence what the strategy selector budgets against.
    """
    counts = estimate_descendant_counts(graph, rounds=rounds, seed=seed)
    return sum(counts.values())
