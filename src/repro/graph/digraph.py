"""A small, explicit directed-graph data structure.

Nodes are arbitrary hashable values.  Edges are unweighted (every index and
evaluator in this project measures distance in *hops*, as the paper does:
``dist(a, e) + dist(e, l) + 1`` in Figure 4).

Successor and predecessor adjacency are both maintained so that ancestor
queries (section 5.2) are as cheap as descendant queries.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

Node = Hashable


class Digraph:
    """Mutable directed graph with O(1) edge insertion and membership tests.

    >>> g = Digraph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3)
    >>> sorted(g.successors(1))
    [2]
    >>> g.has_edge(2, 3)
    True
    """

    __slots__ = ("_succ", "_pred", "_edge_count")

    def __init__(self, edges: Iterable[Tuple[Node, Node]] = ()) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._edge_count = 0
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert ``node`` if not already present."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert the edge ``u -> v`` (idempotent), creating endpoints."""
        self.add_node(u)
        self.add_node(v)
        if v not in self._succ[u]:
            self._succ[u].add(v)
            self._pred[v].add(u)
            self._edge_count += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``u -> v``; raises ``KeyError`` if absent."""
        if u not in self._succ or v not in self._succ[u]:
            raise KeyError((u, v))
        self._succ[u].discard(v)
        self._pred[v].discard(u)
        self._edge_count -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._succ:
            raise KeyError(node)
        for v in list(self._succ[node]):
            self.remove_edge(node, v)
        for u in list(self._pred[node]):
            self.remove_edge(u, node)
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    @property
    def node_count(self) -> int:
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        for u, targets in self._succ.items():
            for v in targets:
                yield (u, v)

    def has_edge(self, u: Node, v: Node) -> bool:
        targets = self._succ.get(u)
        return targets is not None and v in targets

    def successors(self, node: Node) -> Set[Node]:
        """The set of direct successors (children + link targets)."""
        return self._succ[node]

    def predecessors(self, node: Node) -> Set[Node]:
        """The set of direct predecessors (parents + link sources)."""
        return self._pred[node]

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "Digraph":
        """The induced subgraph on ``nodes`` (edges with both ends inside)."""
        keep = set(nodes)
        sub = Digraph()
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for v in self._succ.get(node, ()):
                if v in keep:
                    sub.add_edge(node, v)
        return sub

    def reversed(self) -> "Digraph":
        """A new graph with every edge direction flipped."""
        rev = Digraph()
        for node in self._succ:
            rev.add_node(node)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def copy(self) -> "Digraph":
        dup = Digraph()
        for node in self._succ:
            dup.add_node(node)
        for u, v in self.edges():
            dup.add_edge(u, v)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Digraph(nodes={self.node_count}, edges={self.edge_count})"
