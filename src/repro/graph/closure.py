"""Exact transitive closure with hop distances.

The paper uses "store the complete transitive closure" as the strawman that
HOPI is an order of magnitude smaller than (section 6, Table 1 discussion).
It is also the ground truth every other index is validated against in the
test suite, and the oracle the error-rate experiment (section 6) compares the
streamed result order to.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional, Tuple

from repro.graph.digraph import Digraph
from repro.graph.traversal import bfs_distances

Node = Hashable


class TransitiveClosure:
    """Materialized reachability + distance relation of a digraph.

    ``closure.distance(u, v)`` is the length of the shortest path in hops, or
    ``None`` when ``v`` is unreachable from ``u``.  Following the XPath
    ``descendants-or-self`` semantics used throughout the paper, every node
    reaches itself at distance 0.
    """

    def __init__(self, reach: Dict[Node, Dict[Node, int]]) -> None:
        self._reach = reach

    def reachable(self, u: Node, v: Node) -> bool:
        row = self._reach.get(u)
        return row is not None and v in row

    def distance(self, u: Node, v: Node) -> Optional[int]:
        row = self._reach.get(u)
        if row is None:
            return None
        return row.get(v)

    def descendants(self, u: Node) -> Dict[Node, int]:
        """All nodes reachable from ``u`` with their distances (incl. self)."""
        return self._reach.get(u, {})

    def pairs(self) -> Iterator[Tuple[Node, Node, int]]:
        for u, row in self._reach.items():
            for v, d in row.items():
                yield (u, v, d)

    @property
    def pair_count(self) -> int:
        """Number of (ancestor, descendant) pairs, self-pairs included."""
        return sum(len(row) for row in self._reach.values())

    def __contains__(self, node: Node) -> bool:
        return node in self._reach


def transitive_closure(graph: Digraph) -> TransitiveClosure:
    """BFS from every node.  O(V * (V + E)) — fine as an oracle, huge to store.

    That storage blow-up is precisely the paper's motivation for HOPI.
    """
    reach: Dict[Node, Dict[Node, int]] = {}
    for node in graph:
        reach[node] = bfs_distances(graph, node)
    return TransitiveClosure(reach)
