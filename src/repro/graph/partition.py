"""Size-bounded graph partitioning with few cut edges.

Two FliX components need this (sections 4.1 and 4.3):

* the first step of HOPI's divide-and-conquer index builder "builds
  partitions of the XML graph such that each partition does not exceed a
  configurable size and the number of partition-crossing edges is small";
* the *Unconnected HOPI* configuration stops after that step and turns the
  partitions directly into meta documents.

Exact minimum-cut balanced partitioning is NP-hard, so — like the original
HOPI implementation — we use a greedy heuristic: grow partitions by
best-first expansion (preferring the frontier node with the most edges into
the partition, i.e. locally minimizing new cut edges), then run a boundary
refinement pass that moves nodes whose cut gain is positive
(Kernighan–Lin-style, single sweep).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.graph.digraph import Digraph

Node = Hashable


@dataclass
class Partitioning:
    """A disjoint cover of a graph's nodes.

    ``blocks[i]`` is the node set of partition ``i``; ``block_of`` maps each
    node to its partition index; ``cut_edges`` are the partition-crossing
    directed edges.
    """

    blocks: List[Set[Node]]
    block_of: Dict[Node, int]
    cut_edges: List[Tuple[Node, Node]] = field(default_factory=list)

    @property
    def cut_size(self) -> int:
        return len(self.cut_edges)

    def validate(self, graph: Digraph) -> None:
        """Assert the partitioning is a disjoint cover of ``graph``."""
        seen: Set[Node] = set()
        for i, block in enumerate(self.blocks):
            if block & seen:
                raise ValueError(f"partition {i} overlaps an earlier one")
            seen |= block
        missing = set(graph.nodes()) - seen
        if missing:
            raise ValueError(f"{len(missing)} nodes not covered")


def _undirected_neighbours(graph: Digraph, node: Node) -> Set[Node]:
    return graph.successors(node) | graph.predecessors(node)


def _grow_blocks(graph: Digraph, max_size: int) -> Tuple[List[Set[Node]], Dict[Node, int]]:
    """Initial blocks: consecutive segments of an undirected DFS post-order.

    Post-order packing keeps subtrees (and locally dense neighbourhoods)
    contiguous, so it never strands leaves in singleton blocks the way
    frontier-gain growth does; the refinement sweep then polishes the cut.
    Components are visited root-first (lowest in-degree seeds), matching
    the document-rooted structure of XML element graphs.
    """
    seen: Set[Node] = set()
    blocks: List[Set[Node]] = []
    current: Set[Node] = set()
    seeds = sorted(graph.nodes(), key=lambda n: (graph.in_degree(n), repr(n)))
    for seed in seeds:
        if seed in seen:
            continue
        seen.add(seed)
        stack = [(seed, iter(sorted(_undirected_neighbours(graph, seed), key=repr)))]
        while stack:
            node, neighbours = stack[-1]
            advanced = False
            for nb in neighbours:
                if nb not in seen:
                    seen.add(nb)
                    stack.append(
                        (nb, iter(sorted(_undirected_neighbours(graph, nb), key=repr)))
                    )
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            current.add(node)
            if len(current) >= max_size:
                blocks.append(current)
                current = set()
    if current:
        blocks.append(current)
    block_of = {node: i for i, block in enumerate(blocks) for node in block}
    return blocks, block_of


def _refine(
    graph: Digraph,
    blocks: List[Set[Node]],
    block_of: Dict[Node, int],
    max_size: int,
) -> None:
    """One Kernighan–Lin-style sweep moving boundary nodes that reduce cut."""
    boundary = [
        node
        for node in graph.nodes()
        if any(block_of[nb] != block_of[node] for nb in _undirected_neighbours(graph, node))
    ]
    for node in sorted(boundary, key=repr):
        home = block_of[node]
        if len(blocks[home]) == 1:
            continue  # never empty a block
        tally: Dict[int, int] = {}
        for nb in _undirected_neighbours(graph, node):
            tally[block_of[nb]] = tally.get(block_of[nb], 0) + 1
        here = tally.get(home, 0)
        best_bid, best_cnt = home, here
        for bid, cnt in tally.items():
            if bid == home or len(blocks[bid]) >= max_size:
                continue
            if cnt > best_cnt or (cnt == best_cnt and bid < best_bid):
                best_bid, best_cnt = bid, cnt
        if best_bid != home and best_cnt > here:
            blocks[home].discard(node)
            blocks[best_bid].add(node)
            block_of[node] = best_bid


def _merge_small_blocks(
    graph: Digraph,
    blocks: List[Set[Node]],
    block_of: Dict[Node, int],
    max_size: int,
) -> None:
    """Fold fragment blocks into an adjacent block that has room.

    Best-first growth can strand small leftovers once most of the graph is
    consumed; each fragment is merged into the neighbouring block it shares
    the most edges with, provided the size bound holds.
    """
    small_threshold = max(1, max_size // 4)
    for bid, block in enumerate(blocks):
        if not block or len(block) > small_threshold:
            continue
        tally: Dict[int, int] = {}
        for node in block:
            for nb in _undirected_neighbours(graph, node):
                other = block_of[nb]
                if other != bid:
                    tally[other] = tally.get(other, 0) + 1
        best = None
        for other, count in sorted(tally.items()):
            if len(blocks[other]) + len(block) > max_size:
                continue
            if best is None or count > tally[best]:
                best = other
        if best is not None:
            for node in block:
                block_of[node] = best
            blocks[best] |= block
            block.clear()


def partition_graph(graph: Digraph, max_size: int, refine: bool = True) -> Partitioning:
    """Partition ``graph`` into blocks of at most ``max_size`` nodes.

    The heuristic never splits a node set it can keep together under the
    size bound, and a refinement sweep shrinks the edge cut further.  The
    result is the input of both HOPI's divide-and-conquer build and the
    Unconnected HOPI meta-document configuration.
    """
    if max_size < 1:
        raise ValueError("max_size must be positive")
    blocks, block_of = _grow_blocks(graph, max_size)
    if refine:
        _merge_small_blocks(graph, blocks, block_of, max_size)
        _refine(graph, blocks, block_of, max_size)
    blocks = [b for b in blocks if b]
    block_of = {}
    for i, block in enumerate(blocks):
        for node in block:
            block_of[node] = i
    cut = [(u, v) for u, v in graph.edges() if block_of[u] != block_of[v]]
    return Partitioning(blocks=blocks, block_of=block_of, cut_edges=cut)
