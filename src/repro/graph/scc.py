"""Strongly connected components and condensation.

Links can create cycles in the element graph (the paper's duplicate
elimination in section 5.1 exists exactly because "there may be cycles in the
link structure").  Several algorithms here — Cohen's closure-size estimator
and the DataGuide determinization — first collapse cycles via the
condensation DAG.

Tarjan's algorithm is implemented iteratively so that deep synthetic
documents do not overflow Python's recursion limit.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.graph.digraph import Digraph

Node = Hashable


def strongly_connected_components(graph: Digraph) -> List[List[Node]]:
    """Tarjan SCCs in reverse topological order of the condensation."""
    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    for start in graph:
        if start in index_of:
            continue
        # Each frame is (node, iterator over successors).
        work = [(start, iter(sorted(graph.successors(start), key=repr)))]
        index_of[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack[start] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append(
                        (succ, iter(sorted(graph.successors(succ), key=repr)))
                    )
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation(graph: Digraph) -> Tuple[Digraph, Dict[Node, int]]:
    """The condensation DAG and the node -> component-id mapping.

    Component ids are integers; the returned DAG has an edge ``i -> j`` iff
    some edge of ``graph`` crosses from component ``i`` to component ``j``.
    """
    components = strongly_connected_components(graph)
    component_of: Dict[Node, int] = {}
    for cid, members in enumerate(components):
        for node in members:
            component_of[node] = cid
    dag = Digraph()
    for cid in range(len(components)):
        dag.add_node(cid)
    for u, v in graph.edges():
        cu, cv = component_of[u], component_of[v]
        if cu != cv:
            dag.add_edge(cu, cv)
    return dag, component_of
