"""``repro.faults`` — deterministic, seedable fault injection.

FliX targets web-scale linked XML collections whose storage and link
structure are unreliable by nature; the resilience layer
(:mod:`repro.storage.resilient`, the PEE's graceful degradation, the
builder's strategy fallback, ``repro repair``) exists to survive that.
This package makes every one of those behaviors *testable* without real
failures:

* :class:`FaultPlan` — a declarative failure scenario (error rates,
  latency spikes, corruption, fail-N-then-succeed, break-after-N), fully
  reproducible from its seed;
* :class:`FaultyBackend` / :class:`FaultyTable` — storage-level injection
  wrapping any :class:`~repro.storage.table.StorageBackend`;
* :class:`FaultyIndex` — probe-level injection wrapping a built
  :class:`~repro.indexes.base.PathIndex` (query-time probes are served
  from memory, so storage faults alone cannot reach them);
* :class:`FaultyFactory` — picklable factory decorator for fault-injected
  parallel builds;
* :class:`InjectedCrash` — crash-fault mode: a plan's
  ``crash_after_writes`` makes the WAL tear a record mid-write and die,
  the scenario the crash-point matrix in ``tests/wal`` recovers from;
* :func:`plan_from_env` — the ``FAULT_PLAN`` environment hook CI's chaos
  job uses to run the whole tier-1 suite under injected faults.

See ``docs/RESILIENCE.md`` for the fault taxonomy and worked examples,
``docs/DURABILITY.md`` for crash faults and recovery.
"""

from repro.faults.injector import (
    FaultSite,
    FaultyBackend,
    FaultyFactory,
    FaultyIndex,
    FaultyTable,
    InjectedCrash,
)
from repro.faults.plan import FAULT_PLAN_ENV_VARS, FaultPlan, plan_from_env

__all__ = [
    "FaultPlan",
    "FaultSite",
    "FaultyBackend",
    "FaultyFactory",
    "FaultyIndex",
    "FaultyTable",
    "FAULT_PLAN_ENV_VARS",
    "InjectedCrash",
    "plan_from_env",
]
