"""Appliers that make a :class:`~repro.faults.plan.FaultPlan` happen.

Three wrappers, one per layer the PEE and builder depend on:

* :class:`FaultyTable` / :class:`FaultyBackend` — storage-level injection;
  a drop-in :class:`~repro.storage.table.StorageBackend` whose reads and
  writes fail/stall/corrupt per the plan.  Stack a
  :class:`repro.storage.resilient.ResilientBackend` on top and the whole
  retry/breaker machinery is exercised without a single real failure.
* :class:`FaultyIndex` — probe-level injection for the query path: wraps a
  built :class:`~repro.indexes.base.PathIndex` so its lookups raise
  :class:`~repro.storage.errors.TransientStorageError`, which is what
  drives the PEE's BFS fallback and ``degraded`` completeness flagging
  in tests (built indexes answer probes from memory, so storage faults
  alone cannot reach a live query).
* :class:`FaultyFactory` — a picklable backend-factory decorator, so
  fault-injected builds work unchanged on the process-pool executor.

Every injection site (one per table name / index) owns a PRNG seeded from
``(plan.seed, site)`` and a monotonically increasing operation counter, so
fault sequences are deterministic per site and independent of sibling
sites.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Iterator, List, Optional

from repro.faults.plan import FaultPlan
from repro.storage.errors import (
    PermanentStorageError,
    TransientStorageError,
)
from repro.storage.table import Row, StorageBackend, Table, TableSchema


class InjectedCrash(BaseException):
    """A simulated process death at a write boundary.

    Raised by the WAL append path when a plan's ``crash_after_writes``
    fires: the record's frame has been *partially* written (a torn
    write), exactly as if the process had been killed mid-``write``.
    Derives from ``BaseException`` so no ``except Exception`` cleanup
    handler can "survive" the crash and roll back state the real dead
    process could never have rolled back — crash-point tests catch it
    explicitly, then exercise recovery (:mod:`repro.wal.recovery`).
    """


class FaultSite:
    """Deterministic fault state for one injection site."""

    __slots__ = ("plan", "name", "_rng", "reads", "writes", "injected")

    def __init__(self, plan: FaultPlan, name: str) -> None:
        self.plan = plan
        self.name = name
        self._rng = random.Random(f"{plan.seed}:{name}")
        self.reads = 0
        self.writes = 0
        #: faults injected so far (tests assert the plan actually fired)
        self.injected = 0

    def _ops(self) -> int:
        return self.reads + self.writes

    def before_read(self, sleep: Callable[[float], None] = time.sleep) -> None:
        plan = self.plan
        if not plan.applies_to(self.name):
            return
        ops = self._ops()
        self.reads += 1
        if plan.break_after is not None and ops >= plan.break_after:
            self.injected += 1
            raise PermanentStorageError(
                f"injected hard failure at {self.name!r} (op {ops})"
            )
        if ops < plan.fail_first:
            self.injected += 1
            raise TransientStorageError(
                f"injected fail-first at {self.name!r} (op {ops})"
            )
        if plan.read_latency_rate and self._rng.random() < plan.read_latency_rate:
            self.injected += 1
            sleep(plan.latency_seconds)
        if plan.read_error_rate and self._rng.random() < plan.read_error_rate:
            self.injected += 1
            raise TransientStorageError(
                f"injected read error at {self.name!r} (op {ops})"
            )

    def before_write(self) -> None:
        plan = self.plan
        if not plan.applies_to(self.name):
            return
        ops = self._ops()
        self.writes += 1
        if plan.break_after is not None and ops >= plan.break_after:
            self.injected += 1
            raise PermanentStorageError(
                f"injected hard failure at {self.name!r} (op {ops})"
            )
        if ops < plan.fail_first:
            self.injected += 1
            raise TransientStorageError(
                f"injected fail-first at {self.name!r} (op {ops})"
            )
        if plan.write_error_rate and self._rng.random() < plan.write_error_rate:
            self.injected += 1
            raise TransientStorageError(
                f"injected write error at {self.name!r} (op {ops})"
            )

    def maybe_corrupt(self, rows: List[Row]) -> List[Row]:
        plan = self.plan
        if (
            not plan.corrupt_rate
            or not plan.applies_to(self.name)
            or not rows
            or self._rng.random() >= plan.corrupt_rate
        ):
            return rows
        self.injected += 1
        victim = self._rng.randrange(len(rows))
        row = list(rows[victim])
        for i, value in enumerate(row):
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                row[i] = value ^ 1
                break
            if isinstance(value, float):
                row[i] = -value if value else 1.0
                break
            if isinstance(value, str):
                row[i] = value[::-1] if value else "\x00"
                break
        rows = list(rows)
        rows[victim] = tuple(row)
        return rows


class FaultyTable(Table):
    """A table whose operations obey a fault plan before delegating."""

    def __init__(self, inner: Table, site: FaultSite) -> None:
        super().__init__(inner.schema)
        self._inner = inner
        self.site = site

    def attach_observer(self, observer) -> None:
        self._inner.attach_observer(observer)

    def insert(self, row: Row) -> None:
        self.site.before_write()
        self._inner.insert(row)

    def insert_many(self, rows) -> None:
        # materialize first: the injected failure must strike *before* any
        # delegated write so a retry replays the whole batch exactly once
        materialized = list(rows)
        self.site.before_write()
        self._inner.insert_many(materialized)

    def scan(self) -> Iterator[Row]:
        self.site.before_read()
        rows = list(self._inner.scan())
        return iter(self.site.maybe_corrupt(rows))

    def scan_eq(self, column: str, value: Any) -> Iterator[Row]:
        self.site.before_read()
        rows = list(self._inner.scan_eq(column, value))
        return iter(self.site.maybe_corrupt(rows))

    def row_count(self) -> int:
        self.site.before_read()
        return self._inner.row_count()

    def size_bytes(self) -> int:
        # size accounting is bookkeeping, not data access: exempt
        return self._inner.size_bytes()


class FaultyBackend(StorageBackend):
    """Backend decorator injecting the plan into every table.

    Each table name gets its own :class:`FaultSite`; sites persist across
    ``table()`` calls so fail-first / break-after counters keep state.
    """

    def __init__(self, inner: StorageBackend, plan: FaultPlan) -> None:
        self._inner = inner
        self.plan = plan
        self._sites: dict = {}
        self._tables: dict = {}

    def site(self, name: str) -> FaultSite:
        existing = self._sites.get(name)
        if existing is None:
            existing = self._sites[name] = FaultSite(self.plan, name)
        return existing

    def injected_total(self) -> int:
        """Faults injected across all sites (tests assert this is > 0)."""
        return sum(site.injected for site in self._sites.values())

    def attach_observer(self, observer) -> None:
        self._observer = observer
        self._inner.attach_observer(observer)

    def _wrap(self, table: Table) -> FaultyTable:
        name = table.schema.name
        wrapped = self._tables.get(name)
        if wrapped is None or wrapped._inner is not table:
            wrapped = FaultyTable(table, self.site(name))
            self._tables[name] = wrapped
        return wrapped

    def create_table(self, schema: TableSchema) -> Table:
        return self._wrap(self._inner.create_table(schema))

    def table(self, name: str) -> Table:
        return self._wrap(self._inner.table(name))

    def drop_table(self, name: str) -> None:
        self._tables.pop(name, None)
        self._inner.drop_table(name)

    def table_names(self) -> List[str]:
        return self._inner.table_names()


class FaultyFactory:
    """Picklable ``backend_factory`` decorator: every product is faulty.

    Class (not closure) so process-pool builds can ship it to workers;
    each produced backend carries independent per-site PRNGs, keeping
    worker builds deterministic regardless of executor kind.
    """

    def __init__(
        self, inner_factory: Callable[[], StorageBackend], plan: FaultPlan
    ) -> None:
        self.inner_factory = inner_factory
        self.plan = plan

    def __call__(self) -> FaultyBackend:
        return FaultyBackend(self.inner_factory(), self.plan)


class FaultyIndex:
    """Probe-level fault proxy around a built :class:`PathIndex`.

    Delegates the full query interface, gating every lookup through one
    :class:`FaultSite` (named ``index`` by default).  Wrap a meta
    document's index with this to rehearse query-time degradation::

        meta.index = FaultyIndex(meta.index, FaultPlan.hard_failure())
    """

    def __init__(
        self, inner, plan: FaultPlan, site_name: str = "index"
    ) -> None:
        self._inner = inner
        self.site = FaultSite(plan, site_name)

    # -- gated read probes ---------------------------------------------
    def reachable(self, source, target):
        self.site.before_read()
        return self._inner.reachable(source, target)

    def distance(self, source, target):
        self.site.before_read()
        return self._inner.distance(source, target)

    def find_descendants_by_tag(self, source, tag):
        self.site.before_read()
        return self._inner.find_descendants_by_tag(source, tag)

    def find_ancestors_by_tag(self, source, tag):
        self.site.before_read()
        return self._inner.find_ancestors_by_tag(source, tag)

    def reachable_subset(self, source, candidates):
        self.site.before_read()
        return self._inner.reachable_subset(source, candidates)

    # -- pass-throughs ----------------------------------------------------
    def prepare_link_candidates(self, candidates) -> None:
        self._inner.prepare_link_candidates(candidates)

    def contains(self, node) -> bool:
        return self._inner.contains(node)

    def _node_set(self):
        return self._inner._node_set()

    @property
    def backend(self):
        return self._inner.backend

    def size_bytes(self) -> int:
        return self._inner.size_bytes()

    @property
    def node_count(self) -> int:
        return self._inner.node_count

    @property
    def strategy_name(self) -> str:
        return self._inner.strategy_name
