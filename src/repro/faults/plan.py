"""Fault plans: declarative, seedable descriptions of injected failures.

A :class:`FaultPlan` says *what* goes wrong and *how often*; the injector
(:mod:`repro.faults.injector`) applies it to storage tables or index
probes.  Everything is driven by a seeded PRNG keyed on the plan's seed
plus the injection site's name, so two runs with the same plan see the
same faults at the same operations — which is what makes robustness
behavior assertable in tests instead of merely hoped for.

Plans can be written in a compact ``key=value`` spec string (the
``FAULT_PLAN`` environment variable CI's chaos job sets)::

    FAULT_PLAN="read_error_rate=0.2,read_latency_rate=0.05,seed=7"
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

#: environment variables consulted by :func:`plan_from_env`, in order
FAULT_PLAN_ENV_VARS = ("FLIX_FAULT_PLAN", "FAULT_PLAN")


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible failure scenario.

    Rates are per-operation probabilities in ``[0, 1]``.  ``fail_first``
    makes the first N operations of every injection site fail with a
    transient error and then succeed — the canonical
    fail-N-times-then-succeed shape retry logic is tested against.
    ``break_after`` is the inverse: the site works for its first N
    operations, then fails *every* later one (a hard failure appearing
    mid-run, e.g. a disk dying after the build) — the shape circuit
    breakers and graceful degradation are tested against.
    """

    seed: int = 0
    #: probability that a read (scan / scan_eq / index probe) fails
    read_error_rate: float = 0.0
    #: probability that a write (insert / insert_many) fails
    write_error_rate: float = 0.0
    #: probability that a read is delayed by ``latency_seconds``
    read_latency_rate: float = 0.0
    #: injected delay for latency spikes (seconds)
    latency_seconds: float = 0.001
    #: probability that a read returns corrupted rows (int values bit-flipped)
    corrupt_rate: float = 0.0
    #: the first N operations per site fail transiently, then succeed
    fail_first: int = 0
    #: operations after the first N fail permanently (None = never)
    break_after: Optional[int] = None
    #: crash-fault mode (docs/DURABILITY.md): the WAL append after the
    #: first N tears its write and raises ``InjectedCrash`` (None = never)
    crash_after_writes: Optional[int] = None
    #: bytes of the torn record actually written before the injected
    #: crash (None = half the record) — the crash-point matrix tests
    #: sweep this through every offset of a record
    torn_write_bytes: Optional[int] = None
    #: restrict injection to these table/site names (None = everywhere)
    tables: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "read_latency_rate",
            "corrupt_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        if self.fail_first < 0:
            raise ValueError("fail_first must be non-negative")
        if self.break_after is not None and self.break_after < 0:
            raise ValueError("break_after must be non-negative")
        if self.crash_after_writes is not None and self.crash_after_writes < 0:
            raise ValueError("crash_after_writes must be non-negative")
        if self.torn_write_bytes is not None and self.torn_write_bytes < 0:
            raise ValueError("torn_write_bytes must be non-negative")

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return self.storage_is_noop and self.crash_after_writes is None

    @property
    def storage_is_noop(self) -> bool:
        """True when the plan injects nothing into *storage* operations.

        A crash-only plan (``crash_after_writes`` set, everything else
        default) targets the WAL append path, not the storage backend —
        ``Flix.build`` consults this so such a plan does not wrap every
        table in a :class:`~repro.faults.injector.FaultyFactory`.
        """
        return (
            self.read_error_rate == 0.0
            and self.write_error_rate == 0.0
            and self.read_latency_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.fail_first == 0
            and self.break_after is None
        )

    def applies_to(self, site: str) -> bool:
        return self.tables is None or site in self.tables

    def restricted_to(self, *tables: str) -> "FaultPlan":
        """The same plan, limited to the named tables/sites."""
        return replace(self, tables=tuple(tables))

    # ------------------------------------------------------------------
    # canned scenarios
    # ------------------------------------------------------------------
    @classmethod
    def moderate(cls, seed: int = 0) -> "FaultPlan":
        """CI's chaos plan: 20% transient read failures + latency spikes."""
        return cls(
            seed=seed,
            read_error_rate=0.2,
            read_latency_rate=0.05,
            latency_seconds=0.0005,
        )

    @classmethod
    def hard_failure(cls, seed: int = 0) -> "FaultPlan":
        """Every operation fails — a dead backend."""
        return cls(seed=seed, read_error_rate=1.0, write_error_rate=1.0)

    # ------------------------------------------------------------------
    # spec strings
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"read_error_rate=0.2,seed=7,tables=a|b"``.

        Field types follow the dataclass: ints, floats, and the ``tables``
        list (``|``-separated).  Unknown keys raise ``ValueError`` so a
        typo in a CI environment variable fails loudly, not silently.
        """
        known = {f.name: f for f in fields(cls)}
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"malformed fault-plan entry {part!r}")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key not in known:
                raise ValueError(
                    f"unknown fault-plan key {key!r}; "
                    f"expected one of {sorted(known)}"
                )
            if key == "tables":
                kwargs[key] = tuple(
                    name for name in value.split("|") if name
                ) or None
            elif key in ("seed", "fail_first"):
                kwargs[key] = int(value)
            elif key in ("break_after", "crash_after_writes", "torn_write_bytes"):
                kwargs[key] = None if value.lower() == "none" else int(value)
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    def to_spec(self) -> str:
        """The inverse of :meth:`from_spec` (defaults omitted)."""
        default = FaultPlan()
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value == getattr(default, f.name):
                continue
            if f.name == "tables":
                parts.append(f"tables={'|'.join(value)}")
            else:
                parts.append(f"{f.name}={value}")
        return ",".join(parts)


def plan_from_env(environ=None) -> Optional[FaultPlan]:
    """The plan named by ``FLIX_FAULT_PLAN`` / ``FAULT_PLAN``, or ``None``.

    The value is either a spec string (see :meth:`FaultPlan.from_spec`) or
    the name of a canned scenario (``moderate``).  An empty value or the
    literal ``off`` disables injection.
    """
    import os

    env = environ if environ is not None else os.environ
    for name in FAULT_PLAN_ENV_VARS:
        value = env.get(name)
        if value is None:
            continue
        value = value.strip()
        if not value or value.lower() == "off":
            return None
        if value.lower() == "moderate":
            return FaultPlan.moderate()
        return FaultPlan.from_spec(value)
    return None
