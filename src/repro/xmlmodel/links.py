"""Link extraction: ``id``/``idref`` attributes and XLink ``href``.

Section 1.1: "the XML standard allows intra-document links between elements
of a single document (e.g., using attributes of type id and idref, or using
an XLink)" and inter-document links via XLink/XPointer hrefs.  This module
turns those attribute conventions into explicit :class:`Link` records that
the collection builder resolves into graph edges.

Conventions recognised (all case-sensitive, matching common practice):

* ``id="x"`` declares an anchor with identifier ``x`` on the element;
* ``idref="x"`` / ``idrefs="x y z"`` reference anchors in the same document;
* ``xlink:href="doc.xml"`` references another document's root;
* ``xlink:href="doc.xml#frag"`` references the anchor ``frag`` in ``doc.xml``;
* ``xlink:href="#frag"`` references an anchor in the same document;
* a bare ``href`` attribute is treated like ``xlink:href`` (DBLP's ``ee``
  and ``url`` elements carry plain hrefs).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.xmlmodel.dom import XmlElement


class LinkKind(Enum):
    """How a link was expressed in the source document."""

    IDREF = "idref"
    XLINK = "xlink"


@dataclass(frozen=True)
class Link:
    """An unresolved link found in a document.

    ``source`` is the element carrying the link.  ``target_document`` is
    ``None`` for intra-document links; ``target_fragment`` is ``None`` when
    the link points at a whole document (its root element).
    """

    source: XmlElement
    kind: LinkKind
    target_document: Optional[str]
    target_fragment: Optional[str]

    @property
    def is_intra_document(self) -> bool:
        return self.target_document is None


_HREF_ATTRIBUTES = ("xlink:href", "href")
_SKIP_SCHEMES = ("http:", "https:", "ftp:", "mailto:")


def _split_href(href: str) -> Optional[Tuple[Optional[str], Optional[str]]]:
    """Split an href into (document, fragment); None if not resolvable.

    External URLs (http, ...) point outside the collection and are skipped,
    exactly as the paper's DBLP extraction keeps only links between the
    generated documents.
    """
    href = href.strip()
    if not href or href.lower().startswith(_SKIP_SCHEMES):
        return None
    if "#" in href:
        document, fragment = href.split("#", 1)
        return (document or None, fragment or None)
    return (href, None)


def collect_anchors(root: XmlElement) -> Dict[str, XmlElement]:
    """Map each ``id`` value in the document to its element.

    The first declaration wins on (invalid) duplicates, mirroring lenient
    web-scale processing rather than aborting.
    """
    anchors: Dict[str, XmlElement] = {}
    for element in root.iter():
        identifier = element.get("id")
        if identifier and identifier not in anchors:
            anchors[identifier] = element
    return anchors


def extract_links(root: XmlElement) -> List[Link]:
    """All idref and XLink links declared in the document, document order."""
    links: List[Link] = []
    for element in root.iter():
        links.extend(_element_links(element))
    return links


def _element_links(element: XmlElement) -> Iterator[Link]:
    idref = element.get("idref")
    if idref:
        yield Link(element, LinkKind.IDREF, None, idref.strip())
    idrefs = element.get("idrefs")
    if idrefs:
        for fragment in idrefs.split():
            yield Link(element, LinkKind.IDREF, None, fragment)
    for attribute in _HREF_ATTRIBUTES:
        href = element.get(attribute)
        if href is None:
            continue
        split = _split_href(href)
        if split is not None:
            document, fragment = split
            yield Link(element, LinkKind.XLINK, document, fragment)
        break  # prefer xlink:href over a duplicate plain href
