"""Self-contained XML substrate: DOM, parser, serializer, link extraction.

The paper's data model (section 2.1) starts from parsed XML documents whose
elements become graph nodes and whose parent-child edges plus ``id``/``idref``
attributes and XLink ``href`` attributes become graph edges.  This package
provides everything needed to get from XML text to that model without any
third-party dependency.
"""

from repro.xmlmodel.dom import XmlElement, XmlName
from repro.xmlmodel.parser import XmlParseError, parse_document, parse_fragment
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.links import Link, LinkKind, extract_links

__all__ = [
    "XmlElement",
    "XmlName",
    "XmlParseError",
    "parse_document",
    "parse_fragment",
    "serialize",
    "Link",
    "LinkKind",
    "extract_links",
]
