"""A minimal element-tree DOM.

Only what the indexing framework needs: element name, attributes, text
content, ordered children, and a parent pointer for ancestor walks.  Mixed
content is supported by interleaving text runs with child elements via the
``texts`` list (``texts[i]`` precedes ``children[i]``; the final entry
follows the last child), which is enough to round-trip documents through the
serializer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

XmlName = str


class XmlElement:
    """One XML element node.

    >>> e = XmlElement("article", {"key": "a1"})
    >>> child = XmlElement("title")
    >>> child.append_text("ARIES")
    >>> _ = e.append_child(child)
    >>> e.find("title").text
    'ARIES'
    """

    __slots__ = ("name", "attributes", "children", "texts", "parent")

    def __init__(
        self,
        name: XmlName,
        attributes: Optional[Dict[str, str]] = None,
    ) -> None:
        if not name:
            raise ValueError("element name must be non-empty")
        self.name = name
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.children: List["XmlElement"] = []
        # texts[i] precedes children[i]; texts[len(children)] trails.
        self.texts: List[str] = [""]
        self.parent: Optional["XmlElement"] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append_child(self, child: "XmlElement") -> "XmlElement":
        if child.parent is not None:
            raise ValueError("element already has a parent")
        child.parent = self
        self.children.append(child)
        self.texts.append("")
        return child

    def append_text(self, text: str) -> None:
        self.texts[-1] += text

    def make_child(
        self,
        name: XmlName,
        attributes: Optional[Dict[str, str]] = None,
        text: Optional[str] = None,
    ) -> "XmlElement":
        """Convenience: create, append, and optionally fill a child."""
        child = XmlElement(name, attributes)
        if text is not None:
            child.append_text(text)
        return self.append_child(child)

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        """Concatenated direct text content (not descendants')."""
        return "".join(self.texts)

    @property
    def full_text(self) -> str:
        """Concatenated text of this element and all descendants."""
        parts = [self.texts[0]]
        for i, child in enumerate(self.children):
            parts.append(child.full_text)
            parts.append(self.texts[i + 1])
        return "".join(parts)

    def iter(self) -> Iterator["XmlElement"]:
        """Document-order (preorder) iterator over self and descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find(self, name: XmlName) -> Optional["XmlElement"]:
        """First direct child with the given name, or ``None``."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def find_all(self, name: XmlName) -> List["XmlElement"]:
        """All direct children with the given name, in document order."""
        return [child for child in self.children if child.name == name]

    def get(self, attribute: str, default: Optional[str] = None) -> Optional[str]:
        return self.attributes.get(attribute, default)

    def ancestors(self) -> Iterator["XmlElement"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    @property
    def depth(self) -> int:
        """0 for the root, parent's depth + 1 otherwise."""
        return sum(1 for _ in self.ancestors())

    @property
    def root(self) -> "XmlElement":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def subtree_size(self) -> int:
        return sum(1 for _ in self.iter())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<XmlElement {self.name} attrs={len(self.attributes)} children={len(self.children)}>"
