"""A hand-written, dependency-free XML parser.

Covers the XML subset that real document collections like DBLP and INEX use:

* elements with attributes (single- or double-quoted),
* character data with the five predefined entities and numeric character
  references (decimal and hex),
* comments, CDATA sections, processing instructions, the XML declaration,
  and a DOCTYPE declaration (skipped, internal subsets included),
* well-formedness enforcement: matching end tags, a single root element,
  no duplicate attributes, no stray content outside the root.

The parser is a straightforward single-pass scanner over the input string;
error messages carry line/column positions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.xmlmodel.dom import XmlElement

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


class XmlParseError(ValueError):
    """Raised on any well-formedness violation, with position info."""

    def __init__(self, message: str, text: str, pos: int) -> None:
        line = text.count("\n", 0, pos) + 1
        column = pos - text.rfind("\n", 0, pos)
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Cursor over the document text with primitive token readers."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XmlParseError:
        return XmlParseError(message, self.text, self.pos)

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def skip_whitespace(self) -> None:
        text = self.text
        while self.pos < len(text) and text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, token: str) -> None:
        if not self.text.startswith(token, self.pos):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def read_name(self) -> str:
        start = self.pos
        text = self.text
        if start >= len(text) or not _is_name_start(text[start]):
            raise self.error("expected an XML name")
        end = start + 1
        while end < len(text) and _is_name_char(text[end]):
            end += 1
        self.pos = end
        return text[start:end]

    def read_until(self, token: str, what: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    """Expand predefined and numeric entity references in ``raw``."""
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise scanner.error("unterminated entity reference")
        body = raw[i + 1 : end]
        if body.startswith("#x") or body.startswith("#X"):
            try:
                out.append(chr(int(body[2:], 16)))
            except ValueError:
                raise scanner.error(f"bad character reference &{body};") from None
        elif body.startswith("#"):
            try:
                out.append(chr(int(body[1:], 10)))
            except ValueError:
                raise scanner.error(f"bad character reference &{body};") from None
        elif body in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[body])
        else:
            raise scanner.error(f"unknown entity &{body};")
        i = end + 1
    return "".join(out)


def _parse_attributes(scanner: _Scanner) -> dict:
    attributes: dict = {}
    while True:
        scanner.skip_whitespace()
        nxt = scanner.peek()
        if nxt in (">", "/", "?", ""):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        raw = scanner.read_until(quote, "attribute value")
        if "<" in raw:
            raise scanner.error("'<' not allowed in attribute value")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}")
        attributes[name] = _decode_entities(raw, scanner)


def _skip_misc(scanner: _Scanner, allow_doctype: bool) -> None:
    """Skip whitespace, comments, PIs, and (optionally) one DOCTYPE."""
    while True:
        scanner.skip_whitespace()
        if scanner.peek(4) == "<!--":
            scanner.advance(4)
            comment = scanner.read_until("-->", "comment")
            if "--" in comment:
                raise scanner.error("'--' not allowed inside a comment")
        elif scanner.peek(2) == "<?":
            scanner.advance(2)
            scanner.read_until("?>", "processing instruction")
        elif allow_doctype and scanner.peek(9).upper() == "<!DOCTYPE":
            scanner.advance(9)
            depth = 1
            while depth:
                ch = scanner.peek()
                if ch == "":
                    raise scanner.error("unterminated DOCTYPE")
                if ch == "<":
                    depth += 1
                elif ch == ">":
                    depth -= 1
                scanner.advance()
        else:
            return


def _parse_element(scanner: _Scanner) -> XmlElement:
    """Parse one element; the scanner must sit on its ``<``."""
    scanner.expect("<")
    name = scanner.read_name()
    attributes = _parse_attributes(scanner)
    element = XmlElement(name, attributes)
    if scanner.peek(2) == "/>":
        scanner.advance(2)
        return element
    scanner.expect(">")

    # Explicit stack instead of recursion: DBLP-like documents are shallow
    # but synthetic stress tests are not.
    stack: List[XmlElement] = [element]
    while stack:
        current = stack[-1]
        if scanner.exhausted:
            raise scanner.error(f"unexpected end of input inside <{current.name}>")
        if scanner.peek() == "<":
            two = scanner.peek(2)
            if two == "</":
                scanner.advance(2)
                end_name = scanner.read_name()
                scanner.skip_whitespace()
                scanner.expect(">")
                if end_name != current.name:
                    raise scanner.error(
                        f"mismatched end tag </{end_name}>, expected </{current.name}>"
                    )
                stack.pop()
            elif scanner.peek(4) == "<!--":
                scanner.advance(4)
                comment = scanner.read_until("-->", "comment")
                if "--" in comment:
                    raise scanner.error("'--' not allowed inside a comment")
            elif scanner.peek(9) == "<![CDATA[":
                scanner.advance(9)
                current.append_text(scanner.read_until("]]>", "CDATA section"))
            elif two == "<?":
                scanner.advance(2)
                scanner.read_until("?>", "processing instruction")
            else:
                scanner.advance(1)
                child_name = scanner.read_name()
                child_attrs = _parse_attributes(scanner)
                child = XmlElement(child_name, child_attrs)
                current.append_child(child)
                if scanner.peek(2) == "/>":
                    scanner.advance(2)
                else:
                    scanner.expect(">")
                    stack.append(child)
        else:
            start = scanner.pos
            text = scanner.text
            end = text.find("<", start)
            if end < 0:
                end = len(text)
            raw = text[start:end]
            if "]]>" in raw:
                raise scanner.error("']]>' not allowed in character data")
            scanner.pos = end
            current.append_text(_decode_entities(raw, scanner))
    return element


def parse_document(text: str) -> XmlElement:
    """Parse a complete XML document and return its root element."""
    scanner = _Scanner(text)
    _skip_misc(scanner, allow_doctype=True)
    if scanner.peek() != "<":
        raise scanner.error("expected the root element")
    root = _parse_element(scanner)
    _skip_misc(scanner, allow_doctype=False)
    if not scanner.exhausted:
        raise scanner.error("content after the root element")
    return root


def parse_fragment(text: str) -> List[XmlElement]:
    """Parse a sequence of sibling elements (no prolog, no DOCTYPE).

    Useful for tests and for DBLP-style record streams.  Whitespace,
    comments, and PIs between the fragments are skipped.
    """
    scanner = _Scanner(text)
    roots: List[XmlElement] = []
    while True:
        _skip_misc(scanner, allow_doctype=False)
        if scanner.exhausted:
            return roots
        if scanner.peek() != "<":
            raise scanner.error("expected an element")
        roots.append(_parse_element(scanner))
