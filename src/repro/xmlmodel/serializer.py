"""XML serialization for the minimal DOM.

``parse_document(serialize(root))`` reproduces the same tree (names,
attributes, text runs) — the property-based round-trip test in
``tests/xmlmodel/test_roundtrip.py`` enforces this.
"""

from __future__ import annotations

from typing import List

from repro.xmlmodel.dom import XmlElement

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(value: str) -> str:
    for raw, entity in _TEXT_ESCAPES:
        value = value.replace(raw, entity)
    return value


def escape_attribute(value: str) -> str:
    for raw, entity in _ATTR_ESCAPES:
        value = value.replace(raw, entity)
    return value


def serialize(element: XmlElement, declaration: bool = False) -> str:
    """Serialize ``element`` (and its subtree) to a string.

    Attribute order follows insertion order, which our parser preserves, so
    serialization is deterministic.
    """
    parts: List[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>\n')
    # (element, child_index) frames; child_index == -1 emits the open tag.
    stack = [(element, -1)]
    while stack:
        node, index = stack.pop()
        if index == -1:
            attrs = "".join(
                f' {name}="{escape_attribute(value)}"'
                for name, value in node.attributes.items()
            )
            if not node.children and not node.text:
                parts.append(f"<{node.name}{attrs}/>")
                continue
            parts.append(f"<{node.name}{attrs}>")
            parts.append(escape_text(node.texts[0]))
            stack.append((node, 0))
        elif index < len(node.children):
            stack.append((node, index + 1))
            stack.append((node.children[index], -1))
            # trailing text is emitted when we come back at index + 1
        if index >= 0:
            if index > 0:
                parts.append(escape_text(node.texts[index]))
            if index == len(node.children):
                parts.append(f"</{node.name}>")
    return "".join(parts)
