"""The metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named collection of instruments.  Every
instrument supports optional labels (``counter.inc(axis="descendants")``),
kept as one independent sample series per distinct label set — the same
model Prometheus clients use, so the text exporter in
:mod:`repro.obs.export` is a straight serialization.

Instruments are cheap, dependency-free, and thread-safe (a lock per
instrument; queries may stream from background threads, see
:class:`repro.core.results.StreamedList`).  A registry built with
``enabled=False`` hands out shared no-op instruments and reports no
metrics at all — the opt-out behind ``FlixConfig.observability`` — so
disabled instrumentation costs one attribute check at the call site.

Histograms use **fixed buckets**: a tuple of ascending upper bounds plus
an implicit overflow bucket.  Quantiles (p50/p95/p99) are estimated by
linear interpolation inside the bucket that contains the requested rank,
which is exact at bucket boundaries and bounded by the bucket width in
between; observations beyond the last bound are reported *at* the last
bound (the estimate never extrapolates into the open overflow bucket).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: default upper bounds (seconds) for latency histograms: sub-millisecond
#: index probes up to ten-second full-collection builds, roughly 2.5x apart
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: a label set, normalized to sorted (key, value) pairs
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    # zero- and one-label sets dominate (every per-query publish hits
    # this), so skip the sort for them
    if not labels:
        return ()
    if len(labels) == 1:
        ((key, value),) = labels.items()
        return ((key, str(value)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Instrument:
    """Common shape of every metric: a name, a help line, sample series."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()


class Counter(Instrument):
    """A monotonically increasing value (optionally per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the sample selected by ``labels``."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one sample (0.0 when never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(Instrument):
    """A value that can go up and down (current sizes, last-seen counts)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class _HistogramSeries:
    """One label set's buckets: non-cumulative counts + sum + count."""

    __slots__ = ("counts", "total", "sum")

    def __init__(self, bucket_count: int) -> None:
        # one slot per finite bound, plus the overflow bucket
        self.counts = [0] * (bucket_count + 1)
        self.total = 0
        self.sum = 0.0


class Histogram(Instrument):
    """Fixed-bucket histogram with interpolated quantile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        if bounds[0] <= 0:
            raise ValueError("bucket bounds must be positive")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        # linear scan: bucket counts are small and the common case (latency
        # histograms) lands in the first few buckets anyway
        position = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                position = i
                break
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds))
            series.counts[position] += 1
            series.total += 1
            series.sum += value

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series.total if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def percentile(self, p: float, **labels: object) -> float:
        """Estimated ``p``-quantile (``p`` in (0, 1], e.g. ``0.95``).

        Linear interpolation between the containing bucket's bounds; the
        lower bound of the first bucket is taken as 0.  Returns 0.0 for an
        empty series and the last finite bound when the rank falls into
        the overflow bucket.
        """
        if not 0 < p <= 1:
            raise ValueError(f"p must be in (0, 1], got {p}")
        series = self._series.get(_label_key(labels))
        if series is None or series.total == 0:
            return 0.0
        rank = p * series.total
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds, series.counts):
            cumulative += count
            if count and cumulative >= rank:
                fraction = (rank - (cumulative - count)) / count
                return lower + (bound - lower) * fraction
            lower = bound
        return self.bounds[-1]

    def quantiles(self, **labels: object) -> Dict[str, float]:
        """The conventional p50/p95/p99 triple for one label set."""
        return {
            "p50": self.percentile(0.50, **labels),
            "p95": self.percentile(0.95, **labels),
            "p99": self.percentile(0.99, **labels),
        }

    def series(self) -> List[Tuple[LabelKey, List[int], int, float]]:
        """``(labels, non-cumulative counts, count, sum)`` per label set."""
        with self._lock:
            return sorted(
                (key, list(s.counts), s.total, s.sum)
                for key, s in self._series.items()
            )


# ----------------------------------------------------------------------
# the disabled fast path: shared no-op instruments
# ----------------------------------------------------------------------
class _NullCounter(Counter):
    def __init__(self) -> None:
        super().__init__("null_counter")

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass


class _NullGauge(Gauge):
    def __init__(self) -> None:
        super().__init__("null_gauge")

    def set(self, value: float, **labels: object) -> None:
        pass

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass


class _NullHistogram(Histogram):
    def __init__(self) -> None:
        super().__init__("null_histogram", buckets=(1.0,))

    def observe(self, value: float, **labels: object) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """A named set of instruments; the unit the exporters serialize.

    ``counter``/``gauge``/``histogram`` get-or-create by name, so call
    sites never coordinate instrument creation; asking for an existing
    name with a different kind raises.  A disabled registry (``enabled=
    False``) returns shared no-op instruments and ``metrics()`` stays
    empty forever — both exporters render it as "no metrics".
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get_or_create(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get_or_create(name, help, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = Histogram(name, help, buckets)
            self._metrics[name] = instrument
            return instrument

    def _get_or_create(self, name: str, help: str, cls) -> Instrument:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, help)
            self._metrics[name] = instrument
            return instrument

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Instrument]:
        """The named instrument, or ``None``."""
        return self._metrics.get(name)

    def metrics(self) -> List[Instrument]:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self.metrics())

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every instrument (a fresh registry without re-wiring)."""
        with self._lock:
            self._metrics.clear()


#: shared disabled registry for callers that want an explicit null sink
NULL_REGISTRY = MetricsRegistry(enabled=False)
