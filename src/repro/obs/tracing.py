"""Lightweight query tracing: spans with monotonic timings and nesting.

A :class:`Trace` is one operation's span tree — for FliX, one query or one
index build.  The owning component opens a trace, opens child spans around
the interesting phases (``trace.span("pee.probe", meta_id=3)``), and calls
:meth:`Trace.finish` when done; the :class:`Tracer` keeps a small ring
buffer of finished traces, the newest of which backs
``Flix.trace_last_query()``.

Design notes:

* Timings come from ``time.perf_counter`` (monotonic, sub-microsecond),
  so span durations are meaningful even across system clock adjustments;
  there are deliberately **no wall-clock timestamps** in a span.
* The parent of a new span is the innermost span *of the same trace* that
  is still open — the trace carries its own stack instead of a
  thread-local one, so two streamed queries consumed alternately on one
  thread (a supported pattern, see ``tests/core/test_query_stats.py``)
  can never adopt each other's spans.
* A disabled tracer hands out a shared null trace whose ``span()`` is a
  no-op context manager; hot paths additionally skip tracing entirely by
  checking ``Observability.enabled`` first.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional


class Span:
    """One timed, named unit of work inside a trace."""

    __slots__ = ("name", "span_id", "parent_id", "depth", "meta", "started", "ended")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        meta: Dict[str, object],
        started: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        #: free-form annotations; callers may add keys while the span is open
        self.meta = meta
        #: ``perf_counter`` readings — offsets, not wall-clock timestamps
        self.started = started
        self.ended: Optional[float] = None

    @property
    def duration_seconds(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.ended is None:
            return 0.0
        return self.ended - self.started

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "duration_seconds": self.duration_seconds,
            "meta": dict(self.meta),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration_seconds:.6f}s, meta={self.meta})"
        )


class _SpanHandle:
    """Context manager opening/closing one child span.

    Hand-rolled rather than ``@contextmanager``: the evaluator opens one
    span per priority-queue pop, and a generator-based context manager
    costs several times more per entry than this class does.
    """

    __slots__ = ("_trace", "_name", "_meta", "_span")

    def __init__(self, trace: "Trace", name: str, meta: Dict[str, object]) -> None:
        self._trace = trace
        self._name = name
        self._meta = meta
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        trace = self._trace
        parent = trace._stack[-1]
        span = Span(
            self._name,
            len(trace.spans),
            parent.span_id,
            parent.depth + 1,
            self._meta,
            time.perf_counter(),
        )
        trace.spans.append(span)
        trace._stack.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if span is not None:
            span.ended = time.perf_counter()
            self._trace._stack.remove(span)
        return False


class Trace:
    """One operation's spans, in start order (the root span first)."""

    def __init__(self, tracer: Optional["Tracer"], name: str, meta: Dict[str, object]) -> None:
        self._tracer = tracer
        started = time.perf_counter()
        root = Span(name, 0, None, 0, meta, started)
        self.spans: List[Span] = [root]
        self._stack: List[Span] = [root]
        self._finished = False

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **meta: object) -> _SpanHandle:
        """Open a child span of the innermost open span of *this* trace."""
        return _SpanHandle(self, name, meta)

    def finish(self) -> "Trace":
        """Close the root (and any still-open spans) and publish the trace."""
        if self._finished:
            return self
        self._finished = True
        now = time.perf_counter()
        for span in self._stack:
            if span.ended is None:
                span.ended = now
        self._stack = [self.spans[0]]
        if self._tracer is not None:
            self._tracer._record(self)
        return self

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> Span:
        return self.spans[0]

    @property
    def name(self) -> str:
        return self.root.name

    @property
    def duration_seconds(self) -> float:
        return self.root.duration_seconds

    def find(self, name: str) -> List[Span]:
        """Every span with the given name, in start order."""
        return [span for span in self.spans if span.name == name]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
            "spans": [span.to_dict() for span in self.spans],
        }

    def render(self) -> str:
        """An indented ASCII tree of the spans with durations and meta."""
        lines = []
        for span in self.spans:
            meta = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(span.meta.items()))
                if span.meta
                else ""
            )
            lines.append(
                f"{'  ' * span.depth}{span.name} "
                f"{span.duration_seconds * 1000:.3f}ms{meta}"
            )
        return "\n".join(lines)


class _NullSpanHandle:
    """Do-nothing span context; hands back the null trace's root span."""

    __slots__ = ("_root",)

    def __init__(self, root: Span) -> None:
        self._root = root

    def __enter__(self) -> Span:
        return self._root

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullTrace(Trace):
    """Shared do-nothing trace handed out by a disabled tracer."""

    def __init__(self) -> None:
        super().__init__(None, "null", {})
        self._null_span = _NullSpanHandle(self.root)

    def span(self, name: str, **meta: object) -> "_NullSpanHandle":
        return self._null_span  # meta writes land on a throwaway dict

    def finish(self) -> "Trace":
        return self


NULL_TRACE = _NullTrace()


class Tracer:
    """Hands out traces and keeps a ring buffer of finished ones."""

    def __init__(self, enabled: bool = True, keep: int = 16) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.enabled = enabled
        self._traces: Deque[Trace] = deque(maxlen=keep)
        self._lock = threading.Lock()

    def trace(self, name: str, **meta: object) -> Trace:
        """Start a new trace (the shared null trace when disabled)."""
        if not self.enabled:
            return NULL_TRACE
        return Trace(self, name, dict(meta))

    def _record(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)

    def last_trace(self, name: Optional[str] = None) -> Optional[Trace]:
        """The most recently finished trace (optionally of a given name)."""
        with self._lock:
            if name is None:
                return self._traces[-1] if self._traces else None
            for trace in reversed(self._traces):
                if trace.name == name:
                    return trace
            return None

    def traces(self) -> List[Trace]:
        """Finished traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


#: shared disabled tracer for callers that want an explicit null sink
NULL_TRACER = Tracer(enabled=False)
