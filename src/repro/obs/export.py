"""Exporters: structured JSON and the Prometheus text exposition format.

Both exporters read a :class:`~repro.obs.registry.MetricsRegistry` snapshot
and serialize every instrument; a disabled (or simply empty) registry
renders to an empty document in either format.

The Prometheus output follows the text exposition format version 0.0.4:

* ``# HELP`` / ``# TYPE`` comment lines per metric (help text with ``\\``
  and newlines escaped);
* label values escaped for ``\\``, ``"`` and newlines;
* histograms as cumulative ``_bucket{le="..."}`` samples ending in the
  mandatory ``le="+Inf"`` bucket, plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelKey,
    MetricsRegistry,
)

#: formats accepted by :func:`render` (and the ``repro metrics`` CLI)
EXPORT_FORMATS = ("json", "prom")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: LabelKey, extra: str = "") -> str:
    parts = [f'{key}="{_escape_label_value(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    lines: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for labels, counts, total, total_sum in metric.series():
                cumulative = 0
                for bound, count in zip(metric.bounds, counts):
                    cumulative += count
                    le = f'le="{_format_value(bound)}"'
                    lines.append(
                        f"{metric.name}_bucket{_format_labels(labels, le)} "
                        f"{cumulative}"
                    )
                inf_label = 'le="+Inf"'
                lines.append(
                    f"{metric.name}_bucket{_format_labels(labels, inf_label)} "
                    f"{total}"
                )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(total_sum)}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} {total}"
                )
        elif isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                lines.append(
                    f"{metric.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def registry_to_dict(registry: MetricsRegistry) -> Dict:
    """A JSON-serializable snapshot of every instrument."""
    metrics: List[Dict] = []
    for metric in registry.metrics():
        entry: Dict = {
            "name": metric.name,
            "kind": metric.kind,
            "help": metric.help,
        }
        if isinstance(metric, Histogram):
            entry["buckets"] = list(metric.bounds)
            entry["series"] = [
                {
                    "labels": dict(labels),
                    "counts": counts,
                    "count": total,
                    "sum": total_sum,
                    "quantiles": metric.quantiles(**dict(labels)),
                }
                for labels, counts, total, total_sum in metric.series()
            ]
        elif isinstance(metric, (Counter, Gauge)):
            entry["samples"] = [
                {"labels": dict(labels), "value": value}
                for labels, value in metric.samples()
            ]
        metrics.append(entry)
    return {"metrics": metrics}


def render_json(registry: MetricsRegistry) -> str:
    """The registry as pretty-printed, key-sorted JSON."""
    return json.dumps(registry_to_dict(registry), indent=2, sort_keys=True)


def render(registry: MetricsRegistry, format: str = "json") -> str:
    """Serialize ``registry`` in the named format (``json`` or ``prom``)."""
    if format in ("prom", "prometheus"):
        return render_prometheus(registry)
    if format == "json":
        return render_json(registry)
    raise ValueError(
        f"unknown export format {format!r}; expected one of {EXPORT_FORMATS}"
    )
