"""``repro.obs`` — the unified observability layer (metrics + tracing).

FliX's value claim is that per-meta-document strategy selection beats any
single index; proving that on a live workload needs numbers from the query
path, not just build-time timings.  This package supplies them,
dependency-free:

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms with interpolated p50/p95/p99 (:mod:`repro.obs.registry`);
* :class:`Tracer` / :class:`Trace` / :class:`Span` — per-query span trees
  with monotonic timings and parent/child nesting
  (:mod:`repro.obs.tracing`);
* :func:`render_json` / :func:`render_prometheus` — structured JSON and
  Prometheus text-format exporters (:mod:`repro.obs.export`);
* :class:`Observability` — the bundle (one registry + one tracer) that a
  :class:`repro.core.framework.Flix` instance owns and threads through
  the evaluator, the Index Builder and the storage backends.

Everything is opt-out through ``FlixConfig.observability``: a disabled
:class:`Observability` hands out no-op instruments and null traces, the
instrumented components skip their recording branches entirely, and both
exporters render an empty document.  See ``docs/OBSERVABILITY.md`` for the
full metric catalog and a worked trace example.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.export import (
    EXPORT_FORMATS,
    registry_to_dict,
    render,
    render_json,
    render_prometheus,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.tracing import NULL_TRACER, Span, Trace, Tracer


class StorageInstruments:
    """Bound storage counters a backend records reads/writes/hits into.

    One instance per backend (created by
    :meth:`Observability.storage_instruments`); the counters themselves
    are shared through the registry, the instance only pins the
    ``backend`` label.  Tables call :meth:`read` on every ``scan`` /
    ``scan_eq``, :meth:`write` per inserted row, and :meth:`hit` when a
    point lookup was answered through an access path (a hash index in
    memory, a B-tree in SQLite) instead of a full scan.
    """

    __slots__ = ("backend_kind", "_reads", "_writes", "_hits")

    def __init__(self, registry: MetricsRegistry, backend_kind: str) -> None:
        self.backend_kind = backend_kind
        self._reads = registry.counter(
            "flix_storage_reads_total",
            "Table scans (scan + scan_eq calls) per backend and table.",
        )
        self._writes = registry.counter(
            "flix_storage_writes_total",
            "Rows inserted per backend and table.",
        )
        self._hits = registry.counter(
            "flix_storage_index_hits_total",
            "Point lookups answered through an access path (no full scan).",
        )

    def read(self, table: str) -> None:
        self._reads.inc(backend=self.backend_kind, table=table)

    def write(self, table: str, rows: int = 1) -> None:
        self._writes.inc(rows, backend=self.backend_kind, table=table)

    def hit(self, table: str) -> None:
        self._hits.inc(backend=self.backend_kind, table=table)


class Observability:
    """One registry + one tracer, owned by a ``Flix`` instance.

    ``enabled`` gates everything: hot paths check it once and skip their
    instrumentation branches when off, so the opt-out costs a single
    attribute load.  Components receive the whole bundle instead of the
    registry alone so that span emission and counting always agree on
    whether observability is on.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(
        self,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry(enabled)
        self.tracer = tracer if tracer is not None else Tracer(enabled)

    def storage_instruments(
        self, backend: Union[str, object]
    ) -> Optional[StorageInstruments]:
        """Instruments labeled for ``backend`` (``None`` when disabled).

        ``backend`` may be a backend instance (the kind is derived from
        the class name: ``MemoryBackend`` -> ``memory``) or the kind
        string itself.
        """
        if not self.enabled:
            return None
        if isinstance(backend, str):
            kind = backend
        else:
            kind = type(backend).__name__.lower()
            if kind.endswith("backend"):
                kind = kind[: -len("backend")] or kind
        return StorageInstruments(self.registry, kind)


#: shared disabled bundle — the default for bare evaluators and builders
OBS_OFF = Observability(enabled=False, registry=NULL_REGISTRY, tracer=NULL_TRACER)

__all__ = [
    "Observability",
    "StorageInstruments",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Trace",
    "Span",
    "render",
    "render_json",
    "render_prometheus",
    "registry_to_dict",
    "DEFAULT_LATENCY_BUCKETS",
    "EXPORT_FORMATS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "OBS_OFF",
]
