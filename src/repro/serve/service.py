"""``FlixService``: a thread-safe query-serving layer over one ``Flix``.

The framework's build phase is a batch job, but its query phase is a
server workload: many small queries, heavy repetition (HOPI's hot-pair
observation), strict tail-latency expectations.  :class:`FlixService`
packages that workload shape:

* a **worker pool** of daemon threads drains a bounded
  :class:`~repro.serve.admission.AdmissionQueue` — backpressure by
  rejection at the door, not by unbounded buffering;
* every evaluation goes through ``Flix.query``, so all workers share the
  process-wide :class:`~repro.serve.cache.ShardedLRUCache` and the
  per-query reentrant evaluator state (see ``core/pee.py``);
* per-request **deadlines** account for queue wait: a request whose
  :class:`~repro.core.pee.QueryBudget` deadline elapsed while queued is
  answered ``truncated``/empty without touching the index, and one that
  waited part of its deadline runs with only the remainder;
* **observability**: ``flix_service_queue_depth`` and
  ``flix_service_in_flight`` gauges, a ``flix_service_requests_total``
  counter labeled by terminal status (``ok`` / ``expired`` / ``error``),
  and one ``svc.query`` trace per evaluated request, all on the wrapped
  instance's registry/tracer.

Lifecycle: construct (workers start immediately), ``submit``/
``submit_many``, then ``close()`` — or use it as a context manager.
``docs/SERVING.md`` walks through all of it.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Iterator, List, Optional, Sequence, TYPE_CHECKING

from repro.core.api import QueryRequest, QueryResponse
from repro.core.pee import QueryBudget, QueryStats
from repro.serve.admission import (
    AdmissionQueue,
    ServiceClosedError,
    ServiceOverloadedError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.framework import Flix

#: worker-stop sentinel (compared by identity)
_STOP = object()


class PendingQuery:
    """A submitted request's future: wait on it, then read the response.

    ``result(timeout)`` blocks until a worker finished the request and
    returns its :class:`~repro.core.api.QueryResponse` (re-raising the
    worker-side exception if evaluation failed).  ``done`` is a
    non-blocking probe.
    """

    __slots__ = ("request", "enqueued_at", "_event", "_response", "_error")

    def __init__(self, request: QueryRequest) -> None:
        self.request = request
        self.enqueued_at = time.perf_counter()
        self._event = threading.Event()
        self._response: Optional[QueryResponse] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResponse:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query ({self.request.kind}) not finished within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response

    # -- worker side ---------------------------------------------------
    def _complete(self, response: QueryResponse) -> None:
        self._response = response
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class FlixService:
    """A pool of worker threads evaluating queries against one ``Flix``.

    Parameters
    ----------
    flix:
        The built framework instance to serve.  Its configured cache,
        metrics registry, and tracer are shared by every worker.
    workers:
        Worker-thread count.  With latency-bearing storage backends the
        workers overlap stalls; sizing beyond the storage parallelism
        buys nothing.
    max_pending:
        Bound on queued (not-yet-running) requests; submissions beyond it
        raise :class:`~repro.serve.admission.ServiceOverloadedError`.
    default_budget:
        Budget applied to requests that carry none of their own.  Per
        request, ``request.budget`` wins over this default.
    submit_timeout:
        How long ``submit`` may wait for queue space before rejecting
        (``None``: reject immediately when full).
    """

    def __init__(
        self,
        flix: "Flix",
        workers: int = 4,
        max_pending: int = 64,
        default_budget: Optional[QueryBudget] = None,
        submit_timeout: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.flix = flix
        self.workers = workers
        self.default_budget = default_budget
        self.submit_timeout = submit_timeout
        self._queue = AdmissionQueue(max_pending)
        self._closed = False
        self._close_lock = threading.Lock()
        self._in_flight = 0
        self._served = 0
        self._state_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"flix-serve-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> PendingQuery:
        """Queue one request; returns its :class:`PendingQuery` future.

        Raises :class:`ServiceClosedError` after :meth:`close`, and
        :class:`ServiceOverloadedError` when ``max_pending`` requests are
        already waiting (backpressure — shed or retry upstream).
        """
        pending = PendingQuery(request)
        with self._close_lock:
            # The closed-check and the enqueue are atomic with respect to
            # close(), which flips _closed and enqueues the worker-stop
            # sentinels under this same lock — so a request can never land
            # *behind* the sentinels, where no worker would ever take it
            # and result() would block forever.
            if self._closed:
                raise ServiceClosedError("service is closed")
            self._queue.offer(pending, timeout=self.submit_timeout)
        obs = self.flix.obs
        if obs.enabled:
            obs.registry.gauge(
                "flix_service_queue_depth",
                "Requests waiting for a serving worker.",
            ).set(len(self._queue))
        return pending

    def submit_many(
        self, requests: Sequence[QueryRequest]
    ) -> List[QueryResponse]:
        """Queue a batch and wait for all of it; responses in input order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def query(self, request: QueryRequest) -> QueryResponse:
        """Submit one request and wait for its response (convenience)."""
        return self.submit(request).result()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting work, finish what is queued, join the workers.

        Queued requests are still evaluated (their deadlines permitting);
        only *new* submissions are refused.  ``timeout`` bounds the
        **total** wait across all workers (one shared deadline, not one
        per thread).  Returns ``True`` when every worker has exited,
        ``False`` when some were still running at the deadline — call
        again to keep waiting.  Idempotent: repeated calls enqueue no new
        sentinels, they only re-join stragglers.
        """
        with self._close_lock:
            if not self._closed:
                self._closed = True
                for _ in self._threads:
                    self._queue.force(_STOP)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        all_joined = True
        for thread in self._threads:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
            if thread.is_alive():
                all_joined = False
        return all_joined

    def __enter__(self) -> "FlixService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def served(self) -> int:
        """Requests completed (any status) since construction."""
        with self._state_lock:
            return self._served

    def cache_stats(self):
        """The shared cache's aggregate stats (``None`` without a cache)."""
        return self.flix.cache_stats()

    # ------------------------------------------------------------------
    # worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.take()
            if item is _STOP:
                return
            self._serve_one(item)

    def _serve_one(self, pending: PendingQuery) -> None:
        obs = self.flix.obs
        queue_wait = time.perf_counter() - pending.enqueued_at
        if obs.enabled:
            obs.registry.gauge(
                "flix_service_queue_depth",
                "Requests waiting for a serving worker.",
            ).set(len(self._queue))
        budget = (
            pending.request.budget
            if pending.request.budget is not None
            else self.default_budget
        )
        remaining = self._remaining_budget(budget, queue_wait)
        if budget is not None and remaining is None:
            # the deadline elapsed while the request sat in the queue
            pending._complete(self._expired_response(pending.request))
            self._finish(obs, "expired")
            return
        with self._state_lock:
            # gauge published under the lock so concurrent workers cannot
            # interleave stale values out of order
            self._in_flight += 1
            if obs.enabled:
                obs.registry.gauge(
                    "flix_service_in_flight",
                    "Requests currently being evaluated by a worker.",
                ).set(self._in_flight)
        trace = obs.tracer.trace(
            "svc.query",
            kind=pending.request.kind,
            queue_wait_seconds=round(queue_wait, 6),
        )
        status = "ok"
        try:
            response = self.flix.query(pending.request, budget=remaining)
            trace.root.meta["from_cache"] = response.from_cache
            trace.root.meta["completeness"] = response.completeness
            trace.root.meta["layout_generation"] = response.layout_generation
            pending._complete(response)
        except BaseException as error:  # noqa: BLE001 - relayed to caller
            status = "error"
            trace.root.meta["error"] = type(error).__name__
            pending._fail(error)
        finally:
            trace.finish()
            with self._state_lock:
                self._in_flight -= 1
                if obs.enabled:
                    obs.registry.gauge(
                        "flix_service_in_flight",
                        "Requests currently being evaluated by a worker.",
                    ).set(self._in_flight)
            self._finish(obs, status)

    def _finish(self, obs, status: str) -> None:
        with self._state_lock:
            self._served += 1
        if obs.enabled:
            obs.registry.counter(
                "flix_service_requests_total",
                "Requests completed by the serving layer, by status.",
            ).inc(status=status)

    @staticmethod
    def _remaining_budget(
        budget: Optional[QueryBudget], queue_wait: float
    ) -> Optional[QueryBudget]:
        """Charge queue wait against the deadline.

        Returns the budget to evaluate under, or ``None`` **meaning
        expired** when a deadline exists and the wait consumed it.  A
        budget without a deadline passes through unchanged.
        """
        if budget is None or budget.deadline_seconds is None:
            return budget
        remaining = budget.deadline_seconds - queue_wait
        if remaining <= 0:
            return None
        return dataclasses.replace(budget, deadline_seconds=remaining)

    @staticmethod
    def _expired_response(request: QueryRequest) -> QueryResponse:
        # An all-zero truncated row: the query never touched the index.
        # QueryLoadMonitor.record skips rows of exactly this shape so
        # queue-expired admissions cannot dilute the workload statistics
        # the probe planner and tuning advice are driven by.
        stats = QueryStats()
        stats._mark("truncated")
        return QueryResponse(
            request=request,
            results=[],
            value=None,
            stats=stats,
            from_cache=False,
            elapsed_seconds=0.0,
        )


__all__ = ["FlixService", "PendingQuery"]
