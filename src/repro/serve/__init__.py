"""``repro.serve`` — the concurrent query-serving layer.

Three pieces, documented in ``docs/SERVING.md``:

* :class:`ShardedLRUCache` (:mod:`repro.serve.cache`) — the process-wide
  result/connection cache with generation-based invalidation, shared by
  ``Flix.query`` and every service worker;
* :class:`AdmissionQueue` (:mod:`repro.serve.admission`) — bounded
  queueing with reject-on-full backpressure;
* :class:`FlixService` (:mod:`repro.serve.service`) — the worker pool
  tying both to a built :class:`~repro.core.framework.Flix`.

``repro.core`` never imports this package at module level (the cache is
built lazily via :meth:`repro.core.config.CacheConfig.build`), so the
core stays importable on its own.
"""

from repro.serve.admission import (
    AdmissionQueue,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.serve.cache import CacheStats, ShardedLRUCache
from repro.serve.service import FlixService, PendingQuery

__all__ = [
    "AdmissionQueue",
    "CacheStats",
    "FlixService",
    "PendingQuery",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "ShardedLRUCache",
]
