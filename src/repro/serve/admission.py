"""Admission control for the serving layer: bounded queueing.

A service that accepts every request eventually holds them all in memory
while its workers fall behind — the classic unbounded-queue failure.
:class:`AdmissionQueue` is a thin, explicitly-bounded wrapper over
:class:`queue.Queue` that turns "the queue is full" into an immediate,
typed rejection (:class:`ServiceOverloadedError`) instead of an invisible
wait, and "the service is closed" into :class:`ServiceClosedError`.

Backpressure therefore happens at the door: a caller whose ``submit``
raises ``ServiceOverloadedError`` knows *now* that the service is at
capacity and can shed, retry with backoff, or fail upstream — all
decisions only the caller can make.  Per-request deadlines
(:class:`~repro.core.pee.QueryBudget`) complement this from the other
side: work that waited too long in the queue is answered ``truncated``
instead of evaluated late (see :mod:`repro.serve.service`).
"""

from __future__ import annotations

import queue
from typing import Any, Optional


class ServiceError(RuntimeError):
    """Base class for serving-layer failures."""


class ServiceClosedError(ServiceError):
    """The service no longer accepts requests (``close()`` was called)."""


class ServiceOverloadedError(ServiceError):
    """The pending-request queue is at capacity; the request was rejected.

    Carries the queue bound so callers can log a meaningful message.
    """

    def __init__(self, max_pending: int) -> None:
        super().__init__(
            f"service queue is full ({max_pending} pending requests); "
            "request rejected"
        )
        self.max_pending = max_pending


class AdmissionQueue:
    """A bounded FIFO of pending work with reject-on-full semantics.

    ``max_pending`` bounds how many requests may wait for a worker; an
    offer beyond that raises :class:`ServiceOverloadedError` immediately
    (optionally after ``timeout`` seconds of waiting for space, when the
    caller prefers brief blocking over rejection).
    """

    def __init__(self, max_pending: int) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.max_pending = max_pending
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=max_pending)

    def offer(self, item: Any, timeout: Optional[float] = None) -> None:
        """Enqueue ``item`` or raise :class:`ServiceOverloadedError`.

        ``timeout=None`` rejects immediately when full; a positive timeout
        waits that long for space first.
        """
        try:
            if timeout is None:
                self._queue.put_nowait(item)
            else:
                self._queue.put(item, timeout=timeout)
        except queue.Full:
            raise ServiceOverloadedError(self.max_pending) from None

    def force(self, item: Any) -> None:
        """Enqueue unconditionally (internal: worker-stop sentinels must
        never be rejected, or ``close()`` would hang)."""
        self._queue.put(item)

    def take(self, timeout: Optional[float] = None) -> Any:
        """Dequeue the next item, blocking up to ``timeout`` (raises
        :class:`queue.Empty` on timeout)."""
        return self._queue.get(timeout=timeout)

    def __len__(self) -> int:
        return self._queue.qsize()


__all__ = [
    "AdmissionQueue",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadedError",
]
