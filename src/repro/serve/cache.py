"""Sharded, thread-safe LRU caching for query serving.

The serving layer's whole premise (HOPI's observation that connection
workloads are dominated by repeated probes of the same hot pairs) is that
one process answers many concurrent queries and most of them repeat.  A
single ``OrderedDict`` behind one lock would serialize every worker on
every lookup; :class:`ShardedLRUCache` splits the key space over N
independent LRU shards so concurrent readers of *different* keys contend
only on their own shard's lock.

Staleness is handled by **generations**, not by eager invalidation:
every entry is stamped with the generation the *caller observed before
computing the value* (captured at lookup/miss time and threaded through
to :meth:`ShardedLRUCache.put`), and
:meth:`ShardedLRUCache.invalidate_all` simply bumps the counter.  A
lookup that finds an entry from an older generation treats it as a miss
and drops it lazily.  Stamping with the *captured* generation — not the
generation current at store time — is what closes the window where a
worker evaluates against the pre-mutation index, races with
``add_document`` + ``invalidate_all``, and would otherwise store its
stale answer under the new generation.  ``Flix`` bumps the generation on
every mutation of the index layout (``add_document``; ``rebuild`` and
``repair`` produce fresh instances with fresh caches), so a stale result
can never be served, and invalidation is O(1) regardless of cache size.

The cache is value-agnostic: the framework stores full query result
lists, connection-test distances, and connection costs alike.  Keys must
be hashable; the framework derives them from
:meth:`repro.core.api.QueryRequest.cache_key`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Tuple


@dataclass
class CacheStats:
    """Point-in-time counters for one cache (or one shard)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.invalidations += other.invalidations
        self.entries += other.entries


class _Shard:
    """One LRU shard: an ``OrderedDict`` plus its own lock and counters."""

    __slots__ = ("maxsize", "_entries", "_lock", "hits", "misses",
                 "evictions", "invalidations")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable, generation: int) -> Optional[Tuple[Any]]:
        """``(value,)`` on a current-generation hit, ``None`` on a miss.

        The 1-tuple wrapper distinguishes a cached ``None`` value (a
        negative connection test is worth caching!) from a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_generation, value = entry
            if stored_generation != generation:
                # stale: drop lazily, count as both invalidation and miss
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return (value,)

    def put(self, key: Hashable, value: Any, generation: int) -> None:
        with self._lock:
            self._entries[key] = (generation, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                invalidations=self.invalidations,
                entries=len(self._entries),
            )


class ShardedLRUCache:
    """A process-wide result cache: N LRU shards + one generation counter.

    * ``maxsize`` bounds the **total** entry count across all shards;
      each shard holds at most ``maxsize // shards`` entries (shards are
      clamped so every shard may hold at least one entry), so the bound
      holds under any key distribution — memory stays bounded under
      churn at the price of slightly under-filling when keys skew.
    * ``shards=1`` degenerates to a classic single-lock LRU with exact
      global eviction order (what the deprecated ``Flix.enable_cache``
      shim uses, preserving its documented semantics bit for bit).
    * ``generation`` makes invalidation O(1): see the module docstring.
    """

    def __init__(self, maxsize: int = 1024, shards: int = 8) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        if shards < 1:
            raise ValueError("shards must be positive")
        shards = min(shards, maxsize)
        per_shard = max(1, maxsize // shards)
        self.maxsize = shards * per_shard
        self.shards = shards
        self._shards = [_Shard(per_shard) for _ in range(shards)]
        self._generation = 0
        self._generation_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lookups / stores
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    def _shard_for(self, key: Hashable) -> _Shard:
        return self._shards[hash(key) % self.shards]

    def get(self, key: Hashable) -> Optional[Tuple[Any]]:
        """``(value,)`` on a hit, ``None`` on a miss (see :meth:`_Shard.get`)."""
        return self._shard_for(key).get(key, self._generation)

    def lookup(self, key: Hashable, default: Any = None) -> Any:
        """Plain-value convenience over :meth:`get` (hides the 1-tuple)."""
        boxed = self.get(key)
        return default if boxed is None else boxed[0]

    def put(
        self, key: Hashable, value: Any, generation: Optional[int] = None
    ) -> None:
        """Store ``value``, stamped with the generation it was computed under.

        ``generation`` is the counter the caller captured (via
        :attr:`generation`) *before* it began computing ``value``; it
        defaults to the current generation for callers that did no index
        work (tests, precomputed stores).  If the cache has since been
        invalidated, the captured value no longer matches the live counter
        and the store is dropped — and even if an invalidation slips in
        between that check and the shard write, the entry is stamped with
        the *captured* (now old) generation, so the next lookup still
        treats it as stale.  Either way a result computed against a
        mutated index state can never be served.
        """
        if generation is None:
            generation = self._generation
        elif generation != self._generation:
            # Known stale before we even store: computed against an index
            # state that has been invalidated.  Storing it would only
            # evict fresh entries, so drop it outright.
            return
        self._shard_for(key).put(key, value, generation)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_all(self) -> int:
        """Bump the generation: every current entry becomes unservable.

        Returns the new generation.  Entries are dropped lazily on their
        next lookup (or by LRU pressure), so this is O(1).
        """
        with self._generation_lock:
            self._generation += 1
            return self._generation

    def clear(self) -> None:
        """Eagerly drop every entry (tests, benchmarks); counters survive."""
        for shard in self._shards:
            shard.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def stats(self) -> CacheStats:
        total = CacheStats()
        for shard in self._shards:
            total.merge(shard.stats())
        return total

    def shard_stats(self) -> List[CacheStats]:
        return [shard.stats() for shard in self._shards]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedLRUCache(maxsize={self.maxsize}, shards={self.shards}, "
            f"entries={len(self)}, generation={self._generation})"
        )
