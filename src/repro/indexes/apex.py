"""APEX: an adaptive path index for XML data (Chung et al., SIGMOD 2002).

APEX keeps a structure graph whose base partition (APEX-0) groups elements
by their label, and *adapts* to the workload by refining the classes that
frequently-asked label paths touch, so those paths can be answered from the
summary alone.  The paper benchmarks "a database-backed implementation of
APEX (without optimizations for frequent queries)" — i.e. APEX-0 — which is
what :meth:`ApexIndex.build` constructs; :meth:`ApexIndex.build_adaptive`
additionally refines for a workload of frequent label paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.graph.digraph import Digraph
from repro.indexes._summary import ClassId, SummaryIndex
from repro.indexes.base import NodeId
from repro.storage.table import StorageBackend


class ApexIndex(SummaryIndex):
    """APEX structure-graph index with optional workload refinement."""

    strategy_name = "apex"

    @classmethod
    def build(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
    ) -> "ApexIndex":
        """APEX-0: classes are the label (tag) partition."""
        return cls.build_adaptive(graph, tags, backend, workload=())

    @classmethod
    def build_adaptive(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
        workload: Iterable[Sequence[str]],
    ) -> "ApexIndex":
        """APEX refined for the frequent label paths in ``workload``.

        Each workload entry is a label path ``(t1, ..., tk)``; after
        refinement, the elements with tag ``tk`` that are reachable via that
        exact label path form their own class (split off from the rest), so
        the path is answerable from extents without touching the data graph.
        """
        index = cls(backend)
        class_of = _label_partition(graph, tags)
        for path in workload:
            class_of = _refine_for_path(graph, tags, class_of, tuple(path))
        index._initialize(graph, tags, _normalize(class_of), "apex")
        index._frequent_paths = [tuple(p) for p in workload]
        return index

    # ------------------------------------------------------------------
    # APEX extras
    # ------------------------------------------------------------------
    _frequent_paths: List[Tuple[str, ...]] = []

    @property
    def frequent_paths(self) -> List[Tuple[str, ...]]:
        """The label paths this instance was refined for."""
        return list(self._frequent_paths)

    def match_label_path(self, path: Sequence[str]) -> Set[NodeId]:
        """Elements reachable from any root via the exact child path ``path``.

        Evaluated over the structure graph first and verified on the data
        graph; for refined paths the structure-level answer is already
        exact, which is APEX's selling point.
        """
        if not path:
            return set()
        frontier = {
            node
            for node in self._graph.nodes()
            if self._graph.in_degree(node) == 0 and self._tags[node] == path[0]
        }
        for tag in path[1:]:
            frontier = {
                succ
                for node in frontier
                for succ in self._graph.successors(node)
                if self._tags[succ] == tag
            }
            if not frontier:
                return set()
        return frontier


def _label_partition(
    graph: Digraph,
    tags: Mapping[NodeId, str],
) -> Dict[NodeId, ClassId]:
    """APEX-0 base partition: one class per element label."""
    class_ids: Dict[str, ClassId] = {}
    class_of: Dict[NodeId, ClassId] = {}
    for node in sorted(graph.nodes()):
        tag = tags[node]
        if tag not in class_ids:
            class_ids[tag] = len(class_ids)
        class_of[node] = class_ids[tag]
    return class_of


def _refine_for_path(
    graph: Digraph,
    tags: Mapping[NodeId, str],
    class_of: Dict[NodeId, ClassId],
    path: Tuple[str, ...],
) -> Dict[NodeId, ClassId]:
    """Split classes so that each prefix of ``path`` has an exact extent."""
    if not path:
        return class_of
    matched: Set[NodeId] = {
        node for node in graph.nodes() if tags[node] == path[0]
    }
    refined = _split(class_of, matched)
    for tag in path[1:]:
        matched = {
            succ
            for node in matched
            for succ in graph.successors(node)
            if tags[succ] == tag
        }
        refined = _split(refined, matched)
    return refined


def _split(
    class_of: Dict[NodeId, ClassId],
    member_set: Set[NodeId],
) -> Dict[NodeId, ClassId]:
    """Split every class into its intersection with and without ``member_set``."""
    signatures: Dict[Tuple[ClassId, bool], ClassId] = {}
    refined: Dict[NodeId, ClassId] = {}
    for node in sorted(class_of):
        signature = (class_of[node], node in member_set)
        if signature not in signatures:
            signatures[signature] = len(signatures)
        refined[node] = signatures[signature]
    return refined


def _normalize(class_of: Dict[NodeId, ClassId]) -> Dict[NodeId, ClassId]:
    """Renumber class ids densely and deterministically."""
    mapping: Dict[ClassId, ClassId] = {}
    normalized: Dict[NodeId, ClassId] = {}
    for node in sorted(class_of):
        cls = class_of[node]
        if cls not in mapping:
            mapping[cls] = len(mapping)
        normalized[node] = mapping[cls]
    return normalized
