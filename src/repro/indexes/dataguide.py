"""Strong DataGuides (Goldman & Widom, VLDB 1997).

A DataGuide is a deterministic summary: every label path that occurs in the
data occurs exactly once in the guide, and each guide state stores its
*target set* (the elements reachable by that path).  On graph-shaped data
the construction is a powerset determinization and can blow up
exponentially, so the builder enforces a state budget and raises
:class:`~repro.indexes.base.IndexNotApplicableError` beyond it — one more
reason the paper's framework picks strategies per meta document instead of
globally.

For the generic :class:`~repro.indexes.base.PathIndex` operations the class
inherits the structure-pruned BFS of :class:`SummaryIndex` over the label
partition; its added value is :meth:`match_label_path`, the exact root-path
lookup DataGuides exist for.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

from repro.graph.digraph import Digraph
from repro.indexes._summary import ClassId, SummaryIndex
from repro.indexes.base import IndexNotApplicableError, NodeId
from repro.storage.table import Column, StorageBackend, TableSchema

_GUIDE_SCHEMA = TableSchema(
    name="dataguide_target_sets",
    columns=(
        Column("state", "int"),
        Column("node", "int"),
    ),
    indexed=("state",),
)

_GUIDE_EDGE_SCHEMA = TableSchema(
    name="dataguide_transitions",
    columns=(
        Column("src_state", "int"),
        Column("label", "str"),
        Column("dst_state", "int"),
    ),
    indexed=("src_state",),
)


class DataGuideIndex(SummaryIndex):
    """Strong DataGuide with target sets, plus inherited guided BFS."""

    strategy_name = "dataguide"

    DEFAULT_MAX_STATES = 20000

    def __init__(self, backend: StorageBackend) -> None:
        super().__init__(backend)
        self._targets: List[FrozenSet[NodeId]] = []
        self._transitions: Dict[Tuple[int, str], int] = {}
        self._initial_state: int = -1

    @classmethod
    def build(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
    ) -> "DataGuideIndex":
        return cls.build_bounded(graph, tags, backend, cls.DEFAULT_MAX_STATES)

    @classmethod
    def build_bounded(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
        max_states: int,
    ) -> "DataGuideIndex":
        index = cls(backend)
        index._determinize(graph, tags, max_states)
        class_of = _label_partition(graph, tags)
        index._initialize(graph, tags, class_of, "dataguide")
        index._persist_guide()
        return index

    def _determinize(
        self,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        max_states: int,
    ) -> None:
        """Powerset construction from a virtual super-root.

        State 0 is the empty-path state (the super-root itself); its
        transitions consume the *root* labels.  Every other state is interned
        by its target set, so equal label paths share one state — the
        defining DataGuide property.
        """
        roots = sorted(n for n in graph.nodes() if graph.in_degree(n) == 0)
        self._initial_state = 0
        self._targets = [frozenset()]
        state_of: Dict[FrozenSet[NodeId], int] = {}

        def intern(target: FrozenSet[NodeId]) -> Tuple[int, bool]:
            if target in state_of:
                return state_of[target], False
            if len(self._targets) >= max_states:
                raise IndexNotApplicableError(
                    f"DataGuide exceeds {max_states} states on this graph"
                )
            state = len(self._targets)
            state_of[target] = state
            self._targets.append(target)
            return state, True

        by_label: Dict[str, Set[NodeId]] = {}
        for root in roots:
            by_label.setdefault(tags[root], set()).add(root)
        queue = deque()
        for label, nodes in sorted(by_label.items()):
            state, fresh = intern(frozenset(nodes))
            self._transitions[(self._initial_state, label)] = state
            if fresh:
                queue.append(state)
        while queue:
            source_state = queue.popleft()
            by_label = {}
            for node in self._targets[source_state]:
                for succ in graph.successors(node):
                    by_label.setdefault(tags[succ], set()).add(succ)
            for label, nodes in sorted(by_label.items()):
                state, fresh = intern(frozenset(nodes))
                self._transitions[(source_state, label)] = state
                if fresh:
                    queue.append(state)

    def _persist_guide(self) -> None:
        states = self._backend.create_table(_GUIDE_SCHEMA)
        states.insert_many(
            (state, node)
            for state, target in enumerate(self._targets)
            for node in sorted(target)
        )
        edges = self._backend.create_table(_GUIDE_EDGE_SCHEMA)
        edges.insert_many(
            (src, label, dst)
            for (src, label), dst in sorted(self._transitions.items())
        )

    # ------------------------------------------------------------------
    # DataGuide-specific operations
    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self._targets)

    def match_label_path(self, path: Sequence[str]) -> Set[NodeId]:
        """Target set of the root label path ``path`` (empty set if absent).

        This is the O(|path|) lookup that makes DataGuides attractive for
        short, wildcard-free paths (the paper's rule of thumb in §2.2).
        """
        state = self._initial_state
        for label in path:
            nxt = self._transitions.get((state, label))
            if nxt is None:
                return set()
            state = nxt
        if state == self._initial_state:
            return set()
        return set(self._targets[state])

    def label_paths(self, max_length: int) -> List[Tuple[str, ...]]:
        """All distinct label paths up to ``max_length`` (for diagnostics)."""
        paths: List[Tuple[str, ...]] = []
        queue: deque = deque([(self._initial_state, ())])
        while queue:
            state, prefix = queue.popleft()
            if len(prefix) >= max_length:
                continue
            for (src, label), dst in self._transitions.items():
                if src == state:
                    extended = prefix + (label,)
                    paths.append(extended)
                    queue.append((dst, extended))
        return sorted(set(paths))


def _label_partition(
    graph: Digraph,
    tags: Mapping[NodeId, str],
) -> Dict[NodeId, ClassId]:
    class_ids: Dict[str, ClassId] = {}
    class_of: Dict[NodeId, ClassId] = {}
    for node in sorted(graph.nodes()):
        tag = tags[node]
        if tag not in class_ids:
            class_ids[tag] = len(class_ids)
        class_of[node] = class_ids[tag]
    return class_of
