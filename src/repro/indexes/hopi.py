"""HOPI: a 2-hop connection index with distance information [18, 6].

Every node ``v`` carries two label sets: ``L_in(v)`` (hubs that reach ``v``)
and ``L_out(v)`` (hubs reachable from ``v``), each entry annotated with the
hop distance.  Then

* ``u`` reaches ``v``  iff  ``L_out(u)`` and ``L_in(v)`` share a hub, and
* ``dist(u, v) = min over shared hubs h of d(u, h) + d(h, v)``.

Two builders are provided:

``HopiIndex.build``
    Centralized construction via *pruned landmark labeling*: process nodes
    in descending-degree order; from each landmark run one forward and one
    backward BFS, pruned wherever the labels built so far already certify a
    distance at least as small.  This yields a correct and small 2-hop cover
    with exact distances (the greedy set-cover construction of Cohen et al.
    is approximated by the degree-ordered pruning, as in practical 2-hop
    implementations).

``HopiIndex.build_divide_and_conquer``
    The paper's three-step HOPI builder (section 2.2): (1) partition the
    graph into size-bounded blocks with few crossing edges, (2) label each
    partition independently, (3) *join* the partition indexes.  The join
    forms a weighted *skeleton graph* over the endpoints of
    partition-crossing edges (cross edges at weight 1, intra-partition
    endpoint-to-endpoint shortest paths from the local labels), computes
    shortest paths on it, and promotes every cross-edge head to a global hub.
    The result answers exactly the same queries as the centralized build —
    the test suite asserts equality against BFS ground truth for both.

Stopping after step (2) gives the per-partition indexes that FliX's
*Unconnected HOPI* configuration uses as meta-document indexes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.graph.digraph import Digraph
from repro.graph.partition import partition_graph
from repro.graph.traversal import dijkstra
from repro.indexes.base import NodeId, PathIndex, ScoredNode, sort_scored
from repro.storage.table import Column, StorageBackend, TableSchema

Label = Dict[NodeId, int]  # hub -> distance


def _label_schema(name: str) -> TableSchema:
    return TableSchema(
        name=name,
        columns=(
            Column("node", "int"),
            Column("hub", "int"),
            Column("dist", "int"),
        ),
        indexed=("node", "hub"),
    )


class HopiIndex(PathIndex):
    """2-hop reachability/distance labels over an arbitrary digraph."""

    strategy_name = "hopi"

    def __init__(self, backend: StorageBackend) -> None:
        super().__init__(backend)
        self._in: Dict[NodeId, Label] = {}
        self._out: Dict[NodeId, Label] = {}
        # hub -> {node: dist} — inverted labels for enumeration
        self._hub_descendants: Dict[NodeId, Dict[NodeId, int]] = {}
        self._hub_ancestors: Dict[NodeId, Dict[NodeId, int]] = {}
        self._tags: Dict[NodeId, str] = {}
        self._nodes: frozenset = frozenset()
        # retained for incremental maintenance (insert_edge)
        self._graph: Digraph = Digraph()

    # ==================================================================
    # centralized construction (pruned landmark labeling)
    # ==================================================================
    @classmethod
    def build(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
    ) -> "HopiIndex":
        index = cls(backend)
        index._tags = dict(tags)
        index._graph = graph.copy()
        index._in = {node: {} for node in graph}
        index._out = {node: {} for node in graph}
        order = sorted(
            graph.nodes(),
            key=lambda n: (-(graph.in_degree(n) + graph.out_degree(n)), n),
        )
        for landmark in order:
            index._label_from(graph, landmark, forward=True)
            index._label_from(graph, landmark, forward=False)
        index._finish()
        return index

    def _label_from(self, graph: Digraph, landmark: NodeId, forward: bool) -> None:
        """One pruned BFS; forward fills L_in of reached nodes, backward L_out."""
        target_labels = self._in if forward else self._out
        queue = deque([(landmark, 0)])
        visited = {landmark}
        while queue:
            node, dist = queue.popleft()
            if node != landmark and self._query_distance_capped(landmark, node, dist, forward):
                continue  # an earlier landmark already certifies <= dist
            target_labels[node][landmark] = dist
            neighbours = (
                graph.successors(node) if forward else graph.predecessors(node)
            )
            for nxt in neighbours:
                if nxt not in visited:
                    visited.add(nxt)
                    queue.append((nxt, dist + 1))

    def _query_distance_capped(
        self,
        landmark: NodeId,
        node: NodeId,
        cap: int,
        forward: bool,
    ) -> bool:
        """True iff current labels already give dist(landmark→node) <= cap
        (forward) or dist(node→landmark) <= cap (backward)."""
        if forward:
            out, inn = self._out[landmark], self._in[node]
        else:
            out, inn = self._out[node], self._in[landmark]
        if len(out) > len(inn):
            out, inn = inn, out
        for hub, d1 in out.items():
            d2 = inn.get(hub)
            if d2 is not None and d1 + d2 <= cap:
                return True
        return False

    # ==================================================================
    # divide-and-conquer construction (the HOPI builder)
    # ==================================================================
    @classmethod
    def build_divide_and_conquer(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
        partition_size: int,
    ) -> "HopiIndex":
        partitioning = partition_graph(graph, partition_size)
        locals_: List[HopiIndex] = []
        from repro.storage.memory import MemoryBackend

        for block in partitioning.blocks:
            sub = graph.subgraph(block)
            locals_.append(cls.build(sub, {n: tags[n] for n in block}, MemoryBackend()))

        index = cls(backend)
        index._tags = dict(tags)
        index._graph = graph.copy()
        # Start from the union of the partition-local labels.
        index._in = {node: {} for node in graph}
        index._out = {node: {} for node in graph}
        for local in locals_:
            for node, label in local._in.items():
                index._in[node].update(label)
            for node, label in local._out.items():
                index._out[node].update(label)

        index._join_partitions(graph, partitioning.block_of, partitioning.cut_edges, locals_)
        index._finish()
        return index

    def _join_partitions(
        self,
        graph: Digraph,
        block_of: Dict[NodeId, int],
        cut_edges: List[Tuple[NodeId, NodeId]],
        locals_: List["HopiIndex"],
    ) -> None:
        """Step 3 of the HOPI builder: join partition indexes via a skeleton.

        Skeleton nodes are the endpoints of cut edges.  Skeleton edges are
        the cut edges themselves (weight 1) plus, within each partition, an
        edge between every ordered endpoint pair at its local shortest-path
        distance.  Every cut-edge *head* becomes a global hub: it is added to
        ``L_out`` of each node that reaches it (local prefix + skeleton path)
        and to ``L_in`` of each node it reaches locally.  A cross-partition
        path enters its final partition through such a head, so the head is
        a shared hub for every cross-partition pair — making the joined
        labels a complete, distance-exact 2-hop cover.
        """
        if not cut_edges:
            return
        heads = sorted({v for _, v in cut_edges})
        skeleton_nodes: Set[NodeId] = {u for u, _ in cut_edges} | set(heads)

        # Weighted skeleton adjacency.
        adjacency: Dict[NodeId, Dict[NodeId, int]] = {s: {} for s in skeleton_nodes}

        def relax(a: NodeId, b: NodeId, w: int) -> None:
            current = adjacency[a].get(b)
            if current is None or w < current:
                adjacency[a][b] = w

        for u, v in cut_edges:
            relax(u, v, 1)
        by_block: Dict[int, List[NodeId]] = {}
        for s in skeleton_nodes:
            by_block.setdefault(block_of[s], []).append(s)
        for block_id, members in by_block.items():
            local = locals_[block_id]
            for a in members:
                for b in members:
                    if a == b:
                        continue
                    d = local.distance(a, b)
                    if d is not None:
                        relax(a, b, d)

        # Shortest skeleton distances from every skeleton node to every head.
        head_set = set(heads)
        to_heads: Dict[NodeId, Dict[NodeId, int]] = {}
        for s in skeleton_nodes:
            dist = dijkstra(
                len(skeleton_nodes), s, lambda n: adjacency.get(n, {}).items()
            )
            to_heads[s] = {h: d for h, d in dist.items() if h in head_set}

        # L_in side: every head labels its local descendants.
        for head in heads:
            local = locals_[block_of[head]]
            for node, d in local.find_descendants_by_tag(head, None):
                label = self._in[node]
                if head not in label or d < label[head]:
                    label[head] = d

        # L_out side: every node that locally reaches a skeleton node in its
        # own partition gets labels for all heads reachable on the skeleton.
        for block_id, members in by_block.items():
            local = locals_[block_id]
            for s in members:
                reach = to_heads.get(s)
                if not reach:
                    continue
                for node, d_prefix in local.find_ancestors_by_tag(s, None):
                    label = self._out[node]
                    for head, d_skel in reach.items():
                        total = d_prefix + d_skel
                        if head not in label or total < label[head]:
                            label[head] = total

    # ==================================================================
    # loading a persisted index
    # ==================================================================
    @classmethod
    def load(
        cls,
        backend: StorageBackend,
        tags: Mapping[NodeId, str],
        graph: Optional[Digraph] = None,
    ) -> "HopiIndex":
        """Reconstruct a persisted HOPI index from its label tables.

        Later rows win where incremental insertions appended improved
        distances.  ``graph`` (the element graph the labels describe) is
        only needed to keep using :meth:`insert_edge` afterwards; queries
        work without it.
        """
        index = cls(backend)
        for node, hub, dist in backend.table("hopi_in_labels").scan():
            current = index._in.setdefault(node, {}).get(hub)
            if current is None or dist < current:
                index._in[node][hub] = dist
        for node, hub, dist in backend.table("hopi_out_labels").scan():
            current = index._out.setdefault(node, {}).get(hub)
            if current is None or dist < current:
                index._out[node][hub] = dist
        # every indexed node carries a self label, so the tables define the
        # node set; ``tags`` may be a superset (e.g. the whole collection)
        index._nodes = frozenset(index._in) | frozenset(index._out)
        for node in index._nodes:
            index._in.setdefault(node, {})
            index._out.setdefault(node, {})
        index._tags = {node: tags[node] for node in index._nodes}
        for node, label in index._in.items():
            for hub, dist in label.items():
                index._hub_descendants.setdefault(hub, {})[node] = dist
        for node, label in index._out.items():
            for hub, dist in label.items():
                index._hub_ancestors.setdefault(hub, {})[node] = dist
        if graph is not None:
            index._graph = graph.copy()
        else:
            for node in index._nodes:
                index._graph.add_node(node)
        return index

    # ==================================================================
    # shared finishing: inverted lists + persistence
    # ==================================================================
    def _finish(self) -> None:
        self._nodes = frozenset(self._in)
        for node, label in self._in.items():
            for hub, dist in label.items():
                self._hub_descendants.setdefault(hub, {})[node] = dist
        for node, label in self._out.items():
            for hub, dist in label.items():
                self._hub_ancestors.setdefault(hub, {})[node] = dist
        in_table = self._backend.create_table(_label_schema("hopi_in_labels"))
        in_table.insert_many(
            (node, hub, dist)
            for node in sorted(self._in)
            for hub, dist in sorted(self._in[node].items())
        )
        out_table = self._backend.create_table(_label_schema("hopi_out_labels"))
        out_table.insert_many(
            (node, hub, dist)
            for node in sorted(self._out)
            for hub, dist in sorted(self._out[node].items())
        )

    # ==================================================================
    # queries
    # ==================================================================
    def _node_set(self) -> frozenset:
        return self._nodes

    def reachable(self, source: NodeId, target: NodeId) -> bool:
        return self.distance(source, target) is not None

    def distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        out = self._out.get(source)
        inn = self._in.get(target)
        if out is None or inn is None:
            return None
        if len(out) > len(inn):
            best = None
            for hub, d2 in inn.items():
                d1 = out.get(hub)
                if d1 is not None and (best is None or d1 + d2 < best):
                    best = d1 + d2
            return best
        best = None
        for hub, d1 in out.items():
            d2 = inn.get(hub)
            if d2 is not None and (best is None or d1 + d2 < best):
                best = d1 + d2
        return best

    def _enumerate(
        self,
        source: NodeId,
        tag: Optional[str],
        labels: Dict[NodeId, Label],
        inverted: Dict[NodeId, Dict[NodeId, int]],
    ) -> List[ScoredNode]:
        label = labels.get(source)
        if label is None:
            return []
        best: Dict[NodeId, int] = {}
        for hub, d1 in label.items():
            for node, d2 in inverted.get(hub, {}).items():
                total = d1 + d2
                current = best.get(node)
                if current is None or total < current:
                    best[node] = total
        if tag is not None:
            return sort_scored(
                (node, d) for node, d in best.items() if self._tags.get(node) == tag
            )
        return sort_scored(best.items())

    def find_descendants_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        return self._enumerate(source, tag, self._out, self._hub_descendants)

    def find_ancestors_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        return self._enumerate(source, tag, self._in, self._hub_ancestors)

    # ==================================================================
    # incremental maintenance (node and edge insertion)
    # ==================================================================
    def insert_node(self, node: NodeId, tag: str) -> None:
        """Add an isolated node to the index (connect it via insert_edge).

        The node hubs itself at distance 0, so self-reachability holds
        immediately; labels for real paths appear as edges are inserted.
        """
        if node in self._nodes:
            raise ValueError(f"node {node} is already indexed")
        self._graph.add_node(node)
        self._tags[node] = tag
        self._in[node] = {node: 0}
        self._out[node] = {node: 0}
        self._hub_descendants.setdefault(node, {})[node] = 0
        self._hub_ancestors.setdefault(node, {})[node] = 0
        self._nodes = self._nodes | {node}
        self._backend.table("hopi_in_labels").insert((node, node, 0))
        self._backend.table("hopi_out_labels").insert((node, node, 0))

    def insert_edge(self, source: NodeId, target: NodeId) -> None:
        """Add the edge ``source -> target`` and repair the 2-hop labels.

        This is the *incremental maintenance* the HOPI follow-up work
        describes (and the paper's self-tuning loop needs so that new links
        do not force a full rebuild): resume a pruned BFS from the new
        edge's head for every hub that reaches its tail, and symmetrically
        from the tail for every hub reachable from its head.  Distances
        only shrink under edge insertion, so the resumed searches converge
        and all queries stay exact — the property suite verifies every
        pair against a BFS oracle after each insertion.

        Label rows for new or improved entries are appended to the backing
        tables; superseded rows are not rewritten, so the persisted size is
        an upper bound after many insertions (a rebuild compacts it).
        """
        if source not in self._nodes or target not in self._nodes:
            raise KeyError("both endpoints must already be indexed")
        if self._graph.has_edge(source, target):
            return
        self._graph.add_edge(source, target)
        in_rows: List[tuple] = []
        out_rows: List[tuple] = []
        # Forward repair: hubs that reach `source` now also reach everything
        # below `target`.
        for hub, hub_to_source in sorted(self._in[source].items()):
            self._resume_label(hub, target, hub_to_source + 1, forward=True,
                               rows=in_rows)
        # Backward repair: hubs reachable from `target` are now reachable
        # from everything above `source`.
        for hub, target_to_hub in sorted(self._out[target].items()):
            self._resume_label(hub, source, target_to_hub + 1, forward=False,
                               rows=out_rows)
        if in_rows:
            self._backend.table("hopi_in_labels").insert_many(in_rows)
        if out_rows:
            self._backend.table("hopi_out_labels").insert_many(out_rows)

    def _resume_label(
        self,
        hub: NodeId,
        start: NodeId,
        start_distance: int,
        forward: bool,
        rows: List[tuple],
    ) -> None:
        """Resumed pruned BFS for one hub after an edge insertion."""
        labels = self._in if forward else self._out
        inverted = (
            self._hub_descendants if forward else self._hub_ancestors
        )
        queue = deque([(start, start_distance)])
        visited = {start}
        while queue:
            node, dist = queue.popleft()
            if self._query_distance_capped(hub, node, dist, forward):
                continue  # existing labels already certify <= dist
            labels[node][hub] = dist
            inverted.setdefault(hub, {})[node] = dist
            rows.append((node, hub, dist))
            neighbours = (
                self._graph.successors(node)
                if forward
                else self._graph.predecessors(node)
            )
            for nxt in neighbours:
                if nxt not in visited:
                    visited.add(nxt)
                    queue.append((nxt, dist + 1))

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def label_entry_count(self) -> int:
        """Total 2-hop label entries — the classic 2-hop size measure."""
        return sum(len(l) for l in self._in.values()) + sum(
            len(l) for l in self._out.values()
        )
