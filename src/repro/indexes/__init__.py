"""Path Indexing Strategies (PIS) — the building blocks FliX composes.

Section 2.2 reviews the landscape; we implement all of the strategies the
paper works with, behind one interface (:class:`repro.indexes.base.PathIndex`):

* :mod:`repro.indexes.ppo` — Grust's pre/postorder scheme (trees/forests);
* :mod:`repro.indexes.hopi` — HOPI, the 2-hop reachability+distance cover,
  with both a centralized and a divide-and-conquer builder;
* :mod:`repro.indexes.apex` — APEX, the adaptive path index (structure-graph
  guided evaluation, optional workload refinement);
* :mod:`repro.indexes.kindex` — the Index Definition Scheme family:
  1-index and A(k)-indexes via k-bisimulation;
* :mod:`repro.indexes.dataguide` — strong DataGuides;
* :mod:`repro.indexes.transitive` — the materialized transitive closure
  (the paper's size strawman and our correctness oracle).
"""

from repro.indexes.base import IndexNotApplicableError, PathIndex
from repro.indexes.ppo import PpoIndex
from repro.indexes.hopi import HopiIndex
from repro.indexes.apex import ApexIndex
from repro.indexes.kindex import ForwardBackwardIndex, KBisimulationIndex
from repro.indexes.dataguide import DataGuideIndex
from repro.indexes.fabric import FabricIndex
from repro.indexes.transitive import TransitiveClosureIndex
from repro.indexes.registry import available_strategies, build_index, register_strategy

__all__ = [
    "PathIndex",
    "IndexNotApplicableError",
    "PpoIndex",
    "HopiIndex",
    "ApexIndex",
    "KBisimulationIndex",
    "ForwardBackwardIndex",
    "DataGuideIndex",
    "FabricIndex",
    "TransitiveClosureIndex",
    "available_strategies",
    "build_index",
    "register_strategy",
]
