"""The pre/postorder (PPO) index of Grust [10, 11].

One depth-first traversal assigns each element its preorder rank ``pre(e)``
and subtree size; ``v`` is a descendant-or-self of ``u`` iff
``pre(u) <= pre(v) < pre(u) + size(u)`` (the interval formulation is
equivalent to the paper's ``pre(x) < pre(y) and post(x) > post(y)`` test and
needs one comparison less).  With the "slight additions" the paper mentions —
storing each node's depth and parent — the index also answers distance
queries (``depth(v) - depth(u)`` along the unique tree path) and ancestor
walks.

Build time O(|E|), space O(|V|): the fastest and smallest of all strategies,
but only applicable when the element graph is a forest of rooted trees —
which is exactly why FliX's Maximal PPO configuration works so hard to carve
tree-shaped meta documents out of a linked collection (section 4.3).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Mapping, Optional, Tuple

from repro.graph.digraph import Digraph
from repro.graph.treecheck import forest_roots, is_forest
from repro.indexes.base import (
    IndexNotApplicableError,
    NodeId,
    PathIndex,
    ScoredNode,
    sort_scored,
)
from repro.storage.table import Column, StorageBackend, TableSchema

# One row per node.  post(e) is not stored: it is derivable as
# pre + size - 1, and the paper stresses PPO's O(|V|) compactness.
_SCHEMA = TableSchema(
    name="ppo_nodes",
    columns=(
        Column("node", "int"),
        Column("pre", "int"),
        Column("size", "int"),
        Column("depth", "int"),
        Column("parent", "int"),  # -1 for roots
    ),
    indexed=("node",),
)


class PpoIndex(PathIndex):
    """Pre/postorder interval index for forest-shaped element graphs."""

    strategy_name = "ppo"

    def __init__(self, backend: StorageBackend) -> None:
        super().__init__(backend)
        self._pre: Dict[NodeId, int] = {}
        self._size: Dict[NodeId, int] = {}
        self._depth: Dict[NodeId, int] = {}
        self._parent: Dict[NodeId, Optional[NodeId]] = {}
        self._node_at_pre: List[NodeId] = []
        # tag -> list of (pre, node), sorted by pre, for interval scans
        self._tag_pres: Dict[str, List[Tuple[int, NodeId]]] = {}
        # pre rank of each tree's first node, ascending; tree i spans
        # [starts[i], starts[i+1]) in preorder
        self._tree_starts: List[int] = []
        # residual-link candidates prepared for interval probing
        self._prepared_candidates: Optional[frozenset] = None
        self._prepared_pres: List[Tuple[int, NodeId]] = []
        self._nodes: frozenset = frozenset()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
    ) -> "PpoIndex":
        if not is_forest(graph):
            raise IndexNotApplicableError(
                "PPO requires a forest: some node has in-degree > 1 or the "
                "graph contains a cycle"
            )
        index = cls(backend)
        counter = 0
        for root in forest_roots(graph):
            index._tree_starts.append(counter)
            counter = index._number_tree(graph, root, counter)
        index._nodes = frozenset(index._pre)
        for tag, entries in index._tag_pres.items():
            entries.sort()
        index._persist(tags)
        return index

    def _number_tree(self, graph: Digraph, root: NodeId, counter: int) -> int:
        """Assign pre ranks/sizes/depths for one tree; returns next rank."""
        # Frames: (node, depth, parent); sizes fixed up after the subtree.
        order: List[NodeId] = []
        stack: List[Tuple[NodeId, int, Optional[NodeId]]] = [(root, 0, None)]
        while stack:
            node, depth, parent = stack.pop()
            self._pre[node] = counter + len(order)
            order.append(node)
            self._depth[node] = depth
            self._parent[node] = parent
            children = sorted(graph.successors(node))
            for child in reversed(children):
                stack.append((child, depth + 1, node))
        # Subtree sizes: children appear after parents in preorder; process
        # in reverse preorder and fold child sizes upward.
        for node in reversed(order):
            size = 1
            for child in graph.successors(node):
                size += self._size[child]
            self._size[node] = size
        for node in order:
            self._node_at_pre.append(node)
            self._tag_pres.setdefault(self._tag_hint(node), []).append(
                (self._pre[node], node)
            )
        return counter + len(order)

    @classmethod
    def load(
        cls,
        backend: StorageBackend,
        tags: Mapping[NodeId, str],
    ) -> "PpoIndex":
        """Reconstruct a persisted PPO index from its ``ppo_nodes`` table.

        ``tags`` must be the same node -> tag mapping the index was built
        with (tags live in the collection, not the index tables).
        """
        index = cls(backend)
        rows = list(backend.table("ppo_nodes").scan())
        for node, pre, size, depth, parent in rows:
            index._pre[node] = pre
            index._size[node] = size
            index._depth[node] = depth
            index._parent[node] = None if parent == -1 else parent
        index._nodes = frozenset(index._pre)
        index._node_at_pre = [0] * len(rows)
        for node, pre in index._pre.items():
            index._node_at_pre[pre] = node
        index._tree_starts = sorted(
            index._pre[node]
            for node, parent in index._parent.items()
            if parent is None
        )
        for node in index._pre:
            index._tag_pres.setdefault(tags[node], []).append(
                (index._pre[node], node)
            )
        for entries in index._tag_pres.values():
            entries.sort()
        return index

    def _tag_hint(self, node: NodeId) -> str:
        # Overwritten by _persist, which knows the tags mapping; during
        # numbering we park nodes under a placeholder bucket.
        return "\x00pending"

    def _persist(self, tags: Mapping[NodeId, str]) -> None:
        # Re-bucket by actual tag (the numbering pass used a placeholder).
        pending = self._tag_pres.pop("\x00pending", [])
        for pre, node in pending:
            self._tag_pres.setdefault(tags[node], []).append((pre, node))
        for entries in self._tag_pres.values():
            entries.sort()
        table = self._backend.create_table(_SCHEMA)
        table.insert_many(
            (
                node,
                self._pre[node],
                self._size[node],
                self._depth[node],
                self._parent[node] if self._parent[node] is not None else -1,
            )
            for node in sorted(self._pre)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _node_set(self) -> frozenset:
        return self._nodes

    def _interval(self, source: NodeId) -> Tuple[int, int]:
        pre = self._pre[source]
        return pre, pre + self._size[source]

    def reachable(self, source: NodeId, target: NodeId) -> bool:
        if source not in self._pre or target not in self._pre:
            return False
        low, high = self._interval(source)
        return low <= self._pre[target] < high

    def distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        if not self.reachable(source, target):
            return None
        return self._depth[target] - self._depth[source]

    def find_descendants_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        if source not in self._pre:
            return []
        low, high = self._interval(source)
        base_depth = self._depth[source]
        if tag is None:
            nodes = self._node_at_pre[low:high]
        else:
            entries = self._tag_pres.get(tag, [])
            lo = bisect_left(entries, (low, -1))
            hi = bisect_left(entries, (high, -1))
            nodes = [node for _, node in entries[lo:hi]]
        return sort_scored((node, self._depth[node] - base_depth) for node in nodes)

    def find_ancestors_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        if source not in self._pre:
            return []
        result: List[ScoredNode] = []
        node: Optional[NodeId] = source
        dist = 0
        while node is not None:
            if tag is None or self._matches_tag(node, tag):
                result.append((node, dist))
            node = self._parent[node]
            dist += 1
        return result  # parent walk is already ascending-distance

    def _matches_tag(self, node: NodeId, tag: str) -> bool:
        entries = self._tag_pres.get(tag, [])
        pre = self._pre[node]
        i = bisect_left(entries, (pre, -1))
        return i < len(entries) and entries[i][0] == pre

    # ------------------------------------------------------------------
    # residual-link fast path
    # ------------------------------------------------------------------
    def prepare_link_candidates(self, candidates: frozenset) -> None:
        """Sort ``L_i`` by preorder so ``reachable_subset`` is one bisect.

        With this, the Figure 4 step "compute the set L(a) of reachable
        link elements" costs O(log n + |answer|) on PPO meta documents
        instead of one interval probe per candidate.
        """
        self._prepared_candidates = candidates
        self._prepared_pres = sorted(
            (self._pre[c], c) for c in candidates if c in self._pre
        )

    def reachable_subset(self, source: NodeId, candidates) -> List[ScoredNode]:
        if (
            self._prepared_candidates is None
            or candidates is not self._prepared_candidates
            or source not in self._pre
        ):
            return super().reachable_subset(source, candidates)
        low, high = self._interval(source)
        lo = bisect_left(self._prepared_pres, (low, -1))
        hi = bisect_left(self._prepared_pres, (high, -1))
        base_depth = self._depth[source]
        return sort_scored(
            (node, self._depth[node] - base_depth)
            for _pre, node in self._prepared_pres[lo:hi]
        )

    # ------------------------------------------------------------------
    # PPO extras
    # ------------------------------------------------------------------
    def preorder(self, node: NodeId) -> int:
        return self._pre[node]

    def postorder(self, node: NodeId) -> int:
        """The classic post rank (pre + size - 1 in the interval encoding)."""
        return self._pre[node] + self._size[node] - 1

    def depth(self, node: NodeId) -> int:
        return self._depth[node]

    def parent(self, node: NodeId) -> Optional[NodeId]:
        return self._parent[node]

    # ------------------------------------------------------------------
    # the remaining XPath axes — "All XPath axes can be evaluated using
    # these numbers" (section 2.2); each returns document order
    # ------------------------------------------------------------------
    def _tree_span(self, node: NodeId) -> Tuple[int, int]:
        """The preorder range [start, end) of the tree containing ``node``."""
        pre = self._pre[node]
        i = bisect_right(self._tree_starts, pre) - 1
        start = self._tree_starts[i]
        end = (
            self._tree_starts[i + 1]
            if i + 1 < len(self._tree_starts)
            else len(self._node_at_pre)
        )
        return start, end

    def children(self, node: NodeId) -> List[NodeId]:
        """XPath ``child``: direct children in document order."""
        result: List[NodeId] = []
        pre = self._pre[node] + 1
        end = self._pre[node] + self._size[node]
        while pre < end:
            child = self._node_at_pre[pre]
            result.append(child)
            pre += self._size[child]
        return result

    def following(self, node: NodeId) -> List[NodeId]:
        """XPath ``following``: nodes after the subtree, same tree."""
        _start, tree_end = self._tree_span(node)
        begin = self._pre[node] + self._size[node]
        return self._node_at_pre[begin:tree_end]

    def preceding(self, node: NodeId) -> List[NodeId]:
        """XPath ``preceding``: nodes wholly before ``node``, same tree
        (ancestors excluded, per the XPath definition)."""
        tree_start, _end = self._tree_span(node)
        pre = self._pre[node]
        return [
            candidate
            for candidate in self._node_at_pre[tree_start:pre]
            if self._pre[candidate] + self._size[candidate] <= pre
        ]

    def following_siblings(self, node: NodeId) -> List[NodeId]:
        """XPath ``following-sibling``."""
        parent = self._parent[node]
        if parent is None:
            return []
        siblings = self.children(parent)
        position = siblings.index(node)
        return siblings[position + 1 :]

    def preceding_siblings(self, node: NodeId) -> List[NodeId]:
        """XPath ``preceding-sibling`` (document order)."""
        parent = self._parent[node]
        if parent is None:
            return []
        siblings = self.children(parent)
        return siblings[: siblings.index(node)]
