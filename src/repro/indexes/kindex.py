"""The Index Definition Scheme family: 1-index and A(k)-indexes.

Kaushik et al.'s Index Definition Scheme (section 2.2, [12, 15]) defines
structural summaries through (bounded) backward bisimulation:

* the **A(k)-index** groups elements that are k-bisimilar — indistinguishable
  by incoming label paths up to length ``k``;
* the **1-index** is the limit ``k -> infinity`` (full backward
  bisimulation), which is *precise* for all incoming path queries.

Both are built by partition refinement: start from the label partition and
refine by predecessor-class signatures, ``k`` times or to a fixpoint.  The
paper's rule of thumb (section 2.2): these do fine "if all paths are short
or do not contain wildcards" — long `//` chains degrade to the guided BFS
this class inherits from :class:`repro.indexes._summary.SummaryIndex`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.graph.digraph import Digraph
from repro.indexes._summary import ClassId, SummaryIndex, refine_partition_once
from repro.indexes.base import NodeId
from repro.storage.table import StorageBackend


class KBisimulationIndex(SummaryIndex):
    """A(k)-index (finite ``k``) or 1-index (``k=None``, run to fixpoint)."""

    strategy_name = "kindex"

    #: refinement rounds actually performed (useful for diagnostics)
    rounds_performed: int = 0
    #: the requested k (None means fixpoint / 1-index)
    k: Optional[int] = None

    @classmethod
    def build(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
    ) -> "KBisimulationIndex":
        """Default instantiation: the 1-index (full bisimulation)."""
        return cls.build_k(graph, tags, backend, k=None)

    @classmethod
    def build_k(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
        k: Optional[int],
    ) -> "KBisimulationIndex":
        if k is not None and k < 0:
            raise ValueError("k must be non-negative (or None for the 1-index)")
        index = cls(backend)
        class_of = _label_partition(graph, tags)
        rounds = 0
        while k is None or rounds < k:
            class_of, changed = refine_partition_once(graph, class_of)
            rounds += 1
            if not changed:
                break
            if k is None and rounds > graph.node_count:
                raise AssertionError(
                    "bisimulation refinement failed to converge"
                )  # pragma: no cover - refinement always converges
        index._initialize(graph, tags, class_of, "kindex")
        index.rounds_performed = rounds
        index.k = k
        return index


class ForwardBackwardIndex(KBisimulationIndex):
    """The F&B index: forward *and* backward bisimulation to a fixpoint.

    The finest member of the Index Definition Scheme family (paper §2.2's
    "F&B Index"): classes are stable under both incoming and outgoing label
    paths, so branching path queries are precise on the structure graph.
    The price is the largest class count of the family — the test suite
    checks it refines the 1-index.
    """

    strategy_name = "fbindex"

    @classmethod
    def build(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
    ) -> "ForwardBackwardIndex":
        index = cls(backend)
        class_of = _label_partition(graph, tags)
        rounds = 0
        stable_in_a_row = 0
        direction = "backward"
        # Alternate directions until NEITHER splits anything.
        while stable_in_a_row < 2:
            class_of, changed = refine_partition_once(graph, class_of, direction)
            rounds += 1
            stable_in_a_row = 0 if changed else stable_in_a_row + 1
            direction = "forward" if direction == "backward" else "backward"
            if rounds > 2 * graph.node_count + 4:  # pragma: no cover
                raise AssertionError("F&B refinement failed to converge")
        index._initialize(graph, tags, class_of, "fbindex")
        index.rounds_performed = rounds
        index.k = None
        return index


def _label_partition(
    graph: Digraph,
    tags: Mapping[NodeId, str],
) -> Dict[NodeId, ClassId]:
    class_ids: Dict[str, ClassId] = {}
    class_of: Dict[NodeId, ClassId] = {}
    for node in sorted(graph.nodes()):
        tag = tags[node]
        if tag not in class_ids:
            class_ids[tag] = len(class_ids)
        class_of[node] = class_ids[tag]
    return class_of
