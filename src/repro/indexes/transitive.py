"""Materialized transitive closure as a PathIndex.

The paper's size strawman: "the HOPI index is huge, but it is still more
than an order of magnitude smaller than storing the complete transitive
closure" (section 6).  Storing the closure gives O(1) reachability and the
fastest possible descendant enumeration — at a storage cost that Table 1's
reproduction (``bench_table1_index_sizes``) shows dwarfing every other
strategy.  It doubles as the correctness oracle in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.indexes.base import NodeId, PathIndex, ScoredNode, sort_scored
from repro.storage.table import Column, StorageBackend, TableSchema

_SCHEMA = TableSchema(
    name="closure_pairs",
    columns=(
        Column("src", "int"),
        Column("dst", "int"),
        Column("dist", "int"),
    ),
    indexed=("src", "dst"),
)


class TransitiveClosureIndex(PathIndex):
    """Full (ancestor, descendant, distance) relation, fully materialized."""

    strategy_name = "transitive_closure"

    def __init__(self, backend: StorageBackend) -> None:
        super().__init__(backend)
        self._descendants: Dict[NodeId, Dict[NodeId, int]] = {}
        self._ancestors: Dict[NodeId, Dict[NodeId, int]] = {}
        self._tags: Dict[NodeId, str] = {}
        self._nodes: frozenset = frozenset()

    @classmethod
    def build(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
    ) -> "TransitiveClosureIndex":
        index = cls(backend)
        index._tags = dict(tags)
        closure = transitive_closure(graph)
        index._descendants = {node: dict(closure.descendants(node)) for node in graph}
        for src, row in index._descendants.items():
            for dst, dist in row.items():
                index._ancestors.setdefault(dst, {})[src] = dist
        for node in graph:
            index._ancestors.setdefault(node, {})
        index._nodes = frozenset(graph.nodes())
        table = backend.create_table(_SCHEMA)
        table.insert_many(
            (src, dst, dist)
            for src in sorted(index._descendants)
            for dst, dist in sorted(index._descendants[src].items())
        )
        return index

    @classmethod
    def load(
        cls,
        backend: StorageBackend,
        tags: Mapping[NodeId, str],
    ) -> "TransitiveClosureIndex":
        """Reconstruct a persisted closure from its ``closure_pairs`` table."""
        index = cls(backend)
        for src, dst, dist in backend.table("closure_pairs").scan():
            index._descendants.setdefault(src, {})[dst] = dist
            index._ancestors.setdefault(dst, {})[src] = dist
        # self pairs exist for every node, so the table defines the node
        # set; ``tags`` may be a superset (e.g. the whole collection)
        index._nodes = frozenset(index._descendants)
        for node in index._nodes:
            index._ancestors.setdefault(node, {})
        index._tags = {node: tags[node] for node in index._nodes}
        return index

    def _node_set(self) -> frozenset:
        return self._nodes

    def reachable(self, source: NodeId, target: NodeId) -> bool:
        row = self._descendants.get(source)
        return row is not None and target in row

    def distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        row = self._descendants.get(source)
        if row is None:
            return None
        return row.get(target)

    def find_descendants_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        row = self._descendants.get(source, {})
        if tag is None:
            return sort_scored(row.items())
        return sort_scored(
            (node, dist) for node, dist in row.items() if self._tags.get(node) == tag
        )

    def find_ancestors_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        row = self._ancestors.get(source, {})
        if tag is None:
            return sort_scored(row.items())
        return sort_scored(
            (node, dist) for node, dist in row.items() if self._tags.get(node) == tag
        )

    @property
    def pair_count(self) -> int:
        return sum(len(row) for row in self._descendants.values())
