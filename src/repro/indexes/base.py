"""The common interface of all Path Indexing Strategies.

FliX requires (section 3.2) strategies "that support the XPath axes and
return results in ascending order of distance".  The Path Expression
Evaluator (Figure 4) needs exactly four operations from the index of a meta
document:

* ``find_descendants_by_tag(e, tag)`` — ``IND.findReachableElementsByName``,
  results in ascending distance to ``e``;
* ``reachable_subset(e, candidates)`` — ``IND.findReachableLinks``, the
  reachable members of the residual-link set ``L_i``;
* ``reachable``/``distance`` — entry-point duplicate elimination and
  connection tests;
* the reverse (ancestor) variants for ``ancestors-or-self`` evaluation.

Indexes are built from a :class:`repro.graph.digraph.Digraph` over integer
node ids plus a node -> tag mapping, and persist their payload through a
:class:`repro.storage.table.StorageBackend` so that their storage footprint
is measurable (Table 1).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.graph.digraph import Digraph
from repro.storage.table import StorageBackend

NodeId = int
Wildcard = None  # tag value meaning "any element"
ScoredNode = Tuple[NodeId, int]  # (node, distance)


class IndexNotApplicableError(ValueError):
    """The strategy cannot index this graph (e.g. PPO on a non-forest)."""


class PathIndex(abc.ABC):
    """A connection index over one (meta) document graph."""

    #: registry name; subclasses override.
    strategy_name = "abstract"

    def __init__(self, backend: StorageBackend) -> None:
        self._backend = backend

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def build(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
    ) -> "PathIndex":
        """Index ``graph``; ``tags`` maps every node to its element name."""

    # ------------------------------------------------------------------
    # core queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def reachable(self, source: NodeId, target: NodeId) -> bool:
        """``descendants-or-self`` reachability (every node reaches itself)."""

    @abc.abstractmethod
    def distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        """Shortest hop distance, or ``None`` when unreachable."""

    @abc.abstractmethod
    def find_descendants_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        """Descendants-or-self of ``source`` with the given tag.

        ``tag=None`` is the wildcard ``a//*``.  Results are sorted by
        ascending distance (ties by node id) — the contract the PEE's
        approximate global ordering rests on.
        """

    @abc.abstractmethod
    def find_ancestors_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        """Ancestors-or-self of ``source``; same ordering contract."""

    # ------------------------------------------------------------------
    # queries with default implementations
    # ------------------------------------------------------------------
    def reachable_subset(
        self,
        source: NodeId,
        candidates: Iterable[NodeId],
    ) -> List[ScoredNode]:
        """Members of ``candidates`` reachable from ``source``, by distance.

        This implements the ``L(a)`` query of section 4.2: "the set of all
        elements in the same meta document that are descendants of ``a`` and
        have an outgoing link", computed by intersecting descendants with the
        residual-link set.  Candidate sets are small, so per-candidate
        distance probes beat a full descendant enumeration.
        """
        hits = []
        for candidate in candidates:
            d = self.distance(source, candidate)
            if d is not None:
                hits.append((candidate, d))
        hits.sort(key=lambda pair: (pair[1], pair[0]))
        return hits

    def prepare_link_candidates(self, candidates: frozenset) -> None:
        """Pre-register the residual-link set ``L_i`` for repeated probing.

        The PEE queries ``reachable_subset(e, L_i)`` once per visited entry
        point; strategies with a cheaper bulk representation (PPO's
        preorder intervals) override this to build it once at index time.
        The default keeps the probe-per-candidate behaviour.
        """

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` belongs to this index's meta document."""
        return node in self._node_set()

    @abc.abstractmethod
    def _node_set(self) -> frozenset:
        """The indexed node ids."""

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def backend(self) -> StorageBackend:
        return self._backend

    def size_bytes(self) -> int:
        """Persisted storage of this index — the Table 1 measurement."""
        return self._backend.total_bytes()

    @property
    def node_count(self) -> int:
        return len(self._node_set())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} nodes={self.node_count} bytes={self.size_bytes()}>"


def sort_scored(pairs: Iterable[ScoredNode]) -> List[ScoredNode]:
    """Canonical result ordering: ascending distance, then node id."""
    return sorted(pairs, key=lambda pair: (pair[1], pair[0]))
