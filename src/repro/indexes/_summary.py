"""Shared machinery for structure-summary indexes (APEX, 1-index, A(k), ...).

These indexes partition the elements into equivalence classes and keep a
*structure graph* over the classes such that every data edge is covered by a
class edge.  They answer path queries by traversing the (small) structure
graph and — because class-level reachability over-approximates element-level
reachability — verify candidates with a structure-pruned BFS over the data
edge table.  That is how database-backed implementations of these indexes
evaluate the descendants axis, and it is why the paper finds none of them
"explicitly optimized for the descendants-or-self axis" (section 2.2): long
paths mean long guided traversals.

The pruning is what the index buys: a BFS branch is abandoned as soon as its
node's class cannot reach any class containing the requested tag.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.graph.digraph import Digraph
from repro.indexes.base import NodeId, PathIndex, ScoredNode, sort_scored
from repro.storage.table import Column, StorageBackend, TableSchema

ClassId = int


def _extent_schema(prefix: str) -> TableSchema:
    return TableSchema(
        name=f"{prefix}_extents",
        columns=(Column("node", "int"), Column("cls", "int"), Column("tag", "str")),
        indexed=("node", "cls"),
    )


def _structure_schema(prefix: str) -> TableSchema:
    return TableSchema(
        name=f"{prefix}_structure",
        columns=(Column("src_cls", "int"), Column("dst_cls", "int")),
        indexed=("src_cls",),
    )


def _edges_schema(prefix: str) -> TableSchema:
    return TableSchema(
        name=f"{prefix}_edges",
        columns=(Column("src", "int"), Column("dst", "int")),
        indexed=("src",),
    )


def refine_partition_once(
    graph: Digraph,
    class_of: Dict[NodeId, ClassId],
    direction: str = "backward",
) -> Tuple[Dict[NodeId, ClassId], bool]:
    """One bisimulation refinement round.

    ``backward`` regroups nodes by (current class, set of predecessor
    classes) — iterating to a fixpoint yields the 1-index partition, ``k``
    rounds the A(k)-index.  ``forward`` uses successor classes instead;
    alternating both to a joint fixpoint yields the F&B index, which is
    precise for branching path queries (Kaushik et al. [12]).
    """
    if direction not in ("backward", "forward"):
        raise ValueError(f"unknown refinement direction {direction!r}")
    signatures: Dict[Tuple[ClassId, frozenset], ClassId] = {}
    refined: Dict[NodeId, ClassId] = {}
    for node in sorted(graph.nodes()):
        neighbours = (
            graph.predecessors(node)
            if direction == "backward"
            else graph.successors(node)
        )
        signature = (class_of[node], frozenset(class_of[n] for n in neighbours))
        if signature not in signatures:
            signatures[signature] = len(signatures)
        refined[node] = signatures[signature]
    changed = len(set(refined.values())) != len(set(class_of.values()))
    return refined, changed


class SummaryIndex(PathIndex):
    """Base class: class partition + structure graph + guided BFS."""

    strategy_name = "summary"

    def __init__(self, backend: StorageBackend) -> None:
        super().__init__(backend)
        self._graph: Digraph = Digraph()
        self._tags: Dict[NodeId, str] = {}
        self._class_of: Dict[NodeId, ClassId] = {}
        self._structure = Digraph()
        self._class_reach: Dict[ClassId, Set[ClassId]] = {}
        self._class_coreach: Dict[ClassId, Set[ClassId]] = {}
        self._classes_with_tag: Dict[str, Set[ClassId]] = {}
        self._nodes: frozenset = frozenset()

    # ------------------------------------------------------------------
    # construction helpers for subclasses
    # ------------------------------------------------------------------
    def _initialize(
        self,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        class_of: Dict[NodeId, ClassId],
        table_prefix: str,
        persist: bool = True,
    ) -> None:
        self._graph = graph
        self._tags = dict(tags)
        self._class_of = class_of
        self._nodes = frozenset(graph.nodes())
        for cls in set(class_of.values()):
            self._structure.add_node(cls)
        for u, v in graph.edges():
            self._structure.add_edge(class_of[u], class_of[v])
        self._compute_class_reachability()
        for node, cls in class_of.items():
            self._classes_with_tag.setdefault(self._tags[node], set()).add(cls)
        if persist:
            self._persist(table_prefix)

    @classmethod
    def load(cls, backend: StorageBackend, table_prefix: str) -> "SummaryIndex":
        """Reconstruct a persisted summary index from its three tables.

        Unlike PPO/HOPI loading, no external tag mapping is needed: the
        extent table stores each node's tag alongside its class.
        """
        index = cls(backend)
        class_of: Dict[NodeId, ClassId] = {}
        tags: Dict[NodeId, str] = {}
        graph = Digraph()
        for node, klass, tag in backend.table(f"{table_prefix}_extents").scan():
            class_of[node] = klass
            tags[node] = tag
            graph.add_node(node)
        for src, dst in backend.table(f"{table_prefix}_edges").scan():
            graph.add_edge(src, dst)
        index._initialize(graph, tags, class_of, table_prefix, persist=False)
        return index

    def _compute_class_reachability(self) -> None:
        """Reflexive-transitive reachability on the (small) structure graph."""
        for cls in self._structure:
            reach = {cls}
            queue = deque([cls])
            while queue:
                current = queue.popleft()
                for succ in self._structure.successors(current):
                    if succ not in reach:
                        reach.add(succ)
                        queue.append(succ)
            self._class_reach[cls] = reach
        for cls in self._structure:
            self._class_coreach[cls] = {
                other for other, reach in self._class_reach.items() if cls in reach
            }

    def _persist(self, prefix: str) -> None:
        extents = self._backend.create_table(_extent_schema(prefix))
        extents.insert_many(
            (node, self._class_of[node], self._tags[node])
            for node in sorted(self._class_of)
        )
        structure = self._backend.create_table(_structure_schema(prefix))
        structure.insert_many(sorted(self._structure.edges()))
        edges = self._backend.create_table(_edges_schema(prefix))
        edges.insert_many(sorted(self._graph.edges()))

    # ------------------------------------------------------------------
    # PathIndex interface via structure-pruned BFS
    # ------------------------------------------------------------------
    def _node_set(self) -> frozenset:
        return self._nodes

    @property
    def class_count(self) -> int:
        return self._structure.node_count

    def class_of(self, node: NodeId) -> ClassId:
        return self._class_of[node]

    def reachable(self, source: NodeId, target: NodeId) -> bool:
        return self.distance(source, target) is not None

    def distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        if source not in self._nodes or target not in self._nodes:
            return None
        target_class = self._class_of[target]
        if target_class not in self._class_reach[self._class_of[source]]:
            return None  # index-only negative answer: the summary refutes it
        dist = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            if node == target:
                return dist[node]
            for succ in self._graph.successors(node):
                if succ in dist:
                    continue
                if target_class not in self._class_reach[self._class_of[succ]]:
                    continue  # branch cannot lead to the target's class
                dist[succ] = dist[node] + 1
                queue.append(succ)
        return None

    def _guided_bfs(
        self,
        source: NodeId,
        tag: Optional[str],
        forward: bool,
    ) -> List[ScoredNode]:
        if source not in self._nodes:
            return []
        if tag is None:
            goal_classes: Optional[Set[ClassId]] = None
        else:
            goal_classes = self._classes_with_tag.get(tag, set())
            if not goal_classes:
                return []
        reach = self._class_reach if forward else self._class_coreach

        def viable(node: NodeId) -> bool:
            if goal_classes is None:
                return True
            return not reach[self._class_of[node]].isdisjoint(goal_classes)

        results: List[ScoredNode] = []
        if not viable(source):
            return []
        dist = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            if tag is None or self._tags[node] == tag:
                results.append((node, dist[node]))
            neighbours = (
                self._graph.successors(node)
                if forward
                else self._graph.predecessors(node)
            )
            for nxt in sorted(neighbours):
                if nxt not in dist and viable(nxt):
                    dist[nxt] = dist[node] + 1
                    queue.append(nxt)
        return sort_scored(results)

    def find_descendants_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        return self._guided_bfs(source, tag, forward=True)

    def find_ancestors_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        return self._guided_bfs(source, tag, forward=False)
