"""Index Fabric: a trie over designated label paths (Cooper et al., VLDB 2001).

Section 2.2 lists the Index Fabric among the path indexes FliX can reuse:
it encodes every root-to-element label path as a string key and stores the
keys in a (Patricia-style) trie, giving exact-match and prefix lookups in
time proportional to the key length — excellent for short, wildcard-free
paths, useless for ``//``-heavy loads, which is precisely the trade-off the
paper's rule of thumb describes.

This implementation keeps the trie explicit (one node per label step with
child maps and path-compression of unary chains into edge labels), exposes

* :meth:`FabricIndex.match_label_path` — exact "designated path" lookup,
* :meth:`FabricIndex.paths_with_prefix` — prefix enumeration,
* :meth:`FabricIndex.path_count` / :meth:`FabricIndex.trie_node_count`,

and inherits the structure-guided BFS evaluation of
:class:`~repro.indexes._summary.SummaryIndex` for the generic
:class:`~repro.indexes.base.PathIndex` operations, like the other summary
indexes.  Cyclic element graphs have unbounded label-path sets, so — like
the DataGuide — construction is guarded by a budget and refuses pathological
inputs instead of diverging.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graph.digraph import Digraph
from repro.indexes._summary import ClassId, SummaryIndex
from repro.indexes.base import IndexNotApplicableError, NodeId
from repro.storage.table import Column, StorageBackend, TableSchema

_KEYS_SCHEMA = TableSchema(
    name="fabric_keys",
    columns=(
        Column("key", "str"),
        Column("node", "int"),
    ),
    indexed=("key",),
)

#: separator between labels in encoded keys (not a valid XML name char)
KEY_SEPARATOR = "/"


class _TrieNode:
    """One trie node; unary chains are compressed into ``edge`` labels."""

    __slots__ = ("children", "nodes")

    def __init__(self) -> None:
        # edge label (one or more KEY_SEPARATOR-joined steps) -> child
        self.children: Dict[str, "_TrieNode"] = {}
        # elements whose full path ends exactly here
        self.nodes: Set[NodeId] = set()


class FabricIndex(SummaryIndex):
    """Trie over root label paths, plus inherited guided-BFS evaluation."""

    strategy_name = "fabric"

    DEFAULT_MAX_KEYS = 200_000

    def __init__(self, backend: StorageBackend) -> None:
        super().__init__(backend)
        self._root = _TrieNode()
        self._key_count = 0
        self._trie_nodes = 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
    ) -> "FabricIndex":
        return cls.build_bounded(graph, tags, backend, cls.DEFAULT_MAX_KEYS)

    @classmethod
    def build_bounded(
        cls,
        graph: Digraph,
        tags: Mapping[NodeId, str],
        backend: StorageBackend,
        max_keys: int,
    ) -> "FabricIndex":
        index = cls(backend)
        rows: List[Tuple[str, int]] = []
        # Depth-first enumeration of root label paths.  On DAGs a node can
        # carry several paths (one per incoming route); cycles would make
        # the set infinite, so a visited-on-stack check rejects them.
        roots = sorted(n for n in graph.nodes() if graph.in_degree(n) == 0)
        if graph.node_count and not roots:
            raise IndexNotApplicableError(
                "Index Fabric needs rooted data; this graph is fully cyclic"
            )
        for root in roots:
            stack: List[Tuple[NodeId, Tuple[str, ...], frozenset]] = [
                (root, (tags[root],), frozenset({root}))
            ]
            while stack:
                node, path, on_path = stack.pop()
                index._insert(path, node)
                rows.append((KEY_SEPARATOR.join(path), node))
                if index._key_count > max_keys:
                    raise IndexNotApplicableError(
                        f"Index Fabric exceeds {max_keys} keys on this graph"
                    )
                for succ in sorted(graph.successors(node)):
                    if succ in on_path:
                        raise IndexNotApplicableError(
                            "Index Fabric cannot encode cyclic label paths"
                        )
                    stack.append(
                        (succ, path + (tags[succ],), on_path | {succ})
                    )
        class_of = _label_partition(graph, tags)
        index._initialize(graph, tags, class_of, "fabric")
        table = backend.create_table(_KEYS_SCHEMA)
        table.insert_many(sorted(rows))
        return index

    def _insert(self, path: Sequence[str], node: NodeId) -> None:
        current = self._root
        position = 0
        while position < len(path):
            label = path[position]
            child = current.children.get(label)
            if child is None:
                child = _TrieNode()
                current.children[label] = child
                self._trie_nodes += 1
            current = child
            position += 1
        if not current.nodes:
            self._key_count += 1
        current.nodes.add(node)

    # ------------------------------------------------------------------
    # fabric lookups
    # ------------------------------------------------------------------
    def _walk(self, path: Sequence[str]) -> Optional[_TrieNode]:
        current = self._root
        for label in path:
            current = current.children.get(label)
            if current is None:
                return None
        return current

    def match_label_path(self, path: Sequence[str]) -> Set[NodeId]:
        """Elements whose root label path is exactly ``path``."""
        if not path:
            return set()
        node = self._walk(path)
        return set(node.nodes) if node is not None else set()

    def paths_with_prefix(self, prefix: Sequence[str]) -> List[Tuple[str, ...]]:
        """All stored label paths extending ``prefix`` (inclusive), sorted."""
        start = self._walk(prefix)
        if start is None:
            return []
        found: List[Tuple[str, ...]] = []
        stack: List[Tuple[_TrieNode, Tuple[str, ...]]] = [(start, tuple(prefix))]
        while stack:
            trie_node, path = stack.pop()
            if trie_node.nodes and path:
                found.append(path)
            for label, child in trie_node.children.items():
                stack.append((child, path + (label,)))
        return sorted(found)

    def subtree_elements(self, prefix: Sequence[str]) -> Set[NodeId]:
        """Every element whose path extends ``prefix`` (inclusive)."""
        start = self._walk(prefix)
        if start is None:
            return set()
        elements: Set[NodeId] = set()
        stack = [start]
        while stack:
            trie_node = stack.pop()
            elements |= trie_node.nodes
            stack.extend(trie_node.children.values())
        return elements

    @property
    def path_count(self) -> int:
        """Number of distinct label paths stored."""
        return self._key_count

    @property
    def trie_node_count(self) -> int:
        return self._trie_nodes


def _label_partition(
    graph: Digraph,
    tags: Mapping[NodeId, str],
) -> Dict[NodeId, ClassId]:
    class_ids: Dict[str, ClassId] = {}
    class_of: Dict[NodeId, ClassId] = {}
    for node in sorted(graph.nodes()):
        tag = tags[node]
        if tag not in class_ids:
            class_ids[tag] = len(class_ids)
        class_of[node] = class_ids[tag]
    return class_of
