"""Registry of Path Indexing Strategies.

FliX is "extensible and can be tailored to the needs of the application"
(section 1.2): new strategies register themselves here, and the Indexing
Strategy Selector picks among whatever is registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.graph.digraph import Digraph
from repro.indexes.apex import ApexIndex
from repro.indexes.base import NodeId, PathIndex
from repro.indexes.dataguide import DataGuideIndex
from repro.indexes.fabric import FabricIndex
from repro.indexes.hopi import HopiIndex
from repro.indexes.kindex import ForwardBackwardIndex, KBisimulationIndex
from repro.indexes.ppo import PpoIndex
from repro.indexes.transitive import TransitiveClosureIndex
from repro.storage.table import StorageBackend

_REGISTRY: Dict[str, Type[PathIndex]] = {}


def register_strategy(index_class: Type[PathIndex]) -> None:
    """Register an index class under its ``strategy_name``."""
    name = index_class.strategy_name
    if not name or name == "abstract":
        raise ValueError("index class must define a concrete strategy_name")
    _REGISTRY[name] = index_class


def available_strategies() -> List[str]:
    """All registered strategy names, sorted."""
    return sorted(_REGISTRY)


def strategy_class(name: str) -> Type[PathIndex]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        ) from None


def build_index(
    name: str,
    graph: Digraph,
    tags: Mapping[NodeId, str],
    backend: StorageBackend,
) -> PathIndex:
    """Build an index of the named strategy over ``graph``."""
    return strategy_class(name).build(graph, tags, backend)


@dataclass(frozen=True)
class IndexBuildRequest:
    """A picklable description of one index build.

    This is the hand-off unit of the parallel Index Builder: it names the
    strategy instead of carrying the class (worker processes resolve it
    against their own registry after import) and describes the graph with
    primitives, so the request crosses process boundaries cheaply.  When
    the caller already holds a built :class:`Digraph` — the IB builds one
    for strategy selection anyway — ``nodes``/``edges`` may stay empty and
    the graph is passed to :func:`execute_build_request` directly.
    """

    strategy: str
    tags: Mapping[NodeId, str]
    nodes: Tuple[NodeId, ...] = ()
    edges: Tuple[Tuple[NodeId, NodeId], ...] = ()

    def to_graph(self) -> Digraph:
        graph = Digraph()
        for node in self.nodes:
            graph.add_node(node)
        for u, v in self.edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_graph(
        cls,
        strategy: str,
        graph: Digraph,
        tags: Mapping[NodeId, str],
    ) -> "IndexBuildRequest":
        return cls(
            strategy=strategy,
            tags=dict(tags),
            nodes=tuple(graph),
            edges=tuple(graph.edges()),
        )


def execute_build_request(
    request: IndexBuildRequest,
    backend_factory: Callable[[], StorageBackend],
    graph: Optional[Digraph] = None,
    obs=None,
) -> PathIndex:
    """Run one :class:`IndexBuildRequest` against a fresh backend.

    ``graph`` short-circuits the rebuild from primitives when the caller
    already materialized it (the IB's workers do, for strategy selection).
    ``obs`` (a ``repro.obs.Observability``) attaches storage instruments
    to the fresh backend so the build's table writes are counted; only
    useful in-process — a process-pool worker's registry dies with it.
    """
    if graph is None:
        graph = request.to_graph()
    backend = backend_factory()
    if obs is not None and obs.enabled:
        backend.attach_observer(obs.storage_instruments(backend))
    return strategy_class(request.strategy).build(graph, request.tags, backend)


for _cls in (
    PpoIndex,
    HopiIndex,
    ApexIndex,
    KBisimulationIndex,
    ForwardBackwardIndex,
    DataGuideIndex,
    FabricIndex,
    TransitiveClosureIndex,
):
    register_strategy(_cls)
