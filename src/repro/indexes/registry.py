"""Registry of Path Indexing Strategies.

FliX is "extensible and can be tailored to the needs of the application"
(section 1.2): new strategies register themselves here, and the Indexing
Strategy Selector picks among whatever is registered.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Type

from repro.graph.digraph import Digraph
from repro.indexes.apex import ApexIndex
from repro.indexes.base import NodeId, PathIndex
from repro.indexes.dataguide import DataGuideIndex
from repro.indexes.fabric import FabricIndex
from repro.indexes.hopi import HopiIndex
from repro.indexes.kindex import ForwardBackwardIndex, KBisimulationIndex
from repro.indexes.ppo import PpoIndex
from repro.indexes.transitive import TransitiveClosureIndex
from repro.storage.table import StorageBackend

_REGISTRY: Dict[str, Type[PathIndex]] = {}


def register_strategy(index_class: Type[PathIndex]) -> None:
    """Register an index class under its ``strategy_name``."""
    name = index_class.strategy_name
    if not name or name == "abstract":
        raise ValueError("index class must define a concrete strategy_name")
    _REGISTRY[name] = index_class


def available_strategies() -> List[str]:
    """All registered strategy names, sorted."""
    return sorted(_REGISTRY)


def strategy_class(name: str) -> Type[PathIndex]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        ) from None


def build_index(
    name: str,
    graph: Digraph,
    tags: Mapping[NodeId, str],
    backend: StorageBackend,
) -> PathIndex:
    """Build an index of the named strategy over ``graph``."""
    return strategy_class(name).build(graph, tags, backend)


for _cls in (
    PpoIndex,
    HopiIndex,
    ApexIndex,
    KBisimulationIndex,
    ForwardBackwardIndex,
    DataGuideIndex,
    FabricIndex,
    TransitiveClosureIndex,
):
    register_strategy(_cls)
