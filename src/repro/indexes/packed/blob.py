"""The FLXPACK blob: a fixed-format, checksummed, mmap-able column store.

One blob holds the *complete* hot-path state of one packed index as flat
``array('q')`` columns (little-endian int64), so a restarted worker can
``mmap`` the file and serve probes without deserializing anything::

    offset  size  field
    0       8     magic  b"FLXPACK1"
    8       4     format version (u32 LE, currently 1)
    12      4     reserved (zero)
    16      32    SHA-256 over the payload (everything from offset 64)
    48      8     payload length in bytes (u64 LE)
    56      8     directory length in bytes (u64 LE)
    64      ...   payload: directory, zero padding to an 8-byte
                  boundary, then the raw column bytes (each 8-byte
                  aligned, offsets relative to the padded directory end)

The directory itself is fixed-format binary, so cold attach parses no
JSON at all::

    u32   column count
    u32   metadata (JSON) length in bytes
    16s   source strategy name (NUL-padded ASCII)
    then per column, sorted by name (48 bytes each):
          24s name, u64 relative offset, u64 byte length, u64 count
    then the metadata JSON (tag tables, class tables — free-form)

Attaching verifies the magic, version, declared lengths, and payload
checksum — a truncated or bit-flipped blob raises
:class:`repro.storage.errors.CorruptionError` before any query can read
garbage.  Everything else is lazy: the metadata JSON is parsed on first
``.meta`` access (index promotion time, not attach time), and each
column becomes a zero-copy ``memoryview(...).cast('q')`` on first use.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import sys
from array import array
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.storage.errors import CorruptionError

MAGIC = b"FLXPACK1"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<8sII32sQQ")  # magic, version, reserved, sha, payload, dirlen
HEADER_BYTES = _HEADER.size  # 64
_DIR_HEADER = struct.Struct("<II16s")  # column count, meta length, strategy
_COL_RECORD = struct.Struct("<24sQQQ")  # name, offset, length, count
_ALIGN = 8

#: the only column typecode currently written (int64)
COLUMN_TYPECODE = "q"


def _pad(n: int) -> int:
    return (-n) % _ALIGN


#: decoded column/strategy names, keyed by their raw padded bytes — the
#: vocabulary is tiny and shared by every blob in a save, so attach skips
#: the rstrip+decode after the first file (bounded against garbage names)
_NAME_CACHE: Dict[bytes, str] = {}
_NAME_CACHE_CAP = 4096


def _decode_name(raw: bytes, source: str, what: str) -> str:
    name = _NAME_CACHE.get(raw)
    if name is None:
        try:
            name = raw.rstrip(b"\x00").decode("ascii")
        except UnicodeDecodeError:
            raise CorruptionError(
                f"packed blob {source}: undecodable {what}"
            ) from None
        if len(_NAME_CACHE) < _NAME_CACHE_CAP:
            _NAME_CACHE[raw] = name
    return name


class BlobWriter:
    """Accumulates columns and serializes one FLXPACK blob."""

    def __init__(self, strategy: str, meta: Optional[dict] = None) -> None:
        if len(strategy.encode("ascii")) > 16:
            raise ValueError(f"strategy name {strategy!r} exceeds 16 bytes")
        self.strategy = strategy
        self.meta = dict(meta or {})
        self._columns: Dict[str, bytes] = {}
        self._counts: Dict[str, int] = {}

    def add_column(self, name: str, values: Iterable[int]) -> None:
        if name in self._columns:
            raise ValueError(f"duplicate column {name!r}")
        if len(name.encode("ascii")) > 24:
            raise ValueError(f"column name {name!r} exceeds 24 bytes")
        data = array(COLUMN_TYPECODE, values)
        if sys.byteorder == "big":  # pragma: no cover - LE spec on disk
            data = array(COLUMN_TYPECODE, data)
            data.byteswap()
        self._columns[name] = data.tobytes()
        self._counts[name] = len(data)

    def to_bytes(self) -> bytes:
        # Column offsets are stored *relative to the column region* (the
        # padded directory end), so they do not depend on the directory
        # length.  Records are sorted by name and the metadata JSON is
        # dumped with sorted keys: equal content packs to equal bytes.
        meta_bytes = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        records = []
        cursor = 0
        for name in sorted(self._columns):
            blob = self._columns[name]
            records.append(
                _COL_RECORD.pack(
                    name.encode("ascii"), cursor, len(blob), self._counts[name]
                )
            )
            cursor += len(blob) + _pad(len(blob))
        dir_bytes = (
            _DIR_HEADER.pack(
                len(records),
                len(meta_bytes),
                self.strategy.encode("ascii"),
            )
            + b"".join(records)
            + meta_bytes
        )
        dir_padding = _pad(len(dir_bytes))

        parts = [dir_bytes, b"\x00" * dir_padding]
        for name in sorted(self._columns):
            blob = self._columns[name]
            parts.append(blob)
            parts.append(b"\x00" * _pad(len(blob)))
        payload = b"".join(parts)
        header = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            0,
            hashlib.sha256(payload).digest(),
            len(payload),
            len(dir_bytes),
        )
        return header + payload

    def write(self, path) -> Path:
        path = Path(path)
        path.write_bytes(self.to_bytes())
        return path


class PackedBlob:
    """An attached FLXPACK blob: verified header + lazy zero-copy columns."""

    def __init__(
        self,
        buffer,
        *,
        source: str = "<bytes>",
        keep_open=None,
    ) -> None:
        self._buffer = buffer
        self._source = source
        self._keep_open = keep_open  # the mmap object for file attaches
        self._views: Dict[str, memoryview] = {}
        self._lists: Dict[str, list] = {}
        size = len(buffer)
        if size < HEADER_BYTES:
            raise CorruptionError(
                f"packed blob {source}: {size} bytes is shorter than the "
                f"{HEADER_BYTES}-byte header (truncated?)"
            )
        magic, version, _reserved, digest, payload_len, dir_len = _HEADER.unpack_from(
            buffer, 0
        )
        if magic != MAGIC:
            raise CorruptionError(
                f"packed blob {source}: bad magic {magic!r} (not a FLXPACK file)"
            )
        if version != FORMAT_VERSION:
            raise CorruptionError(
                f"packed blob {source}: unsupported format version {version}"
            )
        if size != HEADER_BYTES + payload_len:
            raise CorruptionError(
                f"packed blob {source}: header declares {payload_len} payload "
                f"bytes but the file holds {size - HEADER_BYTES} (truncated?)"
            )
        payload = memoryview(buffer)[HEADER_BYTES:]
        try:
            checksum_ok = hashlib.sha256(payload).digest() == digest
        finally:
            # released eagerly: a view left in a raising frame would keep
            # the caller from closing the mmap it exports
            payload.release()
        if not checksum_ok:
            raise CorruptionError(
                f"packed blob {source}: payload SHA-256 mismatch (bit flip "
                "or partial write) — repair the save (repro repair)"
            )
        if dir_len > payload_len or dir_len < _DIR_HEADER.size:
            raise CorruptionError(
                f"packed blob {source}: directory length {dir_len} does not "
                f"fit the payload ({payload_len} bytes)"
            )
        col_count, meta_len, strategy_raw = _DIR_HEADER.unpack_from(
            buffer, HEADER_BYTES
        )
        records_len = col_count * _COL_RECORD.size
        if _DIR_HEADER.size + records_len + meta_len != dir_len:
            raise CorruptionError(
                f"packed blob {source}: directory declares {col_count} "
                f"columns and {meta_len} metadata bytes but is {dir_len} "
                "bytes long"
            )
        self.strategy: str = _decode_name(strategy_raw, source, "strategy name")
        self._column_base = HEADER_BYTES + dir_len + _pad(dir_len)
        # column records: (relative offset, byte length, element count)
        self._directory: Dict[str, Tuple[int, int, int]] = {}
        records_start = HEADER_BYTES + _DIR_HEADER.size
        for name_raw, offset, length, count in _COL_RECORD.iter_unpack(
            bytes(buffer[records_start : records_start + records_len])
        ):
            name = _decode_name(name_raw, source, "column name")
            if self._column_base + offset + length > size:
                raise CorruptionError(
                    f"packed blob {source}: column {name!r} extends past "
                    "the end of the file"
                )
            self._directory[name] = (offset, length, count)
        # metadata JSON (tag tables etc.) is parsed on first .meta access
        self._meta_start = records_start + records_len
        self._meta_len = meta_len
        self._meta: Optional[dict] = None

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, path) -> "PackedBlob":
        """``mmap`` a blob file read-only and verify it.

        The map is established lazily by the OS page cache: attach cost is
        one header parse plus one sequential checksum pass, independent of
        how many columns the queries will ever touch.
        """
        path_str = os.fspath(path)
        try:
            fd = os.open(path_str, os.O_RDONLY)
        except OSError as exc:
            raise CorruptionError(
                f"packed blob {path_str}: unreadable: {exc}"
            ) from None
        try:
            mapped = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:  # zero-length or unmappable
            raise CorruptionError(
                f"packed blob {path_str}: cannot mmap: {exc} (truncated?)"
            ) from None
        finally:
            # the mapping holds its own reference to the file
            os.close(fd)
        try:
            return cls(mapped, source=path_str, keep_open=mapped)
        except Exception:
            mapped.close()
            raise

    @classmethod
    def from_bytes(cls, data: bytes, source: str = "<bytes>") -> "PackedBlob":
        return cls(data, source=source)

    def close(self) -> None:
        self._views.clear()
        self._lists.clear()
        if self._keep_open is not None:
            mapped = self._keep_open
            self._keep_open = None
            self._buffer = b""
            mapped.close()

    # ------------------------------------------------------------------
    # lazy access (metadata and columns)
    # ------------------------------------------------------------------
    @property
    def meta(self) -> dict:
        """The free-form metadata dict, JSON-parsed on first access."""
        meta = self._meta
        if meta is None:
            raw = self._buffer[
                self._meta_start : self._meta_start + self._meta_len
            ]
            try:
                meta = json.loads(raw) if self._meta_len else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CorruptionError(
                    f"packed blob {self._source}: undecodable metadata: {exc}"
                ) from None
            if not isinstance(meta, dict):
                raise CorruptionError(
                    f"packed blob {self._source}: metadata is not an object"
                )
            self._meta = meta
        return meta

    def column(self, name: str):
        """The named column as an int64 ``memoryview`` (zero-copy)."""
        view = self._views.get(name)
        if view is not None:
            return view
        entry = self._directory.get(name)
        if entry is None:
            raise CorruptionError(
                f"packed blob {self._source}: missing column {name!r}"
            )
        offset, length, _count = entry
        start = self._column_base + offset
        raw = memoryview(self._buffer)[start : start + length]
        if sys.byteorder == "big":  # pragma: no cover - LE spec on disk
            data = array(COLUMN_TYPECODE, raw.tobytes())
            data.byteswap()
            view = memoryview(data)
        else:
            view = raw.cast(COLUMN_TYPECODE)
        self._views[name] = view
        return view

    def column_list(self, name: str) -> list:
        """The named column *promoted* to a Python list (cached).

        Point probes in CPython are dominated by per-element boxing, and
        ``memoryview.__getitem__`` boxes on every access while a list
        holds already-boxed ints.  Hot columns therefore get promoted
        once, on first probe — the blob stays the source of truth (the
        list is a pure cache) and cold attach still touches nothing.
        """
        promoted = self._lists.get(name)
        if promoted is None:
            promoted = self.column(name).tolist()
            self._lists[name] = promoted
        return promoted

    def raw_fingerprint(self) -> str:
        """SHA-256 hex digest of the entire blob, header included.

        This is the integrity fingerprint the save manifest records for
        ``.pack`` files (the blob *is* its serialized form), computed
        straight off the attached buffer — no second file read.
        """
        return hashlib.sha256(self._buffer).hexdigest()

    def has_column(self, name: str) -> bool:
        return name in self._directory

    def column_names(self) -> Sequence[str]:
        return sorted(self._directory)

    def size_bytes(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PackedBlob strategy={self.strategy!r} columns="
            f"{len(self._directory)} bytes={self.size_bytes()} "
            f"from {self._source}>"
        )
