"""``repro.indexes.packed`` — flat columnar hot-path index layouts.

The object-graph indexes (:mod:`repro.indexes.ppo`, ``hopi``, the summary
family) stay the *build-time* representation; this package compiles a
built index into an immutable FLXPACK blob (:mod:`.blob`) of int64
columns and serves every :class:`repro.indexes.base.PathIndex` probe
straight off those columns — byte-identically to the object layout, with
the same backend fingerprint (see :mod:`.backend`).

Entry points:

* :func:`pack_index` — blob bytes for a built index (``None`` when the
  strategy has no packed form, e.g. ``transitive_closure``);
* :func:`packed_clone` — an in-memory packed twin of a built index,
  sharing its storage backend (what ``Flix.pack()`` swaps in);
* :func:`attach_packed_file` / :func:`attach_packed_blob` — mmap (or
  wrap) a blob and return the matching packed index, for millisecond
  cold starts out of a save directory.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.indexes.base import PathIndex
from repro.indexes.packed.backend import PackedBackend
from repro.indexes.packed.blob import (
    FORMAT_VERSION,
    HEADER_BYTES,
    MAGIC,
    BlobWriter,
    PackedBlob,
)
from repro.indexes.packed.hopi import PackedHopiIndex, pack_hopi
from repro.indexes.packed.ppo import PackedPpoIndex, pack_ppo
from repro.indexes.packed.summary import (
    SUMMARY_STRATEGIES,
    PackedSummaryIndex,
    pack_summary,
)
from repro.storage.errors import CorruptionError
from repro.storage.table import StorageBackend

#: strategies with a packed form; others stay object-backed ("strategy
#: permitting" — the fallback ladder's transitive_closure metas do)
PACKABLE_STRATEGIES = frozenset(("ppo", "hopi") + SUMMARY_STRATEGIES)

_PACKED_CLASSES = (PackedPpoIndex, PackedHopiIndex, PackedSummaryIndex)


def is_packed(index) -> bool:
    """Whether ``index`` is already an attached packed index."""
    return isinstance(index, _PACKED_CLASSES)


def pack_index(index: PathIndex) -> Optional[bytes]:
    """Blob bytes for a built index; ``None`` if the strategy is unpackable."""
    from repro.indexes._summary import SummaryIndex
    from repro.indexes.hopi import HopiIndex
    from repro.indexes.ppo import PpoIndex

    if is_packed(index):
        return index.blob._buffer if isinstance(index.blob._buffer, bytes) else bytes(
            index.blob._buffer
        )
    if isinstance(index, PpoIndex):
        return pack_ppo(index)
    if isinstance(index, HopiIndex):
        return pack_hopi(index)
    if isinstance(index, SummaryIndex):
        return pack_summary(index)
    return None


def _index_for(blob: PackedBlob, backend: PackedBackend) -> PathIndex:
    strategy = blob.strategy
    if strategy == "ppo":
        return PackedPpoIndex(backend, blob)
    if strategy == "hopi":
        return PackedHopiIndex(backend, blob)
    if strategy in SUMMARY_STRATEGIES:
        return PackedSummaryIndex(backend, blob)
    raise CorruptionError(
        f"packed blob names unknown strategy {strategy!r}"
    )


def attach_packed_blob(
    blob: PackedBlob,
    *,
    source: Optional[StorageBackend] = None,
    source_factory: Optional[Callable[[], StorageBackend]] = None,
    fingerprint: Optional[str] = None,
) -> PathIndex:
    """The packed index served by an already-attached blob."""
    backend = PackedBackend(
        blob,
        source=source,
        source_factory=source_factory,
        fingerprint=fingerprint,
    )
    return _index_for(blob, backend)


def attach_packed_file(
    path,
    *,
    source_factory: Optional[Callable[[], StorageBackend]] = None,
    fingerprint: Optional[str] = None,
) -> PathIndex:
    """mmap a blob file (verifying its checksum) and attach the index.

    Raises :class:`repro.storage.errors.CorruptionError` when the file is
    truncated, bit-flipped, or otherwise not a valid FLXPACK blob.
    """
    blob = PackedBlob.attach(path)
    return attach_packed_blob(
        blob, source_factory=source_factory, fingerprint=fingerprint
    )


def packed_clone(index: Optional[PathIndex]) -> Optional[PathIndex]:
    """An in-memory packed twin of a built index (``None`` if unpackable).

    The clone shares the original's storage backend, so persistence and
    fingerprinting see exactly the tables the object index persisted.
    """
    if index is None or is_packed(index):
        return None
    data = pack_index(index)
    if data is None:
        return None
    blob = PackedBlob.from_bytes(data, source=f"<packed {index.strategy_name}>")
    return attach_packed_blob(blob, source=index.backend)


__all__ = [
    "PACKABLE_STRATEGIES",
    "FORMAT_VERSION",
    "HEADER_BYTES",
    "MAGIC",
    "BlobWriter",
    "CorruptionError",
    "PackedBackend",
    "PackedBlob",
    "PackedHopiIndex",
    "PackedPpoIndex",
    "PackedSummaryIndex",
    "attach_packed_blob",
    "attach_packed_file",
    "is_packed",
    "pack_index",
    "packed_clone",
]
