"""Array-backed HOPI: per-node sorted hub/distance runs in the blob.

The 2-hop labels become four CSR-style column groups:

* ``out_offsets``/``out_hubs``/``out_dists`` — ``L_out`` per node, hubs
  sorted ascending within each node's run (``in_*`` analogously);
* ``hub_desc_*``/``hub_anc_*`` — the inverted lists (hub → labelled
  nodes) the enumeration queries walk, nodes sorted within each hub run.

That sorted-run form is what persists and what cold attach maps; on the
first probe the runs are promoted to per-node hub hash maps (plus a
composite-int lane for singleton ``L_out`` labels, the dominant shape on
meta-document graphs), because in CPython a C-level dict probe beats an
interpreted merge over column slices.  A probe is then Cohen et al.'s
2-hop intersection — smaller side iterated against the larger — with
``min`` over shared hubs, which is order-independent, so results are
identical to the object dict implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.indexes.base import NodeId, PathIndex, ScoredNode, sort_scored
from repro.indexes.packed.blob import BlobWriter, PackedBlob


def pack_hopi(index) -> bytes:
    """Serialize a built :class:`~repro.indexes.hopi.HopiIndex` to blob bytes."""
    nodes = sorted(index._nodes)
    tags = sorted(set(index._tags[node] for node in nodes))
    tag_index = {tag: i for i, tag in enumerate(tags)}
    tag_ids = [tag_index[index._tags[node]] for node in nodes]

    def label_csr(labels):
        offsets = [0]
        hubs: List[int] = []
        dists: List[int] = []
        for node in nodes:
            for hub, dist in sorted(labels.get(node, {}).items()):
                hubs.append(hub)
                dists.append(dist)
            offsets.append(len(hubs))
        return offsets, hubs, dists

    out_off, out_hubs, out_dists = label_csr(index._out)
    in_off, in_hubs, in_dists = label_csr(index._in)

    hubs_sorted = sorted(
        set(index._hub_descendants) | set(index._hub_ancestors)
    )

    def inverted_csr(inverted):
        offsets = [0]
        members: List[int] = []
        dists: List[int] = []
        for hub in hubs_sorted:
            for node, dist in sorted(inverted.get(hub, {}).items()):
                members.append(node)
                dists.append(dist)
            offsets.append(len(members))
        return offsets, members, dists

    hd_off, hd_nodes, hd_dists = inverted_csr(index._hub_descendants)
    ha_off, ha_nodes, ha_dists = inverted_csr(index._hub_ancestors)

    writer = BlobWriter("hopi", meta={"tags": tags, "nodes": len(nodes)})
    writer.add_column("nodes", nodes)
    writer.add_column("tag_ids", tag_ids)
    writer.add_column("out_offsets", out_off)
    writer.add_column("out_hubs", out_hubs)
    writer.add_column("out_dists", out_dists)
    writer.add_column("in_offsets", in_off)
    writer.add_column("in_hubs", in_hubs)
    writer.add_column("in_dists", in_dists)
    writer.add_column("hubs", hubs_sorted)
    writer.add_column("hub_desc_offsets", hd_off)
    writer.add_column("hub_desc_nodes", hd_nodes)
    writer.add_column("hub_desc_dists", hd_dists)
    writer.add_column("hub_anc_offsets", ha_off)
    writer.add_column("hub_anc_nodes", ha_nodes)
    writer.add_column("hub_anc_dists", ha_dists)
    return writer.to_bytes()


class PackedHopiIndex(PathIndex):
    """Zero-copy 2-hop probes over an attached FLXPACK blob."""

    strategy_name = "hopi"

    # Pre-promotion placeholders live on the *class*: _hot() rebinds the
    # instance attributes wholesale on first probe (nothing mutates
    # these in place), so attach assigns only the blob reference and
    # cold attach touches no column bytes (and no metadata JSON).
    _tag_index: Optional[Dict[str, int]] = None
    _pos: Optional[Dict[NodeId, int]] = None
    _node_col: List[int] = []
    _tagid_col: List[int] = []
    _out_off: List[int] = []
    _out_hubs: List[int] = []
    _out_dists: List[int] = []
    _in_off: List[int] = []
    _in_hubs: List[int] = []
    _in_dists: List[int] = []
    _hub_col: List[int] = []
    _hd_off: List[int] = []
    _hd_nodes: List[int] = []
    _hd_dists: List[int] = []
    _ha_off: List[int] = []
    _ha_nodes: List[int] = []
    _ha_dists: List[int] = []
    _tag_of: Dict[NodeId, int] = {}
    _hd_maps: Optional[Dict[int, Dict[NodeId, int]]] = None
    _ha_maps: Optional[Dict[int, Dict[NodeId, int]]] = None
    _nodes: Optional[frozenset] = None

    def __init__(self, backend, blob: Optional[PackedBlob] = None) -> None:
        super().__init__(backend)
        self._blob = blob if blob is not None else backend.blob

    @property
    def blob(self) -> PackedBlob:
        return self._blob

    @classmethod
    def build(cls, graph, tags, backend):  # pragma: no cover - build-time is object-graph
        raise NotImplementedError(
            "packed indexes are compiled from a built HopiIndex "
            "(repro.indexes.packed.pack_index), not built from a graph"
        )

    # ------------------------------------------------------------------
    # derived lookups
    # ------------------------------------------------------------------
    def _pos_lookup(self) -> Dict[NodeId, int]:
        pos = self._pos
        if pos is None:
            pos = self._hot()
        return pos

    def _tag_lookup(self) -> Dict[str, int]:
        # tag names live in the blob's metadata JSON, parsed on first
        # tag-axis query, never at attach time
        tag_index = self._tag_index
        if tag_index is None:
            tag_index = self._tag_index = {
                tag: i for i, tag in enumerate(self._blob.meta["tags"])
            }
        return tag_index

    def _hot(self) -> Dict[NodeId, int]:
        """First-probe promotion: columns → lists, point probes → closures.

        2-hop labels over meta-document graphs are overwhelmingly
        singletons (one hub covers the node), so besides the per-node
        hub maps the promotion extracts a *singleton lane*: node → the
        lone ``(dist, hub)`` packed into one int.  A probe from a
        singleton label is three dict operations and no loop; fatter
        labels intersect their hub maps smaller-into-larger.
        """
        blob = self._blob
        node_col = self._node_col = blob.column_list("nodes")
        tagid_col = self._tagid_col = blob.column_list("tag_ids")
        self._tag_of = dict(zip(node_col, tagid_col))
        out_off = self._out_off = blob.column_list("out_offsets")
        out_hubs = self._out_hubs = blob.column_list("out_hubs")
        out_dists = self._out_dists = blob.column_list("out_dists")
        in_off = self._in_off = blob.column_list("in_offsets")
        in_hubs = self._in_hubs = blob.column_list("in_hubs")
        in_dists = self._in_dists = blob.column_list("in_dists")
        self._hub_col = blob.column_list("hubs")
        self._hd_off = blob.column_list("hub_desc_offsets")
        self._hd_nodes = blob.column_list("hub_desc_nodes")
        self._hd_dists = blob.column_list("hub_desc_dists")
        self._ha_off = blob.column_list("hub_anc_offsets")
        self._ha_nodes = blob.column_list("hub_anc_nodes")
        self._ha_dists = blob.column_list("hub_anc_dists")
        pos = self._pos = {node: i for i, node in enumerate(node_col)}
        pos_get = pos.get

        # Probe accelerators, all derived from the sorted runs:
        #
        # * ``out_maps``/``in_maps`` — node → {hub: dist}, the label as a
        #   hash map so the smaller side iterates at C speed into the
        #   larger (the object probe's shape, minus its per-call
        #   attribute and method loads);
        # * ``out_single`` — node → ``dist << 40 | hub`` for singleton
        #   ``L_out`` labels (the overwhelmingly common shape), making
        #   the frequent probe three dict operations with no loop.
        #
        # The composite singleton lane needs ids in [0, 2**40); other id
        # ranges simply skip that lane — the hub maps handle any ints.
        shiftable = not node_col or (
            node_col[0] >= 0 and node_col[-1] < (1 << 40)
        )
        mask = (1 << 40) - 1

        def lane_maps(off, hubs, dists):
            single: Dict[NodeId, int] = {}
            maps: Dict[NodeId, Dict[int, int]] = {}
            for i in range(len(off) - 1):
                a0 = off[i]
                a1 = off[i + 1]
                node = node_col[i]
                if shiftable and a1 - a0 == 1:
                    single[node] = dists[a0] << 40 | hubs[a0]
                entry = maps[node] = {}
                for k in range(a0, a1):
                    entry[hubs[k]] = dists[k]
            return single.get, maps.get

        out_single_get, out_maps_get = lane_maps(out_off, out_hubs, out_dists)
        _in_single_get, in_maps_get = lane_maps(in_off, in_hubs, in_dists)

        def distance(source: NodeId, target: NodeId) -> Optional[int]:
            entry = out_single_get(source)
            if entry is not None:
                inn = in_maps_get(target)
                if inn is None:
                    return None
                d2 = inn.get(entry & mask)
                return None if d2 is None else (entry >> 40) + d2
            out = out_maps_get(source)
            if out is None:
                return None
            inn = in_maps_get(target)
            if inn is None:
                return None
            # the object probe, inlined: iterate the smaller hub map,
            # hash-probe the larger; min over shared hubs
            if len(out) > len(inn):
                best = None
                for hub, d2 in inn.items():
                    d1 = out.get(hub)
                    if d1 is not None and (best is None or d1 + d2 < best):
                        best = d1 + d2
                return best
            best = None
            for hub, d1 in out.items():
                d2 = inn.get(hub)
                if d2 is not None and (best is None or d1 + d2 < best):
                    best = d1 + d2
            return best

        def reachable(source: NodeId, target: NodeId) -> bool:
            # existence needs no min: first shared hub wins
            entry = out_single_get(source)
            if entry is not None:
                inn = in_maps_get(target)
                return inn is not None and (entry & mask) in inn
            out = out_maps_get(source)
            if out is None:
                return False
            inn = in_maps_get(target)
            if inn is None:
                return False
            if len(out) > len(inn):
                out, inn = inn, out
            for hub in out:
                if hub in inn:
                    return True
            return False

        self.distance = distance  # type: ignore[method-assign]
        self.reachable = reachable  # type: ignore[method-assign]
        return pos

    def _inverted_maps(self, forward: bool) -> Dict[int, Dict[NodeId, int]]:
        """The inverted lists promoted to hub → ``{node: dist}`` maps.

        Built lazily on the first enumeration query (the probe path never
        needs them), so cold attach and pure point-probe workloads pay
        nothing.  Dict iteration is what the object enumeration walks —
        promoting the runs removes the packed side's per-entry column
        subscripts.
        """
        maps = self._hd_maps if forward else self._ha_maps
        if maps is None:
            self._pos_lookup()
            off = self._hd_off if forward else self._ha_off
            inv_nodes = self._hd_nodes if forward else self._ha_nodes
            inv_dists = self._hd_dists if forward else self._ha_dists
            maps = {}
            for h, hub in enumerate(self._hub_col):
                maps[hub] = {
                    inv_nodes[m]: inv_dists[m]
                    for m in range(off[h], off[h + 1])
                }
            if forward:
                self._hd_maps = maps
            else:
                self._ha_maps = maps
        return maps

    def _node_set(self) -> frozenset:
        # reads only the node column — load-time routing must not force
        # the full hot-path promotion
        nodes = self._nodes
        if nodes is None:
            nodes = frozenset(self._blob.column_list("nodes"))
            self._nodes = nodes
        return nodes

    # ------------------------------------------------------------------
    # core queries
    # ------------------------------------------------------------------
    def reachable(self, source: NodeId, target: NodeId) -> bool:
        self._pos_lookup()  # installs the specialized closure
        return self.reachable(source, target)

    def distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        self._pos_lookup()  # installs the specialized closure
        return self.distance(source, target)

    def _install_enumerators(self) -> None:
        """First-enumeration promotion, mirroring the probe closures.

        Both directions' enumerators are bound as instance attributes
        with every lookup (position map, inverted maps, tag tables)
        captured in the closure — no per-call promotion checks or
        attribute loads remain on the hot path.  Installation is
        idempotent (closures over the same immutable promoted state), so
        a racing first call from two serving threads is harmless.
        """
        hd_maps = self._inverted_maps(forward=True)
        ha_maps = self._inverted_maps(forward=False)
        self._pos_lookup()  # force column promotion
        tag_of = self._tag_of
        tag_lookup = self._tag_lookup()
        node_count = len(self._node_col)

        def make(label_off, label_hubs, label_dists, inv_maps):
            # the label's hubs resolve to their inverted maps *here*,
            # once — per call the loop walks source → ((d1, inv), ...)
            # with no column subscripts or hub lookups left
            inv_get = inv_maps.get
            resolved = []
            for i in range(node_count):
                entry = []
                for k in range(label_off[i], label_off[i + 1]):
                    inv = inv_get(label_hubs[k])
                    if inv is not None:
                        entry.append((label_dists[k], inv))
                resolved.append(tuple(entry))
            resolved_of = dict(zip(self._node_col, resolved)).get
            want_get = tag_lookup.get

            def enumerate_(
                source: NodeId, tag: Optional[str]
            ) -> List[ScoredNode]:
                pairs = resolved_of(source)
                if pairs is None:
                    return []
                best: Dict[NodeId, int] = {}
                if pairs:
                    # singleton labels dominate: the first (usually
                    # only) hub's inverted map fills the result in one
                    # C-level comprehension
                    d1, inv = pairs[0]
                    best = {node: d1 + d2 for node, d2 in inv.items()}
                    for d1, inv in pairs[1:]:
                        best_get = best.get
                        for node, d2 in inv.items():
                            total = d1 + d2
                            current = best_get(node)
                            if current is None or total < current:
                                best[node] = total
                if tag is not None:
                    want = want_get(tag)
                    if want is None:
                        return []
                    return sort_scored(
                        (node, d)
                        for node, d in best.items()
                        if tag_of[node] == want
                    )
                return sort_scored(best.items())

            return enumerate_

        self.find_descendants_by_tag = make(  # type: ignore[method-assign]
            self._out_off, self._out_hubs, self._out_dists, hd_maps
        )
        self.find_ancestors_by_tag = make(  # type: ignore[method-assign]
            self._in_off, self._in_hubs, self._in_dists, ha_maps
        )

    def find_descendants_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        self._install_enumerators()  # installs the specialized closure
        return self.find_descendants_by_tag(source, tag)

    def find_ancestors_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        self._install_enumerators()  # installs the specialized closure
        return self.find_ancestors_by_tag(source, tag)

    # ------------------------------------------------------------------
    # diagnostics (mirrors HopiIndex.label_entry_count)
    # ------------------------------------------------------------------
    @property
    def label_entry_count(self) -> int:
        self._pos_lookup()
        return len(self._in_hubs) + len(self._out_hubs)


