"""Array-backed PPO: preorder-sorted int64 columns + bisect interval scans.

The packed layout stores exactly the interval encoding the object
:class:`repro.indexes.ppo.PpoIndex` keeps in dicts, but laid out by
preorder rank so every probe is integer arithmetic over flat columns:

* ``node_at_pre``/``size_at_pre``/``depth_at_pre`` — one entry per pre
  rank; a descendant test is interval arithmetic over these columns, and
  the first probe promotes them to per-source target maps so steady-state
  probes are a single hash lookup (see ``_hot``);
* ``parent_pos_at_pre`` — the parent's pre rank (-1 at roots), so the
  ancestor walk never leaves the columns;
* ``tag_id_at_pre`` + per-tag preorder runs (``tag_offsets``/``tag_pres``)
  — a tag extent scan is two ``bisect`` calls into one contiguous run;
* ``tree_starts`` — forest bookkeeping for the extra XPath axes.

Every operation reproduces the object implementation's results exactly
(same candidates, same distances, same ordering) — the parity suite
asserts byte-identical answers across both layouts.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from repro.indexes.base import NodeId, PathIndex, ScoredNode, sort_scored
from repro.indexes.packed.blob import BlobWriter, PackedBlob

#: ceiling on total per-source distance-map entries (the sum of subtree
#: sizes); beyond it the hot-path promotion keeps interval arithmetic
#: instead of materializing the per-source target maps
_DIST_MAP_CAP = 1_000_000


def pack_ppo(index) -> bytes:
    """Serialize a built :class:`~repro.indexes.ppo.PpoIndex` to blob bytes."""
    node_at_pre = list(index._node_at_pre)
    n = len(node_at_pre)
    size_at_pre = [index._size[node] for node in node_at_pre]
    depth_at_pre = [index._depth[node] for node in node_at_pre]
    parent_pos = [
        -1 if index._parent[node] is None else index._pre[index._parent[node]]
        for node in node_at_pre
    ]
    tags = sorted(index._tag_pres)
    tag_id_at_pre = [0] * n
    tag_offsets = [0]
    tag_pres: List[int] = []
    for tag_id, tag in enumerate(tags):
        for pre, _node in index._tag_pres[tag]:  # already pre-sorted
            tag_pres.append(pre)
            tag_id_at_pre[pre] = tag_id
        tag_offsets.append(len(tag_pres))

    writer = BlobWriter("ppo", meta={"tags": tags, "nodes": n})
    writer.add_column("node_at_pre", node_at_pre)
    writer.add_column("size_at_pre", size_at_pre)
    writer.add_column("depth_at_pre", depth_at_pre)
    writer.add_column("parent_pos_at_pre", parent_pos)
    writer.add_column("tag_id_at_pre", tag_id_at_pre)
    writer.add_column("tag_offsets", tag_offsets)
    writer.add_column("tag_pres", tag_pres)
    writer.add_column("tree_starts", index._tree_starts)
    return writer.to_bytes()


class PackedPpoIndex(PathIndex):
    """Zero-copy PPO probes over an attached FLXPACK blob."""

    strategy_name = "ppo"

    # Pre-promotion placeholders live on the *class*: every derived
    # lookup is built on first use (_hot() rebinds the instance
    # attributes wholesale, nothing mutates these in place), so attach
    # assigns only what it needs and cold attach stays O(1).
    _pre_of: Optional[Dict[NodeId, int]] = None
    _tag_index: Optional[Dict[str, int]] = None
    _node_col: List[int] = []
    _size_col: List[int] = []
    _depth_col: List[int] = []
    _parent_col: List[int] = []
    _tagid_col: List[int] = []
    _tag_off: List[int] = []
    _tag_pres: List[int] = []
    _tree_starts: List[int] = []
    _nodes: Optional[frozenset] = None
    _prepared_candidates: Optional[frozenset] = None
    _prepared_pres: List[Tuple[int, NodeId]] = []

    def __init__(self, backend, blob: Optional[PackedBlob] = None) -> None:
        super().__init__(backend)
        self._blob = blob if blob is not None else backend.blob

    @property
    def blob(self) -> PackedBlob:
        return self._blob

    @classmethod
    def build(cls, graph, tags, backend):  # pragma: no cover - build-time is object-graph
        raise NotImplementedError(
            "packed indexes are compiled from a built PpoIndex "
            "(repro.indexes.packed.pack_index), not built from a graph"
        )

    # ------------------------------------------------------------------
    # derived lookups
    # ------------------------------------------------------------------
    def _pre_lookup(self) -> Dict[NodeId, int]:
        pre_of = self._pre_of
        if pre_of is None:
            pre_of = self._hot()
        return pre_of

    def _tag_lookup(self) -> Dict[str, int]:
        # tag names live in the blob's metadata JSON, parsed on first
        # tag-axis query, never at attach time
        tag_index = self._tag_index
        if tag_index is None:
            tag_index = self._tag_index = {
                tag: i for i, tag in enumerate(self._blob.meta["tags"])
            }
        return tag_index

    def _hot(self) -> Dict[NodeId, int]:
        """First-probe promotion: columns → lists, probes → closures.

        Runs once per attached index.  The point probes (``reachable``,
        ``distance``) are replaced by instance-level closures that answer
        from per-source target maps materialized off the interval columns
        (or from interval arithmetic above ``_DIST_MAP_CAP``),
        eliminating every per-call attribute load.
        """
        blob = self._blob
        node_col = self._node_col = blob.column_list("node_at_pre")
        size_col = self._size_col = blob.column_list("size_at_pre")
        depth_col = self._depth_col = blob.column_list("depth_at_pre")
        self._parent_col = blob.column_list("parent_pos_at_pre")
        self._tagid_col = blob.column_list("tag_id_at_pre")
        self._tag_off = blob.column_list("tag_offsets")
        self._tag_pres = blob.column_list("tag_pres")
        self._tree_starts = blob.column_list("tree_starts")
        pre_of = self._pre_of = {node: i for i, node in enumerate(node_col)}
        # subtree end per pre rank, precomputed so the probe does one
        # list load instead of a load plus an add
        end_col = [i + size for i, size in enumerate(size_col)]

        # Point probes are specialized one of two ways.  The preferred
        # form materializes, per source node, the map ``target -> depth
        # difference`` over its subtree interval — the *answer* of both
        # probes — so a probe is one dict subscript plus one C-level
        # dict operation (``in`` / ``.get``).  The maps hold exactly
        # ``sum(size_at_pre)`` entries (total subtree mass, i.e. nodes
        # times mean depth); above ``_DIST_MAP_CAP`` entries the
        # promotion falls back to interval arithmetic, which stays
        # O(nodes) in memory.  Both forms are stateless after
        # construction, so concurrent serving workers can share them.
        if sum(size_col) <= _DIST_MAP_CAP:
            dist_of: Dict[NodeId, Dict[NodeId, int]] = {}
            for i, node in enumerate(node_col):
                base_depth = depth_col[i]
                dist_of[node] = {
                    node_col[p]: depth_col[p] - base_depth
                    for p in range(i, end_col[i])
                }

            def reachable(
                source: NodeId, target: NodeId, _dist=dist_of
            ) -> bool:
                try:
                    return target in _dist[source]
                except KeyError:
                    return False

            def distance(
                source: NodeId, target: NodeId, _dist=dist_of
            ) -> Optional[int]:
                try:
                    return _dist[source].get(target)
                except KeyError:
                    return None

        else:  # pragma: no cover - exercised only by very deep corpora
            # ``pre_of[x]`` + KeyError beats two ``.get`` calls: probes
            # are overwhelmingly for present nodes, where the happy path
            # is two plain subscripts and no bound-method calls.
            def reachable(source: NodeId, target: NodeId) -> bool:
                try:
                    ps = pre_of[source]
                    pt = pre_of[target]
                except KeyError:
                    return False
                return ps <= pt < end_col[ps]

            def distance(source: NodeId, target: NodeId) -> Optional[int]:
                try:
                    ps = pre_of[source]
                    pt = pre_of[target]
                except KeyError:
                    return None
                if ps <= pt < end_col[ps]:
                    return depth_col[pt] - depth_col[ps]
                return None

        self.reachable = reachable  # type: ignore[method-assign]
        self.distance = distance  # type: ignore[method-assign]
        return pre_of

    def _node_set(self) -> frozenset:
        # reads only the node column — load-time routing must not force
        # the full hot-path promotion
        nodes = self._nodes
        if nodes is None:
            nodes = frozenset(self._blob.column_list("node_at_pre"))
            self._nodes = nodes
        return nodes

    def _tag_run(self, tag_id: int) -> Tuple[int, int]:
        return self._tag_off[tag_id], self._tag_off[tag_id + 1]

    # ------------------------------------------------------------------
    # core queries
    # ------------------------------------------------------------------
    def reachable(self, source: NodeId, target: NodeId) -> bool:
        self._pre_lookup()  # installs the specialized closure
        return self.reachable(source, target)

    def distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        self._pre_lookup()  # installs the specialized closure
        return self.distance(source, target)

    def find_descendants_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        pre_of = self._pre_of
        if pre_of is None:
            pre_of = self._pre_lookup()
        ps = pre_of.get(source)
        if ps is None:
            return []
        low = ps
        high = ps + self._size_col[ps]
        base_depth = self._depth_col[ps]
        depth_col = self._depth_col
        node_col = self._node_col
        if tag is None:
            return sort_scored(
                (node_col[p], depth_col[p] - base_depth)
                for p in range(low, high)
            )
        tag_id = self._tag_lookup().get(tag)
        if tag_id is None:
            return []
        run = self._tag_pres
        start, end = self._tag_run(tag_id)
        lo = bisect_left(run, low, start, end)
        hi = bisect_left(run, high, start, end)
        return sort_scored(
            (node_col[run[i]], depth_col[run[i]] - base_depth)
            for i in range(lo, hi)
        )

    def find_ancestors_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        pre_of = self._pre_of
        if pre_of is None:
            pre_of = self._pre_lookup()
        pos = pre_of.get(source)
        if pos is None:
            return []
        want = None
        if tag is not None:
            want = self._tag_lookup().get(tag)
            if want is None:
                return []
        node_col = self._node_col
        parent_col = self._parent_col
        tagid_col = self._tagid_col
        result: List[ScoredNode] = []
        dist = 0
        while pos != -1:
            if want is None or tagid_col[pos] == want:
                result.append((node_col[pos], dist))
            pos = parent_col[pos]
            dist += 1
        return result  # parent walk is already ascending-distance

    # ------------------------------------------------------------------
    # residual-link fast path (mirrors PpoIndex.prepare_link_candidates)
    # ------------------------------------------------------------------
    def prepare_link_candidates(self, candidates: frozenset) -> None:
        pre_of = self._pre_lookup()
        self._prepared_candidates = candidates
        self._prepared_pres = sorted(
            (pre_of[c], c) for c in candidates if c in pre_of
        )

    def reachable_subset(self, source: NodeId, candidates) -> List[ScoredNode]:
        pre_of = self._pre_of
        if pre_of is None:
            pre_of = self._pre_lookup()
        if (
            self._prepared_candidates is None
            or candidates is not self._prepared_candidates
            or source not in pre_of
        ):
            return super().reachable_subset(source, candidates)
        ps = pre_of[source]
        low = ps
        high = ps + self._size_col[ps]
        prepared = self._prepared_pres
        lo = bisect_left(prepared, (low, -1))
        hi = bisect_left(prepared, (high, -1))
        base_depth = self._depth_col[ps]
        depth_col = self._depth_col
        return sort_scored(
            (node, depth_col[pre] - base_depth)
            for pre, node in prepared[lo:hi]
        )

    # ------------------------------------------------------------------
    # PPO extras (the interval arithmetic works unchanged on columns)
    # ------------------------------------------------------------------
    def preorder(self, node: NodeId) -> int:
        return self._pre_lookup()[node]

    def postorder(self, node: NodeId) -> int:
        pos = self._pre_lookup()[node]
        return pos + self._size_col[pos] - 1

    def depth(self, node: NodeId) -> int:
        pos = self._pre_lookup()[node]
        return self._depth_col[pos]

    def parent(self, node: NodeId) -> Optional[NodeId]:
        pos = self._pre_lookup()[node]
        parent_pos = self._parent_col[pos]
        return None if parent_pos == -1 else self._node_col[parent_pos]

    def children(self, node: NodeId) -> List[NodeId]:
        pos = self._pre_lookup()[node]
        result: List[NodeId] = []
        pre = pos + 1
        end = pos + self._size_col[pos]
        while pre < end:
            result.append(self._node_col[pre])
            pre += self._size_col[pre]
        return result

    def _tree_span(self, node: NodeId) -> Tuple[int, int]:
        pre = self._pre_lookup()[node]
        starts = self._tree_starts
        i = bisect_right(starts, pre) - 1
        start = starts[i]
        end = starts[i + 1] if i + 1 < len(starts) else len(self._node_col)
        return start, end
