"""Storage facade for packed indexes.

A packed index answers every probe straight from its blob columns, so it
needs no live table storage — but the rest of the framework still talks
to ``index.backend`` for three things:

* ``fingerprint()`` — :meth:`repro.core.framework.Flix.index_fingerprint`
  hashes it per meta document.  The facade returns the *source* backend's
  table-content fingerprint (delegated live, or the value recorded at
  pack time), so packing never changes an index fingerprint;
* ``total_bytes()`` — storage sizing.  The facade reports the blob size:
  that *is* the bytes a packed meta document occupies;
* table access — ``save_flix`` copies the index tables into the per-meta
  SQLite file.  In-memory packs keep the build-time backend around; disk
  attaches materialize it lazily from the sibling ``.sqlite`` file only
  if something actually asks for tables.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.indexes.packed.blob import PackedBlob
from repro.storage.table import StorageBackend, Table, TableSchema


class PackedBackend(StorageBackend):
    """Blob accounting + source-backend delegation for packed indexes."""

    def __init__(
        self,
        blob: PackedBlob,
        *,
        source: Optional[StorageBackend] = None,
        source_factory: Optional[Callable[[], StorageBackend]] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self._blob = blob
        self._source = source
        self._source_factory = source_factory
        self._fingerprint = fingerprint
        self._observer = None

    @property
    def blob(self) -> PackedBlob:
        return self._blob

    def _materialize(self) -> StorageBackend:
        if self._source is None:
            if self._source_factory is None:
                raise KeyError(
                    "packed index has no table storage attached (blob-only "
                    "attach); reload from a full save to access tables"
                )
            self._source = self._source_factory()
            if self._observer is not None:
                self._source.attach_observer(self._observer)
        return self._source

    # ------------------------------------------------------------------
    # StorageBackend interface
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        return self._materialize().create_table(schema)

    def table(self, name: str) -> Table:
        return self._materialize().table(name)

    def drop_table(self, name: str) -> None:
        self._materialize().drop_table(name)

    def table_names(self) -> List[str]:
        return self._materialize().table_names()

    def attach_observer(self, observer) -> None:
        self._observer = observer
        if self._source is not None:
            self._source.attach_observer(observer)

    def total_bytes(self) -> int:
        """The packed footprint: the blob is the whole hot-path state."""
        return self._blob.size_bytes()

    def fingerprint(self) -> str:
        """The *source* tables' content hash — packing is representation,
        not content, so the fingerprint must not move."""
        if self._source is not None:
            return self._source.fingerprint()
        if self._fingerprint is not None:
            return self._fingerprint
        return self._materialize().fingerprint()
