"""Array-backed structure summaries (APEX, 1-index/A(k), F&B, DataGuide).

The packed form keeps the summary family's three ingredients as columns:

* the class partition — per-node class positions plus *extents as
  contiguous node-id runs* (``extent_offsets``/``extent_nodes``, nodes
  grouped by class), the layout APEX answers refined label paths from;
* the data edges — forward and backward CSR adjacency over node
  *positions*, successor runs sorted by node id (exactly the
  ``sorted(neighbours)`` order the object guided BFS visits);
* the structure graph — class-position edge pairs, from which the
  class-reachability sets the BFS prunes with are rebuilt lazily on
  first probe (the structure graph is small by design).

Queries run the same structure-pruned BFS as
:class:`repro.indexes._summary.SummaryIndex` and return identical
results; only the memory they walk is flat.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.indexes.base import NodeId, PathIndex, ScoredNode, sort_scored
from repro.indexes.packed.blob import BlobWriter, PackedBlob

#: summary-family strategy names packed by this module
SUMMARY_STRATEGIES = ("apex", "kindex", "fbindex", "dataguide", "fabric")


def pack_summary(index) -> bytes:
    """Serialize a built summary-family index to blob bytes."""
    nodes = sorted(index._nodes)
    pos = {node: i for i, node in enumerate(nodes)}
    classes = sorted(set(index._class_of.values()))
    cls_pos = {cls: i for i, cls in enumerate(classes)}
    class_col = [cls_pos[index._class_of[node]] for node in nodes]
    tags = sorted(set(index._tags[node] for node in nodes))
    tag_index = {tag: i for i, tag in enumerate(tags)}
    tag_ids = [tag_index[index._tags[node]] for node in nodes]

    def adjacency_csr(neighbours_of):
        offsets = [0]
        targets: List[int] = []
        for node in nodes:
            for other in sorted(neighbours_of(node)):
                targets.append(pos[other])
            offsets.append(len(targets))
        return offsets, targets

    succ_off, succ_pos = adjacency_csr(index._graph.successors)
    pred_off, pred_pos = adjacency_csr(index._graph.predecessors)

    struct_src: List[int] = []
    struct_dst: List[int] = []
    for u, v in sorted(index._structure.edges()):
        struct_src.append(cls_pos[u])
        struct_dst.append(cls_pos[v])

    extent_off = [0]
    extent_nodes: List[int] = []
    by_class: Dict[int, List[int]] = {}
    for node in nodes:
        by_class.setdefault(cls_pos[index._class_of[node]], []).append(node)
    for c in range(len(classes)):
        extent_nodes.extend(by_class.get(c, ()))
        extent_off.append(len(extent_nodes))

    writer = BlobWriter(
        index.strategy_name,
        meta={"tags": tags, "nodes": len(nodes), "classes": len(classes)},
    )
    writer.add_column("nodes", nodes)
    writer.add_column("class_pos", class_col)
    writer.add_column("tag_ids", tag_ids)
    writer.add_column("classes", classes)
    writer.add_column("succ_offsets", succ_off)
    writer.add_column("succ_pos", succ_pos)
    writer.add_column("pred_offsets", pred_off)
    writer.add_column("pred_pos", pred_pos)
    writer.add_column("struct_src", struct_src)
    writer.add_column("struct_dst", struct_dst)
    writer.add_column("extent_offsets", extent_off)
    writer.add_column("extent_nodes", extent_nodes)
    return writer.to_bytes()


class PackedSummaryIndex(PathIndex):
    """Zero-copy structure-pruned BFS over an attached FLXPACK blob."""

    strategy_name = "summary"

    # Pre-promotion placeholders live on the *class*: _hot() rebinds the
    # instance attributes wholesale on first probe (nothing mutates
    # these in place), so attach assigns only the blob reference and
    # cold attach touches no column bytes (and no metadata JSON).
    _tag_index: Optional[Dict[str, int]] = None
    _pos: Optional[Dict[NodeId, int]] = None
    _node_col: List[int] = []
    _clspos_col: List[int] = []
    _tagid_col: List[int] = []
    _classes: List[int] = []
    _succ_lists: List[tuple] = []
    _pred_lists: List[tuple] = []
    _nodes: Optional[frozenset] = None
    _reach: Optional[List[Set[int]]] = None
    _coreach: Optional[List[Set[int]]] = None
    _tag_classes: Optional[List[Set[int]]] = None

    def __init__(self, backend, blob: Optional[PackedBlob] = None) -> None:
        super().__init__(backend)
        self._blob = blob if blob is not None else backend.blob
        self.strategy_name = self._blob.strategy

    @property
    def blob(self) -> PackedBlob:
        return self._blob

    @classmethod
    def build(cls, graph, tags, backend):  # pragma: no cover - build-time is object-graph
        raise NotImplementedError(
            "packed indexes are compiled from a built SummaryIndex "
            "(repro.indexes.packed.pack_index), not built from a graph"
        )

    # ------------------------------------------------------------------
    # derived lookups
    # ------------------------------------------------------------------
    def _pos_lookup(self) -> Dict[NodeId, int]:
        pos = self._pos
        if pos is None:
            pos = self._hot()
        return pos

    def _hot(self) -> Dict[NodeId, int]:
        """First-probe promotion: columns → lists, CSR → per-node tuples.

        The guided BFS spends its time on neighbour iteration and class
        lookups; promoting the CSR runs to per-node tuples (still in the
        runs' sorted order) and the class/tag columns to lists makes both
        native-speed while cold attach stays O(1).
        """
        blob = self._blob
        node_col = self._node_col = blob.column_list("nodes")
        self._clspos_col = blob.column_list("class_pos")
        self._tagid_col = blob.column_list("tag_ids")
        self._classes = blob.column_list("classes")

        def adjacency_tuples(off_name, pos_name):
            off = blob.column_list(off_name)
            targets = blob.column_list(pos_name)
            return [
                tuple(targets[off[i] : off[i + 1]])
                for i in range(len(off) - 1)
            ]

        self._succ_lists = adjacency_tuples("succ_offsets", "succ_pos")
        self._pred_lists = adjacency_tuples("pred_offsets", "pred_pos")
        pos = self._pos = {node: i for i, node in enumerate(node_col)}
        return pos

    def _node_set(self) -> frozenset:
        # reads only the node column — load-time routing must not force
        # the full hot-path promotion
        nodes = self._nodes
        if nodes is None:
            nodes = frozenset(self._blob.column_list("nodes"))
            self._nodes = nodes
        return nodes

    def _class_reachability(self) -> Tuple[List[Set[int]], List[Set[int]]]:
        """Reflexive-transitive reachability over the structure graph,
        rebuilt once per attach (mirrors ``_compute_class_reachability``)."""
        if self._reach is None:
            self._pos_lookup()
            struct_src = self._blob.column_list("struct_src")
            struct_dst = self._blob.column_list("struct_dst")
            count = len(self._classes)
            adjacency: List[List[int]] = [[] for _ in range(count)]
            for k in range(len(struct_src)):
                adjacency[struct_src[k]].append(struct_dst[k])
            reach: List[Set[int]] = []
            for cls in range(count):
                seen = {cls}
                queue = deque([cls])
                while queue:
                    current = queue.popleft()
                    for succ in adjacency[current]:
                        if succ not in seen:
                            seen.add(succ)
                            queue.append(succ)
                reach.append(seen)
            coreach: List[Set[int]] = [set() for _ in range(count)]
            for cls, seen in enumerate(reach):
                for other in seen:
                    coreach[other].add(cls)
            self._reach = reach
            self._coreach = coreach
        return self._reach, self._coreach

    def _tag_lookup(self) -> Dict[str, int]:
        # tag names live in the blob's metadata JSON, parsed on first
        # tag-axis query, never at attach time
        tag_index = self._tag_index
        if tag_index is None:
            tag_index = self._tag_index = {
                tag: i for i, tag in enumerate(self._blob.meta["tags"])
            }
        return tag_index

    def _classes_with_tag(self, tag_id: int) -> Set[int]:
        table = self._tag_classes
        if table is None:
            self._pos_lookup()
            table = [set() for _ in self._tag_lookup()]
            clspos_col = self._clspos_col
            tagid_col = self._tagid_col
            for i in range(len(self._node_col)):
                table[tagid_col[i]].add(clspos_col[i])
            self._tag_classes = table
        return table[tag_id]

    # ------------------------------------------------------------------
    # core queries (same pruned BFS as the object SummaryIndex)
    # ------------------------------------------------------------------
    def reachable(self, source: NodeId, target: NodeId) -> bool:
        return self.distance(source, target) is not None

    def distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        pos = self._pos_lookup()
        i = pos.get(source)
        if i is None:
            return None
        j = pos.get(target)
        if j is None:
            return None
        clspos_col = self._clspos_col
        reach, _ = self._class_reachability()
        target_class = clspos_col[j]
        if target_class not in reach[clspos_col[i]]:
            return None  # index-only negative answer: the summary refutes it
        succ_lists = self._succ_lists
        dist = {i: 0}
        queue = deque([i])
        while queue:
            p = queue.popleft()
            if p == j:
                return dist[p]
            base = dist[p] + 1
            for q in succ_lists[p]:
                if q in dist:
                    continue
                if target_class not in reach[clspos_col[q]]:
                    continue  # branch cannot lead to the target's class
                dist[q] = base
                queue.append(q)
        return None

    def _guided_bfs(
        self,
        source: NodeId,
        tag: Optional[str],
        forward: bool,
    ) -> List[ScoredNode]:
        pos = self._pos_lookup()
        i = pos.get(source)
        if i is None:
            return []
        want: Optional[int] = None
        goal_classes: Optional[Set[int]] = None
        if tag is not None:
            want = self._tag_lookup().get(tag)
            if want is None:
                return []
            goal_classes = self._classes_with_tag(want)
            if not goal_classes:
                return []
        reach_fwd, reach_bwd = self._class_reachability()
        reach = reach_fwd if forward else reach_bwd
        adjacency = self._succ_lists if forward else self._pred_lists
        clspos_col = self._clspos_col
        tagid_col = self._tagid_col
        node_col = self._node_col

        if goal_classes is not None and reach[clspos_col[i]].isdisjoint(
            goal_classes
        ):
            return []
        results: List[ScoredNode] = []
        dist = {i: 0}
        queue = deque([i])
        while queue:
            p = queue.popleft()
            if want is None or tagid_col[p] == want:
                results.append((node_col[p], dist[p]))
            base = dist[p] + 1
            # adjacency runs are sorted by node id: the object BFS's
            # ``sorted(neighbours)`` visit order, preserved for free
            for q in adjacency[p]:
                if q in dist:
                    continue
                if goal_classes is not None and reach[
                    clspos_col[q]
                ].isdisjoint(goal_classes):
                    continue
                dist[q] = base
                queue.append(q)
        return sort_scored(results)

    def find_descendants_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        return self._guided_bfs(source, tag, forward=True)

    def find_ancestors_by_tag(
        self,
        source: NodeId,
        tag: Optional[str],
    ) -> List[ScoredNode]:
        return self._guided_bfs(source, tag, forward=False)

    # ------------------------------------------------------------------
    # summary extras (class partition + contiguous extents)
    # ------------------------------------------------------------------
    @property
    def class_count(self) -> int:
        self._pos_lookup()
        return len(self._classes)

    def class_of(self, node: NodeId) -> int:
        pos = self._pos_lookup()[node]
        return self._classes[self._clspos_col[pos]]

    def extent(self, cls: int) -> List[NodeId]:
        """The class extent as its contiguous node-id run."""
        from bisect import bisect_left

        self._pos_lookup()
        classes = self._classes
        c = bisect_left(classes, cls)
        if c >= len(classes) or classes[c] != cls:
            return []
        extent_off = self._blob.column_list("extent_offsets")
        extent_nodes = self._blob.column("extent_nodes")
        return list(extent_nodes[extent_off[c] : extent_off[c + 1]])
