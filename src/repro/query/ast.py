"""Abstract syntax of the relaxed path-query language.

A query is a sequence of location steps.  Each step has an axis (``child``
or ``descendant-or-self``), a name test (a tag, a similarity tag, or the
wildcard), and optional value predicates on child elements.  The example
query of section 1.1 parses to::

    //~movie[title ~= "Matrix: Revolutions"]//~actor//~movie

    PathQuery(steps=[
        LocationStep(axis="descendant", tag="movie", similar=True,
                     predicates=[Predicate("title", "~=", "Matrix: Revolutions")]),
        LocationStep(axis="descendant", tag="actor", similar=True),
        LocationStep(axis="descendant", tag="movie", similar=True),
    ])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

AXES = ("child", "descendant")
PREDICATE_OPS = ("=", "~=", "contains")


@dataclass(frozen=True)
class Predicate:
    """A value test on a child element: ``[child_tag op "value"]``.

    ``=`` is exact text equality, ``contains`` substring containment, and
    ``~=`` vague matching (token overlap + ontology synonyms, scored).
    """

    child_tag: str
    op: str
    value: str

    def __post_init__(self) -> None:
        if self.op not in PREDICATE_OPS:
            raise ValueError(f"unknown predicate operator {self.op!r}")

    def __str__(self) -> str:
        return f'[{self.child_tag} {self.op} "{self.value}"]'


@dataclass(frozen=True)
class LocationStep:
    """One step of the path expression."""

    axis: str
    tag: Optional[str]  # None is the wildcard *
    similar: bool = False  # the ~ operator of XXL
    predicates: Tuple[Predicate, ...] = ()

    def __post_init__(self) -> None:
        if self.axis not in AXES:
            raise ValueError(f"unknown axis {self.axis!r}")
        if self.tag is None and self.similar:
            raise ValueError("the wildcard cannot carry the similarity operator")

    def __str__(self) -> str:
        axis = "/" if self.axis == "child" else "//"
        name = "*" if self.tag is None else ("~" + self.tag if self.similar else self.tag)
        return axis + name + "".join(str(p) for p in self.predicates)


@dataclass(frozen=True)
class PathQuery:
    """A full path expression."""

    steps: Tuple[LocationStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a query needs at least one step")

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps)

    @property
    def is_fully_relaxed(self) -> bool:
        return all(step.axis == "descendant" for step in self.steps)
