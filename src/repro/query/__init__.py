"""Relaxed path queries with semantic and structural vagueness (section 1.1).

The paper motivates FliX with the XXL search engine's query model: a path
expression whose tag tests carry *semantic* vagueness (the ``~`` similarity
operator backed by an ontology) and whose child steps are *structurally*
relaxed to descendants-or-self, with result relevance decreasing in path
length.  This package implements that model on top of the FliX evaluator:

* :mod:`repro.query.ast` / :mod:`repro.query.parser` — a small XPath subset
  (``/``, ``//``, ``*``, name tests, ``~name`` similarity tests,
  ``[child = "value"]`` / ``[child ~= "value"]`` predicates);
* :mod:`repro.query.relaxation` — rewrite child steps to descendant steps;
* :mod:`repro.query.ontology` — tag/term similarity (the WordNet/IMDB
  substitute, preloaded with the movie and publication domains);
* :mod:`repro.query.scoring` — relevance from path lengths and similarity;
* :mod:`repro.query.engine` — top-k evaluation that consumes the PEE's
  approximately-distance-ordered streams and stops early, threshold-
  algorithm style (section 3.1 cites Fagin [8]).
"""

from repro.query.ast import LocationStep, PathQuery, Predicate
from repro.query.parser import QueryParseError, parse_query
from repro.query.relaxation import relax
from repro.query.ontology import Ontology, default_ontology
from repro.query.scoring import ScoringModel
from repro.query.engine import QueryEngine, RankedMatch

__all__ = [
    "PathQuery",
    "LocationStep",
    "Predicate",
    "parse_query",
    "QueryParseError",
    "relax",
    "Ontology",
    "default_ontology",
    "ScoringModel",
    "QueryEngine",
    "RankedMatch",
]
