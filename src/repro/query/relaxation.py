"""Structural relaxation: child steps become descendant steps.

Section 1.1: "a query like movie/actor can only be an approximation of what
the user really wants, because the user cannot know the exact structure of
the data.  We therefore consider not only children as matches, but also
descendants; the relevance of a result decreases with increasing path
length."  The scoring model handles the relevance decay; this module does
the rewrite, optionally adding the similarity operator to every name test
(the full rewrite shown for the Matrix example).
"""

from __future__ import annotations

from typing import Tuple

from repro.query.ast import LocationStep, PathQuery, Predicate


def relax(
    query: PathQuery,
    add_similarity: bool = False,
) -> PathQuery:
    """Relax every ``child`` axis to ``descendant``.

    With ``add_similarity`` every non-wildcard name test also receives the
    ``~`` operator and every exact-equality predicate becomes a vague
    ``~=`` match, turning ``/movie[title="..."]/actor/movie`` into the
    paper's ``//~movie[title ~= "..."]//~actor//~movie``.
    """

    def soften(predicate: Predicate) -> Predicate:
        if add_similarity and predicate.op == "=":
            return Predicate(predicate.child_tag, "~=", predicate.value)
        return predicate

    steps: Tuple[LocationStep, ...] = tuple(
        LocationStep(
            axis="descendant",
            tag=step.tag,
            similar=step.similar or (add_similarity and step.tag is not None),
            predicates=tuple(soften(p) for p in step.predicates),
        )
        for step in query.steps
    )
    return PathQuery(steps)


def relaxation_depth(original: PathQuery, relaxed: PathQuery) -> int:
    """How many steps were rewritten (for reporting/UI purposes)."""
    if len(original.steps) != len(relaxed.steps):
        raise ValueError("queries must have the same number of steps")
    return sum(
        1
        for before, after in zip(original.steps, relaxed.steps)
        if before.axis != after.axis or before.similar != after.similar
    )
