"""Top-k evaluation of relaxed path queries over a FliX index.

The engine walks the query's location steps left to right, carrying a set
of scored *bindings* (element, score).  Descendant steps are answered by
the FliX evaluator's distance-ordered streams; because the scoring model is
monotonically decreasing in distance, the engine can stop consuming a
stream as soon as the best score any further result could reach falls below
the current k-th best candidate — the sequential-access flavour of Fagin's
threshold algorithm that section 3.1 refers to ("using an algorithm similar
to Fagin's threshold algorithm with only sequential reads").

Semantic vagueness: a ``~tag`` name test is expanded through the ontology
into all sufficiently similar tags, each stream's results weighted by the
tag similarity; ``~=`` predicates are scored by vague text match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.collection.collection import NodeId
from repro.core.api import QueryRequest
from repro.core.framework import Flix
from repro.query.ast import LocationStep, PathQuery, Predicate
from repro.query.ontology import Ontology, default_ontology
from repro.query.parser import parse_query
from repro.query.relaxation import relax
from repro.query.scoring import ScoringModel


@dataclass(frozen=True)
class RankedMatch:
    """One query answer: the element bound to the final step, its relevance
    score, and the chain of elements bound to each step."""

    node: NodeId
    score: float
    bindings: Tuple[NodeId, ...]


class QueryEngine:
    """Evaluates :class:`PathQuery` instances against a built FliX index."""

    def __init__(
        self,
        flix: Flix,
        ontology: Optional[Ontology] = None,
        scoring: Optional[ScoringModel] = None,
        tag_similarity_threshold: float = 0.5,
        beam_width: int = 500,
    ) -> None:
        self._flix = flix
        self._collection = flix.collection
        self._ontology = ontology if ontology is not None else default_ontology()
        self._scoring = scoring if scoring is not None else ScoringModel()
        self._tag_threshold = tag_similarity_threshold
        if beam_width < 1:
            raise ValueError("beam_width must be positive")
        self._beam_width = beam_width

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: Union[str, PathQuery],
        top_k: int = 10,
        auto_relax: bool = False,
    ) -> List[RankedMatch]:
        """Evaluate ``query`` and return the ``top_k`` matches, best first.

        With ``auto_relax`` the query is first rewritten to the fully
        relaxed form (all axes descendant, all name tests similar) — the
        transformation the paper applies to the Matrix example.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if auto_relax:
            query = relax(query, add_similarity=True)
        if top_k < 1:
            raise ValueError("top_k must be positive")

        bindings = self._initial_bindings(query.steps[0])
        for step in query.steps[1:]:
            bindings = self._advance(bindings, step, top_k)
            if not bindings:
                return []
        ranked = [
            RankedMatch(node=chain[-1], score=score, bindings=chain)
            for chain, score in bindings.items()
        ]
        ranked.sort(key=lambda match: (-match.score, match.node))
        return ranked[:top_k]

    # ------------------------------------------------------------------
    # step evaluation
    # ------------------------------------------------------------------
    def _expanded_tags(self, step: LocationStep) -> List[Tuple[Optional[str], float]]:
        """(tag, similarity) pairs a name test matches; [(None, 1.0)] = any."""
        if step.tag is None:
            return [(None, 1.0)]
        if not step.similar:
            return [(step.tag, 1.0)]
        return self._ontology.expand_tag(step.tag, self._tag_threshold)

    def _initial_bindings(self, step: LocationStep) -> Dict[Tuple[NodeId, ...], float]:
        """Elements matching the first step.

        A leading ``/name`` addresses document roots only (XPath's absolute
        child step from the virtual super-root); a leading ``//name``
        matches anywhere in the collection.
        """
        bindings: Dict[Tuple[NodeId, ...], float] = {}
        best: Dict[NodeId, float] = {}
        for tag, tag_score in self._expanded_tags(step):
            nodes = (
                list(self._collection.node_ids())
                if tag is None
                else self._collection.nodes_with_tag(tag)
            )
            if step.axis == "child":
                nodes = [
                    node
                    for node in nodes
                    if self._collection.info(node).depth == 0
                ]
            for node in nodes:
                predicate_score = self._predicate_score(node, step.predicates)
                score = tag_score * predicate_score
                if score >= self._scoring.min_score and score > best.get(node, 0.0):
                    best[node] = score
        for node, score in self._trim(best).items():
            bindings[(node,)] = score
        return bindings

    def _advance(
        self,
        bindings: Dict[Tuple[NodeId, ...], float],
        step: LocationStep,
        top_k: int,
    ) -> Dict[Tuple[NodeId, ...], float]:
        """Extend every binding chain by one location step."""
        max_distance = (
            1 if step.axis == "child" else self._scoring.max_useful_distance()
        )
        expanded = self._expanded_tags(step)
        # best extension per result node (dedup across chains and tags)
        best: Dict[NodeId, Tuple[float, Tuple[NodeId, ...]]] = {}
        threshold_score = 0.0  # k-th best so far, for early stream cut-off

        ordered = sorted(bindings.items(), key=lambda item: -item[1])
        for chain, chain_score in ordered:
            source = chain[-1]
            source_meta = self._flix.meta_of[source]
            for tag, tag_score in expanded:
                ceiling = chain_score * tag_score  # best any result can get
                if ceiling < self._scoring.min_score or ceiling < threshold_score:
                    continue
                for result in self._flix.query_stream(
                    QueryRequest.descendants(
                        source, tag=tag, max_distance=max_distance
                    )
                ):
                    if step.axis == "child" and result.distance != 1:
                        continue
                    link_hops = 0 if result.meta_id == source_meta else 1
                    structural = self._scoring.path_score(result.distance, link_hops)
                    bound = ceiling * structural
                    if bound < self._scoring.min_score or bound < threshold_score:
                        # results only get farther; stop this stream
                        break
                    predicate_score = self._predicate_score(
                        result.node, step.predicates
                    )
                    score = bound * predicate_score
                    if score < self._scoring.min_score:
                        continue
                    current = best.get(result.node)
                    if current is None or score > current[0]:
                        best[result.node] = (score, chain + (result.node,))
                if len(best) >= top_k:
                    threshold_score = sorted(
                        (score for score, _ in best.values()), reverse=True
                    )[top_k - 1]
        trimmed = self._trim({node: score for node, (score, _) in best.items()})
        return {
            best[node][1]: score
            for node, score in trimmed.items()
        }

    def _trim(self, scores: Dict[NodeId, float]) -> Dict[NodeId, float]:
        """Keep the ``beam_width`` best bindings (bounding per-step work)."""
        if len(scores) <= self._beam_width:
            return scores
        ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return dict(ordered[: self._beam_width])

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def _predicate_score(
        self,
        node: NodeId,
        predicates: Tuple[Predicate, ...],
    ) -> float:
        """Product of the best match score of every predicate (0 fails)."""
        score = 1.0
        element = self._collection.element(node)
        for predicate in predicates:
            best = 0.0
            for child in element.children:
                if child.name != predicate.child_tag:
                    continue
                best = max(
                    best,
                    self._scoring.text_score(
                        predicate.op, predicate.value, child.full_text, self._ontology
                    ),
                )
                if best == 1.0:
                    break
            score *= best
            if score == 0.0:
                return 0.0
        return score
