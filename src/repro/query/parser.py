"""Parser for the relaxed path-query language.

Grammar (whitespace-insensitive around predicates)::

    query      := step+
    step       := axis nametest predicate*
    axis       := "/" | "//"
    nametest   := "*" | ["~"] NAME
    predicate  := "[" NAME op STRING "]"
    op         := "=" | "~=" | "contains"
    STRING     := '"' chars '"' | "'" chars "'"

Examples accepted: ``/movie/actor``, ``//~movie[title ~= "Matrix 3"]//actor``,
``//article[year = "1999"]//*``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.query.ast import LocationStep, PathQuery, Predicate


class QueryParseError(ValueError):
    """Raised on malformed query text, with position information."""

    def __init__(self, message: str, text: str, pos: int) -> None:
        super().__init__(f"{message} at position {pos}: {text[pos:pos + 20]!r}")
        self.position = pos


class _Cursor:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> QueryParseError:
        return QueryParseError(message, self.text, self.pos)

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def skip_spaces(self) -> None:
        while not self.exhausted and self.text[self.pos].isspace():
            self.pos += 1

    def take(self, token: str) -> bool:
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def read_name(self) -> str:
        start = self.pos
        text = self.text
        while self.pos < len(text) and (
            text[self.pos].isalnum() or text[self.pos] in "_-."
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return text[start : self.pos]

    def read_string(self) -> str:
        quote = self.peek()
        if quote not in ('"', "'"):
            raise self.error("expected a quoted string")
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end < 0:
            raise self.error("unterminated string")
        value = self.text[self.pos : end]
        self.pos = end + 1
        return value


def parse_query(text: str) -> PathQuery:
    """Parse ``text`` into a :class:`PathQuery`."""
    cursor = _Cursor(text.strip())
    steps: List[LocationStep] = []
    while not cursor.exhausted:
        steps.append(_parse_step(cursor))
    if not steps:
        raise QueryParseError("empty query", text, 0)
    return PathQuery(tuple(steps))


def _parse_step(cursor: _Cursor) -> LocationStep:
    if cursor.take("//"):
        axis = "descendant"
    elif cursor.take("/"):
        axis = "child"
    else:
        raise cursor.error("expected '/' or '//'")
    if cursor.take("*"):
        tag, similar = None, False
    else:
        similar = cursor.take("~")
        tag = cursor.read_name()
    predicates: List[Predicate] = []
    while cursor.peek() == "[":
        predicates.append(_parse_predicate(cursor))
    return LocationStep(axis, tag, similar, tuple(predicates))


def _parse_predicate(cursor: _Cursor) -> Predicate:
    assert cursor.take("[")
    cursor.skip_spaces()
    child = cursor.read_name()
    cursor.skip_spaces()
    if cursor.take("~="):
        op = "~="
    elif cursor.take("="):
        op = "="
    elif cursor.take("contains"):
        op = "contains"
        cursor.skip_spaces()
    else:
        raise cursor.error("expected '=', '~=' or 'contains'")
    cursor.skip_spaces()
    value = cursor.read_string()
    cursor.skip_spaces()
    if not cursor.take("]"):
        raise cursor.error("expected ']'")
    return Predicate(child, op, value)
