"""Tag and term similarity — the XXL ontology substitute.

In the XXL search engine "similar words as well as similarity scores for
them are extracted from an ontology, which can either be a general-purpose
one like WordNet or an ontology specific to the topic of the query"
(section 1.1).  Neither WordNet nor IMDB's alternative-title list ships
here, so :class:`Ontology` is a small, explicit knowledge base with the
same interface: it stores weighted relations between terms and answers
``similarity(a, b)`` as the maximum-product path weight between them
(capped search depth keeps it fast and monotone).

:func:`default_ontology` preloads the two domains the paper talks about —
movies (``science-fiction`` IS-A ``movie``, ``actor``/``performer``
synonymy, the "Matrix 3" alternative title) and publications (``article`` /
``inproceedings`` / ``paper``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set, Tuple


class Ontology:
    """Weighted term graph with max-product path similarity."""

    def __init__(self) -> None:
        # undirected weighted adjacency: term -> {term: weight in (0, 1]}
        self._edges: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def relate(self, a: str, b: str, weight: float) -> None:
        """Declare ``a`` and ``b`` similar with the given strength."""
        if not 0.0 < weight <= 1.0:
            raise ValueError("similarity weight must be in (0, 1]")
        a, b = a.lower(), b.lower()
        if a == b:
            return
        self._edges.setdefault(a, {})[b] = max(
            weight, self._edges.get(a, {}).get(b, 0.0)
        )
        self._edges.setdefault(b, {})[a] = max(
            weight, self._edges.get(b, {}).get(a, 0.0)
        )

    def synonym(self, a: str, b: str) -> None:
        """Full synonymy (weight 1.0)."""
        self.relate(a, b, 1.0)

    def is_a(self, special: str, general: str, weight: float = 0.9) -> None:
        """Hyponymy: ``special`` IS-A ``general``."""
        self.relate(special, general, weight)

    def alternative(self, a: str, b: str, weight: float = 0.95) -> None:
        """Alternative names (e.g. movie title variants)."""
        self.relate(a, b, weight)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def similarity(self, a: str, b: str, max_hops: int = 3) -> float:
        """Best-product path weight between ``a`` and ``b`` (1.0 if equal).

        Paths longer than ``max_hops`` are ignored; since all weights are
        <= 1, longer paths can only lose, so the cap rarely matters but
        bounds the search.
        """
        a, b = a.lower(), b.lower()
        if a == b:
            return 1.0
        best: Dict[str, float] = {a: 1.0}
        frontier = {a}
        for _ in range(max_hops):
            next_frontier: Set[str] = set()
            for term in frontier:
                score = best[term]
                for neighbour, weight in self._edges.get(term, {}).items():
                    candidate = score * weight
                    if candidate > best.get(neighbour, 0.0):
                        best[neighbour] = candidate
                        next_frontier.add(neighbour)
            frontier = next_frontier
            if not frontier:
                break
        return best.get(b, 0.0)

    def similar_terms(self, term: str, threshold: float = 0.5) -> List[Tuple[str, float]]:
        """All terms with similarity >= threshold, best first (excl. self)."""
        term = term.lower()
        results: List[Tuple[str, float]] = []
        for other in self._edges:
            if other == term:
                continue
            score = self.similarity(term, other)
            if score >= threshold:
                results.append((other, score))
        results.sort(key=lambda pair: (-pair[1], pair[0]))
        return results

    def expand_tag(self, tag: str, threshold: float = 0.5) -> List[Tuple[str, float]]:
        """The tag itself (score 1.0) plus its similar tags — what the
        engine iterates when a name test carries the ``~`` operator."""
        return [(tag.lower(), 1.0)] + self.similar_terms(tag, threshold)

    def terms(self) -> List[str]:
        return sorted(self._edges)


def default_ontology() -> Ontology:
    """The movie + publication domain knowledge used by paper examples."""
    onto = Ontology()
    # movie domain (section 1.1)
    onto.is_a("science-fiction", "movie")
    onto.synonym("movie", "film")
    onto.relate("movie", "picture", 0.8)
    onto.synonym("actor", "performer")
    onto.relate("actor", "cast", 0.7)
    onto.relate("actor", "star", 0.7)
    onto.alternative("matrix: revolutions", "matrix 3")
    onto.alternative("matrix: reloaded", "matrix 2")
    onto.relate("title", "name", 0.6)
    # publication domain (the DBLP workload)
    onto.is_a("inproceedings", "publication")
    onto.is_a("article", "publication")
    onto.relate("article", "paper", 0.85)
    onto.relate("inproceedings", "paper", 0.85)
    onto.synonym("booktitle", "venue")
    onto.relate("journal", "venue", 0.9)
    onto.relate("author", "creator", 0.8)
    return onto
