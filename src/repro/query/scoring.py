"""Relevance scoring for relaxed queries.

Section 1.1 fixes the qualitative behaviour: "the relevance of a result
decreases with increasing path length.  As an example, the relevance of a
match movie/cast/actor could be 0.8, whereas the relevance of a match
movie/follows/movie/cast/actor could be 0.2", and further "paths that
include at least one link traversal could be penalized".

:class:`ScoringModel` implements a multiplicative model:

* each step contributes ``decay ** (path_length - 1)`` — a direct child
  scores 1.0, every extra hop multiplies by ``decay``;
* each residual-link traversal multiplies by ``link_penalty``;
* a ``~`` name test multiplies by the ontology similarity of the matched
  tag, and a ``~=`` predicate by the vague text-match score;
* the query score is the product over steps (and predicates).

The defaults reproduce the paper's illustration: with ``decay=0.8``,
``movie/cast/actor`` (length 2) scores 0.8 and a five-step path through a
sequel link scores about 0.2.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.query.ontology import Ontology

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def _tokens(text: str) -> set:
    return set(_TOKEN_RE.findall(text.lower()))


@dataclass(frozen=True)
class ScoringModel:
    """Multiplicative relevance model for relaxed matches."""

    #: per-extra-hop decay of a descendant match
    decay: float = 0.8
    #: additional multiplier per residual link traversal on the path
    link_penalty: float = 0.85
    #: results below this score are dropped (the "negligible relevance"
    #: threshold of section 5.2)
    min_score: float = 0.05

    def __post_init__(self) -> None:
        for name in ("decay", "link_penalty"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")

    # ------------------------------------------------------------------
    # structural scores
    # ------------------------------------------------------------------
    def path_score(self, path_length: int, link_traversals: int = 0) -> float:
        """Score of one step matched at ``path_length`` hops.

        ``path_length`` 0 means the self match of descendants-or-self; it
        scores like a direct child (the step was satisfied immediately).
        """
        if path_length < 0:
            raise ValueError("path_length must be non-negative")
        extra_hops = max(0, path_length - 1)
        return (self.decay ** extra_hops) * (self.link_penalty ** link_traversals)

    def max_useful_distance(self) -> int:
        """Longest path whose score still clears ``min_score``.

        This is the distance threshold the client hands the PEE: "it can
        compute a threshold for the path length beyond which the resulting
        relevance is negligible" (section 5.2).
        """
        distance = 1
        while self.path_score(distance + 1) >= self.min_score:
            distance += 1
        return distance

    # ------------------------------------------------------------------
    # semantic scores
    # ------------------------------------------------------------------
    def tag_score(
        self,
        query_tag: Optional[str],
        matched_tag: str,
        similar: bool,
        ontology: Ontology,
    ) -> float:
        """Score of a name-test match (1.0 for exact / wildcard)."""
        if query_tag is None or query_tag.lower() == matched_tag.lower():
            return 1.0
        if not similar:
            return 0.0
        return ontology.similarity(query_tag, matched_tag)

    def text_score(self, op: str, expected: str, actual: str, ontology: Ontology) -> float:
        """Score of a value predicate match."""
        actual_stripped = actual.strip()
        if op == "=":
            return 1.0 if actual_stripped == expected else 0.0
        if op == "contains":
            return 1.0 if expected.lower() in actual_stripped.lower() else 0.0
        if op == "~=":
            if actual_stripped.lower() == expected.lower():
                return 1.0
            alternative = ontology.similarity(expected, actual_stripped)
            query_tokens = _tokens(expected)
            actual_tokens = _tokens(actual_stripped)
            if not query_tokens or not actual_tokens:
                overlap = 0.0
            else:
                overlap = len(query_tokens & actual_tokens) / len(
                    query_tokens | actual_tokens
                )
            return max(alternative, overlap)
        raise ValueError(f"unknown predicate operator {op!r}")
