"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``stats <dir>``
    Parse a directory of XML files and print the collection statistics the
    Meta Document Builder works from.

``build <dir> [--config NAME] [--partition-size N]``
    Run the build phase and print the build report (meta documents,
    strategies, rationales, sizes).

``query <dir> <start> <tag> [--config ...] [--limit K] [--max-distance D]
        [--exact-order]``
    Evaluate ``start//tag`` and print the streamed results.  ``start`` is
    ``document.xml`` (that document's root) or ``document.xml#id`` (the
    anchored element).  ``tag`` may be ``*`` for the wildcard.

``explain <dir> <start> <tag> [--config ...] [--max-distance D]
          [--limit K] [--exact-order] [--planner] [--json]``
    Print the :class:`~repro.core.planner.QueryPlan` for ``start//tag``
    without running it: chosen probe order, per-probe cost estimates,
    statically pruned meta documents, planner provenance (see
    ``docs/PLANNING.md``).  ``--planner`` builds with the cost-based
    probe planner enabled so the plan shows the planned order rather
    than the fixed discipline.

``relaxed <dir> <query> [--top-k K]``
    Evaluate a relaxed path query (e.g. ``'//~movie//actor'``) with the
    default ontology and print ranked matches.

``demo-dblp [--documents N]``
    Generate the synthetic DBLP corpus and print the paper's section 6
    comparison (index sizes + Figure 5 series) on it.

``metrics <dir> [--config ...] [--queries N] [--format json|prom]
          [--no-observability] [--trace]``
    Build the collection, run ``N`` sample descendant queries (one per
    document root, wildcard tag), and print the collected metrics in the
    chosen exporter format (see ``docs/OBSERVABILITY.md``).  ``--trace``
    additionally prints the last query's span tree.

``serve-bench [--documents N] [--workers 1,2,4,8] [--latency-ms MS]
              [--json]``
    Profile the concurrent query-serving layer (``docs/SERVING.md``):
    build a latency-bound synthetic DBLP collection, replay a repetitive
    query mix through ``FlixService`` at each worker count, cold and warm
    cache, and print throughput plus a result-integrity check.

``repair <dir> <index_dir> [--check]``
    Verify a persisted index's per-file checksums against its manifest
    and rebuild only the damaged files from the collection (see
    ``docs/RESILIENCE.md``).  ``--check`` reports damage without
    repairing (exit status 1 when damage is found).

``shard-plan <dir> <index_dir> [--shards N]``
    Partition a saved index's meta documents into ``N`` shards over the
    meta-level residual-link graph, persist the resulting
    ``shard_map.json`` next to the index, and print the plan (per-shard
    weights, cross-shard links; see ``docs/SHARDING.md``).

``serve <dir> <index_dir> [--shards N] [--host H] [--port P]
        [--cross-shard delegate|distributed] [--cache-size N]``
    Spawn ``N`` shard worker processes over the saved index (planning a
    shard map first if none exists), connect a ``ShardCoordinator``, and
    serve ``POST /query``, ``POST /explain``, ``GET /health``,
    ``GET /metrics`` over HTTP
    until interrupted (see ``docs/SHARDING.md``).  SIGTERM drains
    gracefully: in-flight requests finish, workers fsync their WAL
    tails, everything exits 0.

``recover <dir> <index_dir> [--snapshot]``
    Crash recovery (``docs/DURABILITY.md``): load the last saved
    snapshot, replay the ``wal.log`` beside it to its valid tail
    (discarding any torn record a crash left), and print what was
    applied.  ``--snapshot`` then saves the recovered state, which
    checkpoints (truncates) the log.

``wal <index_dir> [--json]``
    Inspect a write-ahead log: base/tail generations, the logged verbs,
    and whether a torn tail is present.

``durability-bench [--documents N] [--batch N] [--json] [--output FILE]``
    Profile the durability layer: WAL append throughput per fsync
    policy (commit/batch/none), crash-recovery replay throughput, and
    follower catch-up lag (``BENCH_durability.json`` methodology).

``shard-bench [--documents N] [--shards 2,4,8] [--latency-ms MS]
              [--json] [--output FILE]``
    Profile sharded multi-process serving: spawn each shard count as
    real worker subprocesses, drive the repeat-free request mix through
    a coordinator, and compare cold/warm throughput and byte-identity
    to the serial baseline (``BENCH_sharded.json`` methodology).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.collection.collection import XmlCollection
from repro.collection.io import load_collection, save_collection
from repro.collection.stats import collect_statistics
from repro.core.config import FlixConfig
from repro.core.framework import Flix

_CONFIG_CHOICES = ("auto", "naive", "maximal_ppo", "unconnected_hopi", "hybrid")


def _make_config(name: str, partition_size: int) -> Optional[FlixConfig]:
    if name == "auto":
        return None
    if name == "naive":
        return FlixConfig.naive()
    if name == "maximal_ppo":
        return FlixConfig.maximal_ppo()
    if name == "unconnected_hopi":
        return FlixConfig.unconnected_hopi(partition_size)
    if name == "hybrid":
        return FlixConfig.hybrid(partition_size)
    raise AssertionError(f"unreachable config {name!r}")


def _resolve_start(collection: XmlCollection, spec: str) -> int:
    if "#" in spec:
        document_name, fragment = spec.split("#", 1)
        document = collection.documents.get(document_name)
        if document is None:
            raise SystemExit(f"error: no document named {document_name!r}")
        element = document.anchors.get(fragment)
        if element is None:
            raise SystemExit(
                f"error: no element with id={fragment!r} in {document_name!r}"
            )
        return collection.node_id_of(element)
    if spec not in collection.documents:
        raise SystemExit(f"error: no document named {spec!r}")
    return collection.document_root(spec)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FliX: flexible indexing of linked XML collections "
        "(EDBT 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="print collection statistics")
    stats.add_argument("directory")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def add_build_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--config", choices=_CONFIG_CHOICES, default="auto")
        p.add_argument("--partition-size", type=int, default=5000)
        p.add_argument(
            "--jobs",
            type=positive_int,
            default=1,
            help="worker processes for the per-meta-document index builds "
            "(1 = sequential; any value yields an identical index)",
        )

    build = sub.add_parser("build", help="run the build phase, print the report")
    build.add_argument("directory")
    add_build_options(build)
    build.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase build timings (queue wait, graph, "
        "selection, index) and the slowest meta documents",
    )

    query = sub.add_parser("query", help="evaluate start//tag")
    query.add_argument("directory")
    query.add_argument("start", help="document.xml or document.xml#id")
    query.add_argument("tag", help="element name, or * for the wildcard")
    add_build_options(query)
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--max-distance", type=int, default=None)
    query.add_argument("--exact-order", action="store_true")
    query.add_argument(
        "--index-dir",
        default=None,
        help="persisted-index directory: loaded when present, created "
        "(build + save) otherwise",
    )

    explain = sub.add_parser(
        "explain",
        help="print the probe plan for start//tag without running it "
        "(docs/PLANNING.md)",
    )
    explain.add_argument("directory")
    explain.add_argument("start", help="document.xml or document.xml#id")
    explain.add_argument("tag", help="element name, or * for the wildcard")
    add_build_options(explain)
    explain.add_argument("--limit", type=int, default=None)
    explain.add_argument("--max-distance", type=int, default=None)
    explain.add_argument("--exact-order", action="store_true")
    explain.add_argument(
        "--planner",
        action="store_true",
        help="build with the cost-based probe planner enabled "
        "(equivalent to FLIX_PLANNER=1)",
    )
    explain.add_argument(
        "--index-dir",
        default=None,
        help="persisted-index directory: loaded when present, created "
        "(build + save) otherwise",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="print the raw QueryPlan JSON instead of the table",
    )

    relaxed = sub.add_parser("relaxed", help="evaluate a relaxed path query")
    relaxed.add_argument("directory")
    relaxed.add_argument("query")
    add_build_options(relaxed)
    relaxed.add_argument("--top-k", type=int, default=10)

    demo = sub.add_parser("demo-dblp", help="run the paper's DBLP comparison")
    demo.add_argument("--documents", type=int, default=300)

    metrics = sub.add_parser(
        "metrics", help="build, run sample queries, print collected metrics"
    )
    metrics.add_argument("directory")
    add_build_options(metrics)
    metrics.add_argument(
        "--queries",
        type=int,
        default=3,
        help="sample descendant queries to run before exporting (default 3)",
    )
    metrics.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="exporter: structured JSON or Prometheus text format",
    )
    metrics.add_argument(
        "--no-observability",
        action="store_true",
        help="build with FlixConfig.observability off (the export is then "
        "empty; useful for verifying the opt-out)",
    )
    metrics.add_argument(
        "--trace",
        action="store_true",
        help="also print the last query's span tree",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="profile the concurrent query-serving layer "
        "(workers x cold/warm cache)",
    )
    serve_bench.add_argument(
        "--documents",
        type=positive_int,
        default=24,
        help="synthetic DBLP documents to serve queries over (default 24)",
    )
    serve_bench.add_argument(
        "--workers",
        default="1,2,4,8",
        help="comma-separated worker counts to profile (default 1,2,4,8)",
    )
    serve_bench.add_argument(
        "--latency-ms",
        type=float,
        default=0.4,
        help="injected storage read latency in milliseconds; the workload "
        "is I/O-bound so threads overlap these stalls (default 0.4)",
    )
    serve_bench.add_argument(
        "--json",
        action="store_true",
        help="print the raw profile as JSON instead of the table",
    )

    repair = sub.add_parser(
        "repair", help="verify a persisted index and rebuild damaged files"
    )
    repair.add_argument("directory", help="the XML collection directory")
    repair.add_argument("index_dir", help="the persisted-index directory")
    repair.add_argument(
        "--check",
        action="store_true",
        help="only report damaged files (exit 1 when any), do not rebuild",
    )

    compact = sub.add_parser(
        "compact",
        help="merge a persisted index's incrementally-added meta documents "
        "in place (online compaction; see docs/MAINTENANCE.md)",
    )
    compact.add_argument("directory", help="the XML collection directory")
    compact.add_argument("index_dir", help="the persisted-index directory")
    compact.add_argument(
        "--check",
        action="store_true",
        help="only report whether compaction is advised (exit 1 when it "
        "is), do not compact",
    )
    compact.add_argument(
        "--min-metas",
        type=int,
        default=2,
        help="compact only when at least this many incrementally-added "
        "meta documents exist (default 2)",
    )

    shard_plan = sub.add_parser(
        "shard-plan",
        help="partition a saved index into N shards, write shard_map.json",
    )
    shard_plan.add_argument("directory", help="the XML collection directory")
    shard_plan.add_argument("index_dir", help="the persisted-index directory")
    shard_plan.add_argument(
        "--shards", type=positive_int, default=4,
        help="shard count to plan for (default 4)",
    )

    serve = sub.add_parser(
        "serve",
        help="spawn shard workers + coordinator, serve HTTP until "
        "interrupted (docs/SHARDING.md)",
    )
    serve.add_argument("directory", help="the XML collection directory")
    serve.add_argument("index_dir", help="the persisted-index directory")
    serve.add_argument(
        "--shards", type=positive_int, default=4,
        help="worker processes to spawn (default 4; re-plans the shard "
        "map when the saved one disagrees)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="front-door HTTP port (default 8080; 0 picks a free port)",
    )
    serve.add_argument(
        "--cross-shard",
        choices=("delegate", "distributed"),
        default="delegate",
        help="multi-shard strategy: delegate whole queries to the owning "
        "worker (default) or run the coordinator-side priority-queue "
        "merge over per-entry expansion RPCs",
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096,
        help="coordinator result-cache entries (0 disables; default 4096)",
    )

    recover = sub.add_parser(
        "recover",
        help="replay the write-ahead log onto the last snapshot "
        "(docs/DURABILITY.md)",
    )
    recover.add_argument("directory", help="the XML collection directory")
    recover.add_argument("index_dir", help="the persisted-index directory")
    recover.add_argument(
        "--snapshot",
        action="store_true",
        help="save the recovered state back to the index directory "
        "(checkpoints the log)",
    )
    recover.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the manifest checksum verification on load",
    )

    wal = sub.add_parser(
        "wal", help="inspect a write-ahead log's records and tail state"
    )
    wal.add_argument("index_dir", help="directory holding wal.log")
    wal.add_argument(
        "--json", action="store_true",
        help="print the inspection as JSON instead of the listing",
    )

    durability_bench = sub.add_parser(
        "durability-bench",
        help="profile WAL fsync policies, recovery replay, follower lag",
    )
    durability_bench.add_argument(
        "--documents", type=positive_int, default=24,
        help="synthetic DBLP documents in the base collection (default 24)",
    )
    durability_bench.add_argument(
        "--mutations", type=positive_int, default=12,
        help="maintenance verbs to log and replay (default 12)",
    )
    durability_bench.add_argument(
        "--json", action="store_true",
        help="print the raw profile as JSON instead of the table",
    )
    durability_bench.add_argument(
        "--output", default=None,
        help="also write the JSON profile to this file",
    )

    shard_bench = sub.add_parser(
        "shard-bench",
        help="profile sharded multi-process serving vs the serial baseline",
    )
    shard_bench.add_argument(
        "--documents", type=positive_int, default=16,
        help="synthetic DBLP documents to shard (default 16)",
    )
    shard_bench.add_argument(
        "--shards", default="2,4,8",
        help="comma-separated shard counts to profile (default 2,4,8)",
    )
    shard_bench.add_argument(
        "--latency-ms", type=float, default=10.0,
        help="injected storage latency per evaluator call, applied to "
        "the serial baseline and every worker alike (default 10.0)",
    )
    shard_bench.add_argument(
        "--json", action="store_true",
        help="print the raw profile as JSON instead of the table",
    )
    shard_bench.add_argument(
        "--output", default=None,
        help="also write the JSON profile to this file",
    )
    return parser


def _cmd_stats(args) -> int:
    collection = load_collection(args.directory)
    stats = collect_statistics(collection)
    print(stats.summary())
    print(f"link density:        {stats.link_density:.4f} links/element")
    print(f"links per document:  {stats.links_per_document:.2f}")
    print(f"mean document size:  {stats.mean_document_size:.1f} elements")
    print(f"unresolved links:    {len(collection.unresolved_links)}")
    top = sorted(stats.tag_histogram.items(), key=lambda kv: -kv[1])[:10]
    print("most frequent tags: ", ", ".join(f"{t} ({n})" for t, n in top))
    return 0


def _cmd_build(args) -> int:
    collection = load_collection(args.directory)
    config = _make_config(args.config, args.partition_size)
    flix = Flix.build(collection, config, jobs=args.jobs)
    print(flix.describe())
    if getattr(args, "profile", False):
        report = flix.report
        totals = report.phase_totals()
        print()
        print(
            f"build profile ({report.jobs} jobs, {report.executor} executor, "
            f"{report.total_seconds:.3f}s wall):"
        )
        for phase in ("graph", "selection", "index", "queue_wait"):
            print(f"  {phase:<11} {totals[phase]:8.3f}s summed across metas")
        slowest = sorted(
            report.meta_documents,
            key=lambda m: m.profile.busy_seconds,
            reverse=True,
        )[:5]
        for meta in slowest:
            p = meta.profile
            print(
                f"  slowest meta {meta.meta_id}: {p.busy_seconds:.3f}s "
                f"({meta.strategy}, {meta.node_count} nodes, on {p.worker})"
            )
    return 0


def _cmd_query(args) -> int:
    from pathlib import Path

    collection = load_collection(args.directory)
    config = _make_config(args.config, args.partition_size)
    index_dir = getattr(args, "index_dir", None)
    if index_dir and (Path(index_dir) / "manifest.json").is_file():
        flix = Flix.load(collection, index_dir)
        print(f"(loaded persisted index from {index_dir})")
    else:
        flix = Flix.build(collection, config, jobs=args.jobs)
        if index_dir:
            flix.save(index_dir)
            print(f"(built and saved index to {index_dir})")
    from repro.core.api import QueryRequest

    start = _resolve_start(collection, args.start)
    tag = None if args.tag == "*" else args.tag
    request = QueryRequest.descendants(
        start,
        tag=tag,
        max_distance=args.max_distance,
        limit=args.limit,
        exact_order=args.exact_order,
    )
    count = 0
    for result in flix.query_stream(request):
        info = collection.info(result.node)
        text = collection.text(result.node).strip()
        if len(text) > 60:
            text = text[:57] + "..."
        print(
            f"distance {result.distance:3d}  <{info.tag}> in {info.document}"
            + (f"  {text!r}" if text else "")
        )
        count += 1
    print(f"-- {count} results")
    return 0


def _cmd_explain(args) -> int:
    import json
    from pathlib import Path

    from repro.core.api import QueryRequest

    collection = load_collection(args.directory)
    config = _make_config(args.config, args.partition_size)
    if args.planner:
        if config is None:
            config = FlixConfig.recommend_for(collection, args.partition_size)
        config = config.with_planner()
    index_dir = getattr(args, "index_dir", None)
    if index_dir and (Path(index_dir) / "manifest.json").is_file():
        flix = Flix.load(collection, index_dir)
        print(f"(loaded persisted index from {index_dir})")
    else:
        flix = Flix.build(collection, config, jobs=args.jobs)
        if index_dir:
            flix.save(index_dir)
            print(f"(built and saved index to {index_dir})")
    start = _resolve_start(collection, args.start)
    tag = None if args.tag == "*" else args.tag
    request = QueryRequest.descendants(
        start,
        tag=tag,
        max_distance=args.max_distance,
        limit=args.limit,
        exact_order=args.exact_order,
    )
    plan = flix.explain(request)
    if args.json:
        print(json.dumps(plan.to_dict(), indent=2))
        return 0
    print(
        f"plan: kind={plan.kind} mode={plan.mode} order={plan.order} "
        f"prune={plan.prune} generation={plan.generation}"
    )
    if plan.source_metas:
        print(
            "source metas: "
            + ", ".join(str(m) for m in plan.source_metas)
        )
    if plan.probes:
        print(f"{'rank':>4}  {'meta':>4}  {'strategy':<8}  "
              f"{'est.matches':>11}  {'est.reach':>9}  {'fan-out':>7}")
        for probe in plan.probes:
            print(
                f"{probe.rank:>4}  {probe.meta_id:>4}  "
                f"{probe.strategy:<8}  {probe.estimated_matches:>11.1f}  "
                f"{probe.estimated_reach:>9.1f}  {probe.fan_out:>7}"
            )
    if plan.pruned_metas:
        print(
            "statically pruned metas: "
            + ", ".join(str(m) for m in plan.pruned_metas)
        )
    for key in sorted(plan.provenance):
        print(f"provenance.{key}: {plan.provenance[key]}")
    return 0


def _cmd_relaxed(args) -> int:
    from repro.query.engine import QueryEngine

    collection = load_collection(args.directory)
    config = _make_config(args.config, args.partition_size)
    flix = Flix.build(collection, config, jobs=args.jobs)
    engine = QueryEngine(flix)
    matches = engine.evaluate(args.query, top_k=args.top_k, auto_relax=True)
    for match in matches:
        info = collection.info(match.node)
        print(f"score {match.score:.3f}  <{info.tag}> in {info.document}")
    print(f"-- {len(matches)} results")
    return 0


def _cmd_demo_dblp(args) -> int:
    from repro.bench.harness import build_all_systems, time_to_k
    from repro.bench.reporting import BenchTable, format_series
    from repro.bench.workloads import figure5_query
    from repro.core.api import QueryRequest
    from repro.datasets.dblp import DblpSpec, generate_dblp
    from repro.storage.sizing import format_bytes

    collection = generate_dblp(DblpSpec(documents=args.documents))
    print(f"synthetic DBLP: {collection}")
    systems = build_all_systems(collection)
    table = BenchTable("index sizes", ["system", "size"])
    for system in systems:
        table.add_row(system.name, format_bytes(system.size_bytes))
    print()
    print(table.render())
    start, tag = figure5_query(collection)
    checkpoints = [1, 10, 50, 100]
    series = {
        system.name: time_to_k(
            lambda s=system: s.flix.query_stream(
                QueryRequest.descendants(start, tag=tag)
            ),
            checkpoints,
        )
        for system in systems
    }
    print()
    print(format_series("seconds to k results", checkpoints, series))
    return 0


def _cmd_metrics(args) -> int:
    collection = load_collection(args.directory)
    config = _make_config(args.config, args.partition_size)
    if config is None:
        config = FlixConfig.recommend_for(collection, args.partition_size)
    if args.no_observability:
        config = config.with_observability(False)
    flix = Flix.build(collection, config, jobs=args.jobs)
    roots = [
        collection.document_root(name)
        for name in sorted(collection.documents)[: max(0, args.queries)]
    ]
    from repro.core.api import QueryRequest

    for root in roots:
        for _ in flix.query_stream(QueryRequest.descendants(root)):
            pass
    output = flix.export_metrics(args.format)
    if output:
        print(output, end="" if output.endswith("\n") else "\n")
    else:
        print("(no metrics: observability is disabled)")
    if args.trace:
        trace = flix.trace_last_query()
        print()
        print(trace.render() if trace is not None else "(no query trace)")
    return 0


def _cmd_serve_bench(args) -> int:
    import json

    from repro.bench.serving import profile_concurrent_queries, render_profile

    try:
        worker_counts = tuple(
            int(part) for part in args.workers.split(",") if part.strip()
        )
    except ValueError:
        raise SystemExit(f"error: bad --workers list {args.workers!r}")
    if not worker_counts or any(count < 1 for count in worker_counts):
        raise SystemExit("error: --workers needs positive integers")
    profile = profile_concurrent_queries(
        documents=args.documents,
        lookup_latency_seconds=args.latency_ms / 1000.0,
        worker_counts=worker_counts,
    )
    if args.json:
        print(json.dumps(profile, indent=2))
    else:
        print(render_profile(profile))
    return 0


def _cmd_repair(args) -> int:
    from repro.core.persistence import repair_flix, verify_flix

    collection = load_collection(args.directory)
    damaged = verify_flix(collection, args.index_dir)
    if not damaged:
        print("index is intact; nothing to repair")
        return 0
    print("damaged files: " + ", ".join(damaged))
    if args.check:
        return 1
    repaired = repair_flix(collection, args.index_dir)
    print(f"rebuilt {len(repaired)} file(s): " + ", ".join(repaired))
    return 0


def _cmd_compact(args) -> int:
    collection = load_collection(args.directory)
    flix = Flix.load(collection, args.index_dir)
    candidates = flix.layout.compaction_candidates()
    if len(candidates) < max(args.min_metas, 2):
        print(
            f"{len(candidates)} incrementally-added meta document(s); "
            f"below the threshold of {args.min_metas} — nothing to compact"
        )
        return 0
    print(
        f"{len(candidates)} incrementally-added meta documents: "
        + ", ".join(str(m) for m in candidates)
    )
    if args.check:
        return 1
    merged = flix.compact(candidates)
    flix.save(args.index_dir)
    print(
        f"compacted into meta {merged.meta_id} ({merged.strategy}, "
        f"{len(merged.nodes)} nodes); layout generation "
        f"{flix.layout_generation}, saved in place"
    )
    return 0


def _cmd_shard_plan(args) -> int:
    from repro.shard.plan import ShardPlanner, write_shard_map

    collection = load_collection(args.directory)
    flix = Flix.load(collection, args.index_dir)
    shard_map = ShardPlanner(args.shards).plan(flix)
    path = write_shard_map(shard_map, args.index_dir)
    print(shard_map.describe())
    print(f"-> {path}")
    return 0


def _cmd_serve(args) -> int:
    from pathlib import Path

    from repro.core.config import CacheConfig
    from repro.shard.coordinator import ShardCoordinator
    from repro.shard.http import FrontDoor
    from repro.shard.plan import (
        SHARD_MAP_NAME,
        ShardPlanner,
        load_shard_map,
        write_shard_map,
    )
    from repro.shard.worker import spawn_worker

    collection = load_collection(args.directory)
    flix = Flix.load(collection, args.index_dir)
    map_path = Path(args.index_dir) / SHARD_MAP_NAME
    shard_map = load_shard_map(args.index_dir) if map_path.is_file() else None
    if shard_map is None or shard_map.shards != args.shards:
        shard_map = ShardPlanner(args.shards).plan(flix)
        write_shard_map(shard_map, args.index_dir)
        print(f"(planned {args.shards} shards -> {map_path})")
    workers = [
        spawn_worker(args.directory, args.index_dir, shard)
        for shard in range(shard_map.shards)
    ]
    coordinator = ShardCoordinator.connect(
        args.index_dir,
        [(worker.host, worker.port) for worker in workers],
        cache=(
            CacheConfig(maxsize=args.cache_size, shards=8)
            if args.cache_size > 0 else None
        ),
        cross_shard=args.cross_shard,
    )
    door = FrontDoor(coordinator, host=args.host, port=args.port)
    host, port = door.address
    for worker in workers:
        print(f"shard {worker.shard_id}: pid {worker.process.pid} "
              f"on {worker.host}:{worker.port}")
    print(f"front door: http://{host}:{port}  "
          f"(POST /query, POST /explain, GET /health, GET /metrics)")

    import signal
    import threading

    draining = threading.Event()

    def _on_sigterm(signum, frame):
        # drain off the signal frame: door.drain() must not run on the
        # thread stuck in serve_forever (it would deadlock on shutdown)
        if not draining.is_set():
            draining.set()
            print("\ndraining (SIGTERM)")
            threading.Thread(target=door.drain, daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        door.serve_forever()
        if draining.is_set():
            print("drained; shutting down")
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        signal.signal(signal.SIGTERM, previous)
        door.close()
        coordinator.shutdown_workers()
        coordinator.close()
        for worker in workers:
            worker.close()
    return 0


def _cmd_recover(args) -> int:
    from repro.wal import recover_flix

    collection = load_collection(args.directory)
    flix, report = recover_flix(
        collection, args.index_dir, verify=not args.no_verify
    )
    print(report.describe())
    if report.applied_verbs:
        print("applied verbs: " + ", ".join(report.applied_verbs))
    if args.snapshot:
        # a checkpoint moves the collection and the index together: the
        # replayed verbs may have grown/shrunk the document set, and the
        # manifest fingerprints the collection it was saved against
        save_collection(flix.collection, args.directory, prune=True)
        flix.save(args.index_dir)
        print(
            f"snapshot saved at generation {flix.layout_generation}; "
            "log checkpointed"
        )
    return 0


def _cmd_wal(args) -> int:
    import json

    from repro.wal import BEGIN_VERB, read_wal, wal_path_for

    path = wal_path_for(args.index_dir)
    if not path.is_file():
        print(f"no write-ahead log at {path}")
        return 1
    records, discarded = read_wal(path)
    base = records[0].generation if records else 0
    tail = records[-1].generation if records else 0
    if args.json:
        print(json.dumps({
            "path": str(path),
            "base_generation": base,
            "tail_generation": tail,
            "records": [
                {"verb": r.verb, "generation": r.generation}
                for r in records
            ],
            "discarded_bytes": discarded,
        }, indent=2))
        return 0
    print(f"{path}: base generation {base}, tail generation {tail}")
    for record in records:
        if record.verb == BEGIN_VERB:
            continue
        print(f"  generation {record.generation:4d}  {record.verb}")
    if discarded:
        print(f"  (torn tail: {discarded} byte(s) will be discarded)")
    return 0


def _cmd_durability_bench(args) -> int:
    import json

    from repro.bench.durability import (
        profile_durability,
        render_durability_profile,
    )

    profile = profile_durability(
        documents=args.documents, mutations=args.mutations
    )
    if args.json:
        print(json.dumps(profile, indent=2))
    else:
        print(render_durability_profile(profile))
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(profile, indent=2) + "\n", encoding="utf-8"
        )
        print(f"-> {args.output}")
    return 0


def _cmd_shard_bench(args) -> int:
    import json

    from repro.bench.sharding import (
        profile_sharded_queries,
        render_sharded_profile,
    )

    try:
        shard_counts = tuple(
            int(part) for part in args.shards.split(",") if part.strip()
        )
    except ValueError:
        raise SystemExit(f"error: bad --shards list {args.shards!r}")
    if not shard_counts or any(count < 1 for count in shard_counts):
        raise SystemExit("error: --shards needs positive integers")
    profile = profile_sharded_queries(
        documents=args.documents,
        lookup_latency_seconds=args.latency_ms / 1000.0,
        shard_counts=shard_counts,
    )
    if args.json:
        print(json.dumps(profile, indent=2))
    else:
        print(render_sharded_profile(profile))
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(profile, indent=2) + "\n", encoding="utf-8"
        )
        print(f"-> {args.output}")
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "build": _cmd_build,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "relaxed": _cmd_relaxed,
    "demo-dblp": _cmd_demo_dblp,
    "metrics": _cmd_metrics,
    "serve-bench": _cmd_serve_bench,
    "repair": _cmd_repair,
    "compact": _cmd_compact,
    "shard-plan": _cmd_shard_plan,
    "serve": _cmd_serve,
    "shard-bench": _cmd_shard_bench,
    "recover": _cmd_recover,
    "wal": _cmd_wal,
    "durability-bench": _cmd_durability_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
