"""Load and save collections from/to a directory of XML files.

A collection on disk is simply a directory of ``*.xml`` files whose
relative file names are the document names — which is exactly what the
``xlink:href`` values in the documents refer to, so links resolve without
any extra manifest.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Union

from repro.collection.builder import build_collection
from repro.collection.collection import XmlCollection
from repro.collection.document import XmlDocument
from repro.xmlmodel.parser import XmlParseError
from repro.xmlmodel.serializer import serialize

PathLike = Union[str, os.PathLike]


class CollectionLoadError(ValueError):
    """A document in the directory failed to parse."""

    def __init__(self, path: Path, cause: XmlParseError) -> None:
        super().__init__(f"{path}: {cause}")
        self.path = path
        self.cause = cause


def load_collection(
    directory: PathLike,
    pattern: str = "*.xml",
    strict: bool = True,
) -> XmlCollection:
    """Parse every matching file under ``directory`` into one collection.

    File names relative to ``directory`` (POSIX separators) become document
    names.  With ``strict=False``, unparseable files are skipped instead of
    aborting the load — web crawls always contain some broken XML.
    """
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"{root} is not a directory")
    documents: List[XmlDocument] = []
    for path in sorted(root.rglob(pattern)):
        if not path.is_file():
            continue
        name = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
            documents.append(XmlDocument.from_text(name, text))
        except XmlParseError as error:
            if strict:
                raise CollectionLoadError(path, error) from error
    return build_collection(documents)


def save_collection(collection: XmlCollection, directory: PathLike) -> int:
    """Serialize every document of ``collection`` into ``directory``.

    Returns the number of files written.  Document names may contain
    subdirectory components; parents are created as needed.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    resolved_root = root.resolve()
    written = 0
    for name in sorted(collection.documents):
        target = root / name
        if resolved_root not in target.resolve().parents:
            # refuse to escape the target directory via '..' in names
            raise ValueError(f"document name {name!r} escapes {root}")
        target.parent.mkdir(parents=True, exist_ok=True)
        document = collection.documents[name]
        target.write_text(
            serialize(document.root, declaration=True), encoding="utf-8"
        )
        written += 1
    return written
