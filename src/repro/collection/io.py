"""Load and save collections from/to a directory of XML files.

A collection on disk is simply a directory of ``*.xml`` files whose
relative file names are the document names — which is exactly what the
``xlink:href`` values in the documents refer to, so links resolve without
any extra manifest.

One sidecar rides along: ``collection_layout.json`` records each
document's first node id and the registration order.  A collection that
only ever grew in sorted-name order reloads identically with or without
it, but an incrementally mutated collection (documents added out of
order, removals leaving tombstoned id holes) needs the sidecar to
round-trip — node ids are assigned by registration order and never
reused, so a sorted re-read would renumber every node and silently
orphan any index saved against the old ids.  Directories written by
other tools simply lack the file and load the classic way.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.collection.builder import build_collection, resolve_collection_links
from repro.collection.collection import XmlCollection
from repro.collection.document import XmlDocument
from repro.storage.atomic import atomic_write_text
from repro.xmlmodel.parser import XmlParseError
from repro.xmlmodel.serializer import serialize

PathLike = Union[str, os.PathLike]

LAYOUT_NAME = "collection_layout.json"
LAYOUT_VERSION = 1


class CollectionLoadError(ValueError):
    """A document in the directory failed to parse."""

    def __init__(self, path: Path, cause: XmlParseError) -> None:
        super().__init__(f"{path}: {cause}")
        self.path = path
        self.cause = cause


def _read_layout(root: Path) -> Optional[Dict[str, int]]:
    """The persisted name -> first-node-id map (insertion-ordered), or
    ``None`` for directories without (or with an unusable) sidecar."""
    path = root / LAYOUT_NAME
    if not path.is_file():
        return None
    try:
        layout = json.loads(path.read_text(encoding="utf-8"))
        if layout.get("format_version") != LAYOUT_VERSION:
            return None
        starts = layout.get("starts")
        if not isinstance(starts, dict):
            return None
        # int() inside the guard: non-integer start values are just
        # another form of corrupt sidecar, degrading to the classic load
        return {str(name): int(start) for name, start in starts.items()}
    except (OSError, ValueError, TypeError, AttributeError):
        return None


def _assemble(
    documents: List[XmlDocument], starts: Optional[Dict[str, int]]
) -> XmlCollection:
    """Build the collection, honoring a persisted id layout if present."""
    if not starts:
        return build_collection(documents)
    by_name = {document.name: document for document in documents}
    collection = XmlCollection()
    ordered: List[XmlDocument] = []
    for name in sorted(starts, key=starts.__getitem__):
        document = by_name.pop(name, None)
        if document is None:
            continue  # listed but missing/unparseable on disk
        collection._register_document_at(document, starts[name])
        ordered.append(document)
    # files the sidecar does not know (hand-dropped into the directory)
    # append after everything it does, in the classic sorted order
    for name in sorted(by_name):
        collection._register_document(by_name[name])
        ordered.append(by_name[name])
    resolve_collection_links(collection, ordered)
    return collection


def load_collection(
    directory: PathLike,
    pattern: str = "*.xml",
    strict: bool = True,
) -> XmlCollection:
    """Parse every matching file under ``directory`` into one collection.

    File names relative to ``directory`` (POSIX separators) become document
    names.  With ``strict=False``, unparseable files are skipped instead of
    aborting the load — web crawls always contain some broken XML.  A
    ``collection_layout.json`` sidecar (written by :func:`save_collection`)
    pins each document's node ids so mutated collections reload with the
    exact id assignment they were saved under.
    """
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"{root} is not a directory")
    documents: List[XmlDocument] = []
    for path in sorted(root.rglob(pattern)):
        if not path.is_file():
            continue
        name = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
            documents.append(XmlDocument.from_text(name, text))
        except XmlParseError as error:
            if strict:
                raise CollectionLoadError(path, error) from error
    return _assemble(documents, _read_layout(root))


def save_collection(
    collection: XmlCollection,
    directory: PathLike,
    prune: bool = False,
) -> int:
    """Serialize every document of ``collection`` into ``directory``.

    Returns the number of files written.  Document names may contain
    subdirectory components; parents are created as needed.  The id
    layout goes into ``collection_layout.json`` beside the documents
    (atomically — a checkpoint interrupted mid-write must not leave a
    torn sidecar that would renumber every node on the next load).

    ``prune=True`` additionally deletes ``*.xml`` files of documents no
    longer in the collection — the checkpoint flavor: without it, a file
    removed via ``remove_document`` would resurrect on the next load.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    resolved_root = root.resolve()
    written = 0
    for name in sorted(collection.documents):
        target = root / name
        if resolved_root not in target.resolve().parents:
            # refuse to escape the target directory via '..' in names
            raise ValueError(f"document name {name!r} escapes {root}")
        target.parent.mkdir(parents=True, exist_ok=True)
        document = collection.documents[name]
        target.write_text(
            serialize(document.root, declaration=True), encoding="utf-8"
        )
        written += 1
    if prune:
        for path in sorted(root.rglob("*.xml")):
            if path.is_file():
                name = path.relative_to(root).as_posix()
                if name not in collection.documents:
                    path.unlink()
    starts = {
        name: node_ids[0]
        for name, node_ids in collection._nodes_by_document.items()
    }
    atomic_write_text(
        root / LAYOUT_NAME,
        json.dumps(
            {"format_version": LAYOUT_VERSION, "starts": starts},
            indent=2,
            sort_keys=False,
        )
        + "\n",
    )
    return written
