"""The union element graph G_X of an XML collection (paper section 2.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.collection.document import XmlDocument
from repro.graph.digraph import Digraph
from repro.xmlmodel.dom import XmlElement

NodeId = int


@dataclass(frozen=True)
class NodeInfo:
    """What the indexes need to know about one element node."""

    node_id: NodeId
    document: str
    tag: str
    depth: int


class XmlCollection:
    """Element-level view of a set of interlinked XML documents.

    Every element of every document gets a dense integer node id (document
    order within each document, documents in sorted-name order), which keeps
    the index structures compact and their serialization deterministic.

    The union graph :attr:`graph` contains tree edges (parent -> child) and
    link edges (link source -> link target).  The two edge classes are kept
    distinguishable because the Meta Document Builder treats them very
    differently: Maximal PPO, for instance, must know which edges are links
    so it can cut them (section 4.3).
    """

    def __init__(self) -> None:
        self.documents: Dict[str, XmlDocument] = {}
        self.graph = Digraph()
        self.link_edges: Set[Tuple[NodeId, NodeId]] = set()
        # Links whose target document/anchor does not exist in the
        # collection; populated by repro.collection.builder.
        self.unresolved_links: List[object] = []
        self._info: List[Optional[NodeInfo]] = []
        self._element_by_id: List[Optional[XmlElement]] = []
        self._id_by_element: Dict[int, NodeId] = {}
        self._nodes_by_document: Dict[str, List[NodeId]] = {}
        self._nodes_by_tag: Dict[str, List[NodeId]] = {}
        self._roots: Dict[str, NodeId] = {}
        # ids tombstoned by _unregister_document; never reused, so node
        # ids stay stable across any add/remove sequence
        self._removed_count = 0

    # ------------------------------------------------------------------
    # construction (used by repro.collection.builder)
    # ------------------------------------------------------------------
    def _register_document(self, document: XmlDocument) -> None:
        if document.name in self.documents:
            raise ValueError(f"duplicate document name {document.name!r}")
        self.documents[document.name] = document
        node_ids: List[NodeId] = []
        stack: List[Tuple[XmlElement, int]] = [(document.root, 0)]
        while stack:
            element, depth = stack.pop()
            node_id = len(self._info)
            info = NodeInfo(node_id, document.name, element.name, depth)
            self._info.append(info)
            self._element_by_id.append(element)
            self._id_by_element[id(element)] = node_id
            node_ids.append(node_id)
            self.graph.add_node(node_id)
            self._nodes_by_tag.setdefault(element.name, []).append(node_id)
            if element.parent is not None:
                self.graph.add_edge(self._id_by_element[id(element.parent)], node_id)
            stack.extend(
                (child, depth + 1) for child in reversed(element.children)
            )
        self._nodes_by_document[document.name] = node_ids
        self._roots[document.name] = node_ids[0]

    def _register_document_at(
        self, document: XmlDocument, start: NodeId
    ) -> None:
        """Register ``document`` with its first node id pinned to ``start``.

        Used when rebuilding a collection whose id layout was persisted
        (see :mod:`repro.collection.io`): ids below ``start`` that no
        surviving document occupies become tombstoned padding, exactly
        like the holes :meth:`_unregister_document` leaves behind — so an
        incrementally grown-and-shrunk collection round-trips through
        disk with every surviving node id unchanged.
        """
        if start < len(self._info):
            raise ValueError(
                f"cannot register {document.name!r} at node id {start}: "
                f"ids up to {len(self._info)} are already assigned"
            )
        padding = start - len(self._info)
        if padding:
            self._info.extend([None] * padding)
            self._element_by_id.extend([None] * padding)
            self._removed_count += padding
        self._register_document(document)

    def _add_link_edge(self, source: NodeId, target: NodeId) -> None:
        if not self.graph.has_edge(source, target):
            self.graph.add_edge(source, target)
            self.link_edges.add((source, target))

    def _unregister_document(self, name: str) -> Set[NodeId]:
        """Remove one document: tombstone its nodes, drop incident edges.

        Node ids are never reused — the removed slots stay ``None`` in the
        dense id-indexed tables, so surviving ids (and everything keyed on
        them: indexes, caches, residual links of *other* documents) remain
        valid.  Returns the removed node ids.  Link bookkeeping above the
        graph level (``unresolved_links``, re-dangling) is handled by
        :func:`repro.collection.builder.unregister_document`.
        """
        if name not in self.documents:
            raise KeyError(f"no document named {name!r}")
        del self.documents[name]
        node_ids = self._nodes_by_document.pop(name)
        removed = set(node_ids)
        for u, v in list(self.link_edges):
            if u in removed or v in removed:
                self.link_edges.discard((u, v))
        for node_id in node_ids:
            self.graph.remove_node(node_id)
            info = self._info[node_id]
            bucket = self._nodes_by_tag.get(info.tag)
            if bucket is not None:
                bucket.remove(node_id)
                if not bucket:
                    del self._nodes_by_tag[info.tag]
            element = self._element_by_id[node_id]
            self._id_by_element.pop(id(element), None)
            self._info[node_id] = None
            self._element_by_id[node_id] = None
        del self._roots[name]
        self._removed_count += len(node_ids)
        return removed

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Live elements (tombstoned ids from removed documents excluded)."""
        return len(self._info) - self._removed_count

    @property
    def document_count(self) -> int:
        return len(self.documents)

    @property
    def tree_edge_count(self) -> int:
        return self.graph.edge_count - len(self.link_edges)

    @property
    def link_edge_count(self) -> int:
        return len(self.link_edges)

    def node_ids(self) -> Iterator[NodeId]:
        """Live node ids, ascending (skips removed documents' tombstones)."""
        if self._removed_count == 0:
            return iter(range(len(self._info)))
        return (
            node_id
            for node_id, info in enumerate(self._info)
            if info is not None
        )

    def info(self, node_id: NodeId) -> NodeInfo:
        return self._info[node_id]

    def tag(self, node_id: NodeId) -> str:
        return self._info[node_id].tag

    def element(self, node_id: NodeId) -> XmlElement:
        return self._element_by_id[node_id]

    def node_id_of(self, element: XmlElement) -> NodeId:
        """The id of an element object that belongs to this collection."""
        try:
            return self._id_by_element[id(element)]
        except KeyError:
            raise KeyError("element is not part of this collection") from None

    def text(self, node_id: NodeId) -> str:
        return self._element_by_id[node_id].full_text

    def document_nodes(self, name: str) -> List[NodeId]:
        return self._nodes_by_document[name]

    def document_root(self, name: str) -> NodeId:
        return self._roots[name]

    def nodes_with_tag(self, tag: str) -> List[NodeId]:
        """All node ids with the given element name (possibly empty)."""
        return self._nodes_by_tag.get(tag, [])

    def tags(self) -> List[str]:
        return sorted(self._nodes_by_tag)

    def is_link_edge(self, source: NodeId, target: NodeId) -> bool:
        return (source, target) in self.link_edges

    def tree_graph(self) -> Digraph:
        """The union graph with all link edges removed (a forest)."""
        tree = Digraph()
        for node in self.graph.nodes():
            tree.add_node(node)
        for u, v in self.graph.edges():
            if (u, v) not in self.link_edges:
                tree.add_edge(u, v)
        return tree

    def find_by_text(self, tag: str, needle: str) -> List[NodeId]:
        """Nodes with the given tag whose full text contains ``needle``.

        A convenience for examples and workload generators ("Mohan's VLDB 99
        paper about ARIES" in section 6 is located exactly this way).
        """
        return [
            node_id
            for node_id in self.nodes_with_tag(tag)
            if needle in self.text(node_id)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"XmlCollection(documents={self.document_count}, "
            f"elements={self.node_count}, links={self.link_edge_count})"
        )
