"""Collection statistics driving meta-document and strategy selection.

Section 4.1: building meta documents and selecting index strategies "heavily
depend on the structure of the document collection, e.g., the number of
documents, the distribution of the document sizes, link structure, and the
average number of links per document".  This module computes exactly those
figures, for whole collections and for candidate meta documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.collection.collection import NodeId, XmlCollection
from repro.graph.digraph import Digraph
from repro.graph.treecheck import is_forest


@dataclass
class CollectionStats:
    """Aggregate structural statistics of a collection (or a node subset)."""

    document_count: int
    element_count: int
    tree_edge_count: int
    link_edge_count: int
    intra_document_links: int
    inter_document_links: int
    max_depth: int
    distinct_tags: int
    tag_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def link_density(self) -> float:
        """Link edges per element — the key knob in the ISS rules of thumb."""
        if self.element_count == 0:
            return 0.0
        return self.link_edge_count / self.element_count

    @property
    def intra_link_fraction(self) -> Optional[float]:
        """Share of links that stay inside one document (None if linkless)."""
        if self.link_edge_count == 0:
            return None
        return self.intra_document_links / self.link_edge_count

    @property
    def links_per_document(self) -> float:
        if self.document_count == 0:
            return 0.0
        return self.link_edge_count / self.document_count

    @property
    def mean_document_size(self) -> float:
        if self.document_count == 0:
            return 0.0
        return self.element_count / self.document_count

    def summary(self) -> str:
        return (
            f"{self.document_count} documents, {self.element_count} elements, "
            f"{self.link_edge_count} links "
            f"({self.inter_document_links} inter-document), "
            f"max depth {self.max_depth}, {self.distinct_tags} tags"
        )


def collect_statistics(
    collection: XmlCollection,
    nodes: Optional[Iterable[NodeId]] = None,
) -> CollectionStats:
    """Statistics for the whole collection or for a node subset.

    When ``nodes`` is given (a candidate meta document), only edges with both
    endpoints inside the subset are counted, matching how the meta document's
    own graph will look.
    """
    if nodes is None:
        node_set = None
        graph: Digraph = collection.graph
        documents = set(collection.documents)
        considered = list(collection.node_ids())
    else:
        node_set = set(nodes)
        graph = collection.graph.subgraph(node_set)
        documents = {collection.info(n).document for n in node_set}
        considered = sorted(node_set)

    tag_histogram: Dict[str, int] = {}
    max_depth = 0
    for node_id in considered:
        info = collection.info(node_id)
        tag_histogram[info.tag] = tag_histogram.get(info.tag, 0) + 1
        if info.depth > max_depth:
            max_depth = info.depth

    intra = inter = 0
    for u, v in collection.link_edges:
        if node_set is not None and (u not in node_set or v not in node_set):
            continue
        if collection.info(u).document == collection.info(v).document:
            intra += 1
        else:
            inter += 1

    link_count = intra + inter
    total_edges = graph.edge_count
    return CollectionStats(
        document_count=len(documents),
        element_count=graph.node_count,
        tree_edge_count=total_edges - link_count,
        link_edge_count=link_count,
        intra_document_links=intra,
        inter_document_links=inter,
        max_depth=max_depth,
        distinct_tags=len(tag_histogram),
        tag_histogram=tag_histogram,
    )


def subset_is_tree_shaped(collection: XmlCollection, nodes: Iterable[NodeId]) -> bool:
    """True iff the induced element graph of ``nodes`` is a forest.

    This is the predicate that decides whether PPO is admissible for a
    candidate meta document.
    """
    return is_forest(collection.graph.subgraph(set(nodes)))
