"""One XML document of a collection."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.xmlmodel.dom import XmlElement
from repro.xmlmodel.links import Link, collect_anchors, extract_links
from repro.xmlmodel.parser import parse_document


class XmlDocument:
    """A named document: its DOM root plus derived link/anchor tables.

    ``name`` is the collection-unique identifier other documents use in
    ``xlink:href`` values (for file-backed collections it is the file name).
    """

    def __init__(self, name: str, root: XmlElement) -> None:
        if not name:
            raise ValueError("document name must be non-empty")
        self.name = name
        self.root = root
        self._elements: Optional[List[XmlElement]] = None
        self._anchors: Optional[Dict[str, XmlElement]] = None
        self._links: Optional[List[Link]] = None

    @classmethod
    def from_text(cls, name: str, text: str) -> "XmlDocument":
        return cls(name, parse_document(text))

    @property
    def elements(self) -> List[XmlElement]:
        """All elements in document (pre)order; cached."""
        if self._elements is None:
            self._elements = list(self.root.iter())
        return self._elements

    @property
    def element_count(self) -> int:
        return len(self.elements)

    @property
    def anchors(self) -> Dict[str, XmlElement]:
        """``id`` attribute value -> element."""
        if self._anchors is None:
            self._anchors = collect_anchors(self.root)
        return self._anchors

    @property
    def links(self) -> List[Link]:
        """All idref/XLink links declared anywhere in the document."""
        if self._links is None:
            self._links = extract_links(self.root)
        return self._links

    @property
    def max_depth(self) -> int:
        depth = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            if d > depth:
                depth = d
            stack.extend((child, d + 1) for child in node.children)
        return depth

    def invalidate_caches(self) -> None:
        """Drop derived tables after a DOM mutation."""
        self._elements = None
        self._anchors = None
        self._links = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"XmlDocument({self.name!r}, elements={self.element_count})"
