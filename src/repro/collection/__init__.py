"""The paper's XML data model (section 2.1).

A collection of interlinked XML documents ``X = {d1, ..., dn}`` is
represented by the union graph ``G_X = (V_X, E_X)``: one node per element,
one edge per parent-child relationship, plus one edge per resolved intra- or
inter-document link.  Nodes carry integer ids so that index structures can
store them compactly.
"""

from repro.collection.document import XmlDocument
from repro.collection.collection import NodeInfo, XmlCollection
from repro.collection.builder import build_collection
from repro.collection.io import CollectionLoadError, load_collection, save_collection
from repro.collection.stats import CollectionStats, collect_statistics

__all__ = [
    "XmlDocument",
    "XmlCollection",
    "NodeInfo",
    "build_collection",
    "load_collection",
    "save_collection",
    "CollectionLoadError",
    "CollectionStats",
    "collect_statistics",
]
