"""Build the union graph from a set of documents, resolving all links.

Resolution rules (matching :mod:`repro.xmlmodel.links`):

* an intra-document link targets the anchor with the matching ``id`` in the
  same document;
* an inter-document link ``doc#frag`` targets that anchor in ``doc``;
* an inter-document link ``doc`` (no fragment) targets ``doc``'s root —
  the common case on the web and the one Maximal PPO exploits ("all links
  point to root elements", section 4.3).

Dangling links (unknown document or anchor) are collected on
``collection.unresolved_links`` instead of raising: heterogeneous web-scale
collections always contain broken links, and an indexing framework must not
fall over because of them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.collection.collection import NodeId, XmlCollection
from repro.collection.document import XmlDocument
from repro.xmlmodel.dom import XmlElement
from repro.xmlmodel.links import Link


def build_collection(documents: Iterable[XmlDocument]) -> XmlCollection:
    """Assemble an :class:`XmlCollection` from parsed documents.

    Documents are registered in sorted-name order so node ids — and with
    them every serialized index — are deterministic for a given input set.
    """
    collection = XmlCollection()
    ordered = sorted(documents, key=lambda d: d.name)
    for document in ordered:
        collection._register_document(document)
    resolve_collection_links(collection, ordered)
    return collection


def resolve_collection_links(
    collection: XmlCollection, documents: Iterable[XmlDocument]
) -> None:
    """Resolve every document's links into union-graph link edges.

    Shared by :func:`build_collection` and the layout-preserving loader
    (:mod:`repro.collection.io`); dangling links land on
    ``collection.unresolved_links``.
    """
    for document in documents:
        for link in document.links:
            target = _resolve(collection, document, link)
            if target is None:
                collection.unresolved_links.append(link)
                continue
            source_id = collection.node_id_of(link.source)
            target_id = collection.node_id_of(target)
            if source_id != target_id:
                collection._add_link_edge(source_id, target_id)


def register_document(
    collection: XmlCollection,
    document: XmlDocument,
) -> List[tuple]:
    """Add one document to an existing collection (incremental growth).

    Returns the list of *new link edges* — the new document's resolved
    links plus any previously-dangling links that the new document's name
    or anchors now satisfy.  Callers (the framework's ``add_document``)
    turn these into residual links or index them.
    """
    collection._register_document(document)
    new_edges: List[tuple] = []

    def try_add(source_document: XmlDocument, link: Link) -> bool:
        target = _resolve(collection, source_document, link)
        if target is None:
            return False
        source_id = collection.node_id_of(link.source)
        target_id = collection.node_id_of(target)
        if source_id != target_id and not collection.graph.has_edge(
            source_id, target_id
        ):
            collection._add_link_edge(source_id, target_id)
            new_edges.append((source_id, target_id))
        return True

    # the new document's own links that fail to resolve are collected
    # apart from the pre-existing dangling ones: resolution is
    # deterministic within one call, so retrying them below could only
    # repeat the exact lookup that just failed (and historically *did* —
    # the first loop appended them to ``collection.unresolved_links``
    # and the retry loop then resolved each of them a second time)
    failed_this_call: List[Link] = []
    for link in document.links:
        if not try_add(document, link):
            failed_this_call.append(link)

    # links that dangled before may now point at the new document
    still_unresolved = []
    for link in collection.unresolved_links:
        source_doc_name = collection.info(
            collection.node_id_of(link.source)
        ).document
        if not try_add(collection.documents[source_doc_name], link):
            still_unresolved.append(link)
    collection.unresolved_links[:] = still_unresolved + failed_this_call
    return new_edges


def unregister_document(
    collection: XmlCollection,
    name: str,
) -> Tuple[Set[NodeId], List[Link]]:
    """Remove one document from an existing collection (incremental shrink).

    Returns ``(removed_node_ids, redangled_links)``.  The removed
    document's nodes are tombstoned (ids never reused) and every edge
    incident to them — tree, link, inbound or outbound — disappears from
    the union graph.  Links of *other* documents that resolved into the
    removed one dangle again and rejoin ``collection.unresolved_links``;
    the removed document's own unresolved links are dropped.  Callers
    (the framework's ``remove_document``) mirror this in the index layer
    by tombstoning the meta document and its residual links.
    """
    document = collection.documents.get(name)
    if document is None:
        raise KeyError(f"no document named {name!r}")
    own_link_ids = {id(link) for link in document.links}
    redangled: List[Link] = []
    for other_name in sorted(collection.documents):
        if other_name == name:
            continue
        for link in collection.documents[other_name].links:
            if link.target_document == name:
                redangled.append(link)
    removed = collection._unregister_document(name)
    kept = [
        link
        for link in collection.unresolved_links
        if id(link) not in own_link_ids
    ]
    # a link may target the removed document *and* already dangle (bad
    # fragment); keep its single existing entry rather than adding another
    kept_ids = {id(link) for link in kept}
    kept.extend(link for link in redangled if id(link) not in kept_ids)
    collection.unresolved_links[:] = kept
    return removed, redangled


def _resolve(
    collection: XmlCollection,
    document: XmlDocument,
    link: Link,
) -> Optional[XmlElement]:
    if link.is_intra_document:
        return document.anchors.get(link.target_fragment or "")
    target_doc = collection.documents.get(link.target_document)
    if target_doc is None:
        return None
    if link.target_fragment is None:
        return target_doc.root
    return target_doc.anchors.get(link.target_fragment)
