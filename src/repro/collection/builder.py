"""Build the union graph from a set of documents, resolving all links.

Resolution rules (matching :mod:`repro.xmlmodel.links`):

* an intra-document link targets the anchor with the matching ``id`` in the
  same document;
* an inter-document link ``doc#frag`` targets that anchor in ``doc``;
* an inter-document link ``doc`` (no fragment) targets ``doc``'s root —
  the common case on the web and the one Maximal PPO exploits ("all links
  point to root elements", section 4.3).

Dangling links (unknown document or anchor) are collected on
``collection.unresolved_links`` instead of raising: heterogeneous web-scale
collections always contain broken links, and an indexing framework must not
fall over because of them.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.collection.collection import XmlCollection
from repro.collection.document import XmlDocument
from repro.xmlmodel.dom import XmlElement
from repro.xmlmodel.links import Link


def build_collection(documents: Iterable[XmlDocument]) -> XmlCollection:
    """Assemble an :class:`XmlCollection` from parsed documents.

    Documents are registered in sorted-name order so node ids — and with
    them every serialized index — are deterministic for a given input set.
    """
    collection = XmlCollection()
    ordered = sorted(documents, key=lambda d: d.name)
    for document in ordered:
        collection._register_document(document)
    for document in ordered:
        for link in document.links:
            target = _resolve(collection, document, link)
            if target is None:
                collection.unresolved_links.append(link)
                continue
            source_id = collection.node_id_of(link.source)
            target_id = collection.node_id_of(target)
            if source_id != target_id:
                collection._add_link_edge(source_id, target_id)
    return collection


def register_document(
    collection: XmlCollection,
    document: XmlDocument,
) -> List[tuple]:
    """Add one document to an existing collection (incremental growth).

    Returns the list of *new link edges* — the new document's resolved
    links plus any previously-dangling links that the new document's name
    or anchors now satisfy.  Callers (the framework's ``add_document``)
    turn these into residual links or index them.
    """
    collection._register_document(document)
    new_edges: List[tuple] = []

    def try_add(source_document: XmlDocument, link: Link) -> bool:
        target = _resolve(collection, source_document, link)
        if target is None:
            return False
        source_id = collection.node_id_of(link.source)
        target_id = collection.node_id_of(target)
        if source_id != target_id and not collection.graph.has_edge(
            source_id, target_id
        ):
            collection._add_link_edge(source_id, target_id)
            new_edges.append((source_id, target_id))
        return True

    for link in document.links:
        if not try_add(document, link):
            collection.unresolved_links.append(link)

    # links that dangled before may now point at the new document
    still_unresolved = []
    for link in collection.unresolved_links:
        source_doc_name = collection.info(
            collection.node_id_of(link.source)
        ).document
        if not try_add(collection.documents[source_doc_name], link):
            still_unresolved.append(link)
    collection.unresolved_links[:] = still_unresolved
    return new_edges


def _resolve(
    collection: XmlCollection,
    document: XmlDocument,
    link: Link,
) -> Optional[XmlElement]:
    if link.is_intra_document:
        return document.anchors.get(link.target_fragment or "")
    target_doc = collection.documents.get(link.target_document)
    if target_doc is None:
        return None
    if link.target_fragment is None:
        return target_doc.root
    return target_doc.anchors.get(link.target_fragment)
